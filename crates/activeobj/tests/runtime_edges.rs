//! Edge-case tests of the grid runtime: deployment metering, sampling,
//! dead-call accounting, future semantics, and local-GC sweep timing.

use dgc_activeobj::activity::{AoCtx, Behavior, Inert};
use dgc_activeobj::collector::CollectorKind;
use dgc_activeobj::request::{FutureId, Reply, Request};
use dgc_activeobj::runtime::{Grid, GridConfig};
use dgc_core::config::DgcConfig;
use dgc_core::units::Dur;
use dgc_simnet::time::SimDuration;
use dgc_simnet::topology::{ProcId, Topology};
use dgc_simnet::traffic::TrafficClass;

fn dgc() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_secs(30))
        .tta(Dur::from_secs(61))
        .max_comm(Dur::from_millis(500))
        .build()
}

fn base_config() -> GridConfig {
    GridConfig::new(Topology::single_site(4, SimDuration::from_millis(1))).seed(5)
}

#[test]
fn deployment_bytes_charged_once_per_remote_process() {
    let mut g = Grid::new(base_config().deployment_bytes(1_000));
    // Two activities on proc 1, one on proc 2, one on proc 0 (deployer).
    g.spawn(ProcId(1), Box::new(Inert));
    g.spawn(ProcId(1), Box::new(Inert));
    g.spawn(ProcId(2), Box::new(Inert));
    g.spawn(ProcId(0), Box::new(Inert));
    assert_eq!(
        g.traffic().bytes(TrafficClass::AppRequest),
        2_000,
        "one charge per remote process, none for the deployer's own"
    );
}

#[test]
fn samples_appear_at_the_configured_period() {
    let mut g = Grid::new(base_config().sample_every(SimDuration::from_secs(10)));
    g.spawn(ProcId(0), Box::new(Inert));
    g.run_for(SimDuration::from_secs(95));
    let samples = g.samples();
    assert_eq!(samples.len(), 9, "one sample per 10 s in (0, 95]");
    assert!(samples.windows(2).all(|w| w[1].at > w[0].at));
    assert_eq!(samples[0].alive, 1);
    assert_eq!(samples[0].idle, 1);
}

#[test]
fn requests_to_killed_activities_are_counted() {
    let mut g = Grid::new(base_config());
    let root = g.spawn_root(ProcId(0), Box::new(Inert));
    let victim = g.spawn(ProcId(1), Box::new(Inert));
    g.make_ref(root, victim);
    g.kill(victim);
    g.send_from(root, victim, 1, 8, vec![]);
    g.run_for(SimDuration::from_secs(1));
    assert_eq!(g.app_sends_to_dead(), 1);
}

/// Replies immediately to any request carrying a future.
struct Echo;
impl Behavior for Echo {
    fn on_request(&mut self, ctx: &mut AoCtx<'_>, req: &Request) {
        if let Some(f) = req.future {
            ctx.reply(f, 4, vec![]);
        }
    }
}

#[test]
fn unawaited_reply_is_stored_not_handled() {
    // §4.1: a future value cannot wake an idle activity. The caller
    // fires a call without awaiting; the reply must be stored silently,
    // the on_reply handler must NOT run, and the caller must be idle at
    // arrival time.
    let mut g = Grid::new(base_config());
    let echo = g.spawn_root(ProcId(0), Box::new(Echo));
    struct Caller {
        target: dgc_core::id::AoId,
        handled: u32,
    }
    impl Behavior for Caller {
        fn on_start(&mut self, ctx: &mut AoCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(5), 1);
        }
        fn on_timer(&mut self, ctx: &mut AoCtx<'_>, _t: u64) {
            ctx.call(self.target, 1, 8, vec![]);
        }
        fn on_reply(&mut self, _ctx: &mut AoCtx<'_>, _f: FutureId, _r: &Reply) {
            self.handled += 1;
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }
    let caller = g.spawn(
        ProcId(1),
        Box::new(Caller {
            target: echo,
            handled: 0,
        }),
    );
    g.make_ref(caller, echo);
    g.run_for(SimDuration::from_secs(2));
    let act = g
        .activity(caller)
        .expect("alive (referenced by nothing… still within TTA)");
    let probe = act
        .behavior
        .as_any()
        .and_then(|a| a.downcast_ref::<Caller>())
        .expect("caller behavior");
    assert_eq!(probe.handled, 0, "no handler for a never-awaited future");
    assert_eq!(act.stored_replies.len(), 1, "value stored for later use");
    assert!(act.is_idle(), "arrival did not wake it");
}

#[test]
fn dropped_edge_detected_at_next_sweep_not_sooner() {
    // local_gc_period = 10 s: releasing the last stub must not reach the
    // collector before the sweep fires.
    let mut cfg = base_config().collector(CollectorKind::Complete(dgc()));
    cfg.local_gc_period = SimDuration::from_secs(10);
    cfg.tick_jitter = false;
    let mut g = Grid::new(cfg);
    let root = g.spawn_root(ProcId(0), Box::new(Inert));
    let a = g.spawn(ProcId(1), Box::new(Inert));
    g.make_ref(root, a);
    g.run_for(SimDuration::from_secs(50));
    let bumps_before = g.dgc_stats().bumps_lost_referenced;
    g.drop_ref(root, a);
    // Within the same sweep period: the edge is still reported.
    g.run_for(SimDuration::from_millis(100));
    assert_eq!(g.dgc_stats().bumps_lost_referenced, bumps_before);
    // After the sweep: the loss is registered (clock bump on root).
    g.run_for(SimDuration::from_secs(12));
    assert!(g.dgc_stats().bumps_lost_referenced > bumps_before);
    // And a eventually dies of silence.
    g.run_for(SimDuration::from_secs(120));
    assert!(!g.is_alive(a));
    assert!(g.violations().is_empty());
}

#[test]
fn trace_records_lifecycle_when_enabled() {
    use dgc_simnet::trace::TraceLevel;
    let mut g = Grid::new(
        base_config()
            .collector(CollectorKind::Complete(dgc()))
            .trace_level(TraceLevel::Info),
    );
    let a = g.spawn(ProcId(0), Box::new(Inert));
    g.run_for(SimDuration::from_secs(120));
    assert!(!g.is_alive(a));
    assert!(g.trace().with_tag("spawn").count() >= 1);
    assert_eq!(g.trace().with_tag("terminate").count(), 1);
}

#[test]
fn reset_traffic_supports_phase_measurements() {
    let mut g = Grid::new(base_config().deployment_bytes(1_000));
    g.spawn(ProcId(1), Box::new(Inert));
    assert!(g.traffic().total_bytes() > 0);
    g.reset_traffic();
    assert_eq!(g.traffic().total_bytes(), 0);
}

#[test]
fn self_requests_cycle_through_busy_and_back() {
    // An activity sending itself a request is busy while serving it and
    // idle right after — intra-process, so zero metered traffic.
    struct SelfCall {
        rounds: u32,
    }
    impl Behavior for SelfCall {
        fn on_start(&mut self, ctx: &mut AoCtx<'_>) {
            let me = ctx.me();
            ctx.send(me, 1, 8, vec![]);
        }
        fn on_request(&mut self, ctx: &mut AoCtx<'_>, _req: &Request) {
            self.rounds += 1;
            if self.rounds < 5 {
                let me = ctx.me();
                ctx.send(me, 1, 8, vec![]);
            }
            ctx.compute(SimDuration::from_millis(10));
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }
    let mut g = Grid::new(base_config());
    let a = g.spawn(ProcId(2), Box::new(SelfCall { rounds: 0 }));
    g.run_for(SimDuration::from_secs(1));
    let act = g.activity(a).expect("alive");
    let b = act
        .behavior
        .as_any()
        .and_then(|x| x.downcast_ref::<SelfCall>())
        .unwrap();
    assert_eq!(b.rounds, 5);
    assert!(act.is_idle());
    assert_eq!(
        g.traffic().total_bytes(),
        0,
        "intra-process messages are free"
    );
}
