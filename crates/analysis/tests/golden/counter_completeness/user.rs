//! virtual-path: crates/rt-net/src/node.rs
// Golden fixture (file 2 of 2): counter-key usages, two of them wrong.

fn record(obs: &Registry) {
    obs.counter("net.frames_sent").inc();
    // Typo: "snet" for "sent" — silently dodges the conservation mirror.
    obs.counter("net.frames_snet").inc();
    // The histogram is registered as a histogram, not a counter: fine.
    obs.histogram("net.reconnect_backoff_ns").record(5);
}

#[cfg(test)]
mod tests {
    fn asserts_on_keys(snap: &Snapshot) {
        // Test literals are checked too — this suffix was never
        // registered by the tenant mirror.
        assert_eq!(snap.gauge("tenant.1.app_enqueued"), 1);
        assert_eq!(snap.gauge("tenant.1.app_enqueu"), 0);
    }
}
