//! The named Lamport activity clock (§3.2).
//!
//! Each active object maintains a Lamport logical clock *named* by the id
//! of the object that last incremented it — the clock's **owner**. The
//! pair is totally ordered (value first, owner id as tie-break), which is
//! what lets the whole recursive closure of referencers converge on a
//! single *final activity clock* during cycle detection.
//!
//! The clock is incremented on exactly three occasions (§3.2 "When is the
//! activity clock incremented"):
//!
//! 1. the active object becomes idle,
//! 2. it loses a referencer (no DGC message from it for TTA),
//! 3. it loses a referenced edge (all local stubs collected).
//!
//! Incrementing turns `ID:Value` into `Self:Value+1`, i.e. the
//! incrementing object takes ownership.

use std::fmt;

use crate::id::AoId;

/// A named Lamport clock: `(value, owner)`, totally ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NamedClock {
    /// Lamport value.
    pub value: u64,
    /// The active object that performed the last increment.
    pub owner: AoId,
}

impl NamedClock {
    /// The initial clock of a freshly created active object: value 0,
    /// owned by itself.
    pub const fn initial(owner: AoId) -> Self {
        NamedClock { value: 0, owner }
    }

    /// The increment of §3.2: `ID:Value` becomes `incrementer:Value+1`.
    #[must_use]
    pub fn bumped_by(self, incrementer: AoId) -> NamedClock {
        NamedClock {
            value: self.value.checked_add(1).expect("activity clock overflow"),
            owner: incrementer,
        }
    }

    /// Lamport merge: the later of the two clocks (used when a DGC message
    /// carries a more recent clock than our own, Algorithm 3).
    #[must_use]
    pub fn merged_with(self, other: NamedClock) -> NamedClock {
        self.max(other)
    }

    /// True if `who` owns this clock.
    pub fn is_owned_by(self, who: AoId) -> bool {
        self.owner == who
    }
}

impl fmt::Display for NamedClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper writes clocks as `B:9`.
        write!(f, "{}:{}", self.owner, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ao(n: u32) -> AoId {
        AoId::new(n, 0)
    }

    #[test]
    fn initial_clock_is_self_owned_zero() {
        let c = NamedClock::initial(ao(4));
        assert_eq!(c.value, 0);
        assert!(c.is_owned_by(ao(4)));
    }

    #[test]
    fn bump_takes_ownership_and_increments() {
        let c = NamedClock {
            value: 8,
            owner: ao(1),
        };
        let b = c.bumped_by(ao(2));
        assert_eq!(b.value, 9);
        assert!(b.is_owned_by(ao(2)));
        assert!(b > c);
    }

    #[test]
    fn order_is_value_then_owner() {
        let low = NamedClock {
            value: 1,
            owner: ao(9),
        };
        let high = NamedClock {
            value: 2,
            owner: ao(0),
        };
        assert!(low < high, "value dominates owner");
        let a = NamedClock {
            value: 5,
            owner: ao(1),
        };
        let b = NamedClock {
            value: 5,
            owner: ao(2),
        };
        assert!(a < b, "owner id breaks ties");
    }

    #[test]
    fn merge_is_max() {
        let a = NamedClock {
            value: 3,
            owner: ao(1),
        };
        let b = NamedClock {
            value: 7,
            owner: ao(0),
        };
        assert_eq!(a.merged_with(b), b);
        assert_eq!(b.merged_with(a), b);
        assert_eq!(a.merged_with(a), a);
    }

    #[test]
    fn bump_always_exceeds_merge_input() {
        // A bump after adopting any clock must produce a strictly greater
        // clock — the Lamport property the consensus relies on.
        let theirs = NamedClock {
            value: 41,
            owner: ao(3),
        };
        let mine = NamedClock {
            value: 12,
            owner: ao(5),
        };
        let adopted = mine.merged_with(theirs);
        let bumped = adopted.bumped_by(ao(5));
        assert!(bumped > theirs);
        assert!(bumped > mine);
    }

    #[test]
    fn display_matches_paper_notation() {
        let c = NamedClock {
            value: 9,
            owner: AoId::new(2, 1),
        };
        assert_eq!(c.to_string(), "ao2.1:9");
    }
}
