//! The NAS communication skeleton as a **sans-io engine**: CG/EP/FT
//! bulk-synchronous request/reply rounds, runnable over any
//! [`AppTransport`].
//!
//! The Behavior-based kernels in [`crate::nas`] model §5.2 faithfully
//! inside the simulator — compute times, class-C payloads, deployment
//! bytes. This module is their transport-neutral twin: the same
//! master/worker structure (a master hands every worker references to
//! all its peers plus a `RUN` call; workers exchange per-iteration
//! chunks behind a barrier and finally reply; the released worker
//! clique becomes idle cyclic garbage), but with the communication
//! expressed as encoded [`AppPacket`]s — so the *identical* workload
//! runs over the simulated grid and over real TCP, heartbeats and
//! gossip digests piggybacking on its frames. Local numerics are still
//! genuinely executed through [`KernelMath`]; scaled compute *delays*
//! are not modeled (rounds advance at transport speed), which is what
//! lets a socket run finish in milliseconds.

use std::collections::BTreeMap;

use dgc_core::id::AoId;
use dgc_core::units::Time;

use crate::driver::{AppPacket, AppTransport, Traced, TracedOp};
use crate::nas::{KernelMath, NasParams};

const TAG_RUN: u8 = 0x01;
const TAG_CHUNK: u8 = 0x02;
const TAG_DONE: u8 = 0x03;

/// Decoded workload payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireMsg {
    /// Master → worker kickoff.
    Run,
    /// Worker → peer chunk for `iter`.
    Chunk {
        /// The sender's iteration.
        iter: u32,
    },
    /// Worker → master final reply carrying its checksum.
    Done {
        /// The worker's verification value.
        checksum: f64,
    },
}

/// Encodes a workload payload, padded to `size` bytes so the wire
/// carries the kernel's scaled message sizes for real.
pub fn encode_msg(msg: &WireMsg, size: u64) -> Vec<u8> {
    let mut out = match *msg {
        WireMsg::Run => vec![TAG_RUN],
        WireMsg::Chunk { iter } => {
            let mut v = vec![TAG_CHUNK];
            v.extend_from_slice(&iter.to_be_bytes());
            v
        }
        WireMsg::Done { checksum } => {
            let mut v = vec![TAG_DONE];
            v.extend_from_slice(&checksum.to_bits().to_be_bytes());
            v
        }
    };
    if (out.len() as u64) < size {
        out.resize(size as usize, 0);
    }
    out
}

/// Decodes a workload payload (padding ignored).
pub fn decode_msg(payload: &[u8]) -> Option<WireMsg> {
    match *payload.first()? {
        TAG_RUN => Some(WireMsg::Run),
        TAG_CHUNK => {
            let iter = u32::from_be_bytes(payload.get(1..5)?.try_into().ok()?);
            Some(WireMsg::Chunk { iter })
        }
        TAG_DONE => {
            let bits = u64::from_be_bytes(payload.get(1..9)?.try_into().ok()?);
            Some(WireMsg::Done {
                checksum: f64::from_bits(bits),
            })
        }
        _ => None,
    }
}

/// Where the workload's activities live.
#[derive(Debug, Clone)]
pub struct BspLayout {
    /// The master (deployment root; never idle, never collected).
    pub master: AoId,
    /// The workers, by index.
    pub workers: Vec<AoId>,
}

/// One driver-level operation the engine wants applied.
#[derive(Debug)]
pub enum WorkOp {
    /// Ship a packet.
    Send(AppPacket),
    /// Add a reference edge (drives the collector under test).
    AddRef {
        /// Referencer.
        from: AoId,
        /// Referenced.
        to: AoId,
    },
    /// Drop a reference edge.
    DropRef {
        /// Referencer.
        from: AoId,
        /// Referenced.
        to: AoId,
    },
    /// Flip idleness.
    SetIdle {
        /// The activity.
        ao: AoId,
        /// New idleness.
        idle: bool,
    },
}

struct WorkerState {
    index: u32,
    iter: u32,
    /// Chunks received, bucketed by iteration parity (peers run at
    /// most one iteration ahead — same argument as the Behavior
    /// twin's).
    received: [u32; 2],
    checksum: f64,
    math: Box<dyn KernelMath>,
    running: bool,
    finished: bool,
}

/// The sans-io bulk-synchronous engine for one whole deployment (it
/// owns every worker's state; the transport decides which packets
/// actually cross a wire).
pub struct BspEngine {
    params: NasParams,
    layout: BspLayout,
    workers: BTreeMap<AoId, WorkerState>,
    /// Per-worker-index checksums, filled as DONE replies arrive;
    /// summed in index order so the result is identical whatever order
    /// the transport delivered them in.
    done_checksums: BTreeMap<u32, f64>,
    done: bool,
}

impl BspEngine {
    /// Builds the engine; `math` constructs each worker's genuinely
    /// executed numerical state from its index.
    pub fn new(
        params: &NasParams,
        layout: BspLayout,
        math: &dyn Fn(u32) -> Box<dyn KernelMath>,
    ) -> BspEngine {
        let workers = layout
            .workers
            .iter()
            .enumerate()
            .map(|(i, id)| {
                (
                    *id,
                    WorkerState {
                        index: i as u32,
                        iter: 0,
                        received: [0, 0],
                        checksum: 0.0,
                        math: math(i as u32),
                        running: false,
                        finished: false,
                    },
                )
            })
            .collect();
        BspEngine {
            params: *params,
            layout,
            workers,
            done_checksums: BTreeMap::new(),
            done: false,
        }
    }

    /// The deployment step: the master references every worker and
    /// ships the `RUN` calls (paper: deployment wiring + kickoff).
    pub fn kickoff(&mut self) -> Vec<WorkOp> {
        let mut ops = Vec::new();
        for w in self.layout.workers.clone() {
            ops.push(WorkOp::AddRef {
                from: self.layout.master,
                to: w,
            });
        }
        for w in self.layout.workers.clone() {
            ops.push(WorkOp::Send(AppPacket {
                from: self.layout.master,
                to: w,
                reply: false,
                payload: encode_msg(&WireMsg::Run, 256),
            }));
        }
        ops
    }

    /// Feeds one delivered packet; returns the operations it caused.
    pub fn on_packet(&mut self, pkt: &AppPacket) -> Vec<WorkOp> {
        let Some(msg) = decode_msg(&pkt.payload) else {
            return Vec::new();
        };
        match msg {
            WireMsg::Run => self.on_run(pkt.to),
            WireMsg::Chunk { iter } => self.on_chunk(pkt.to, iter),
            WireMsg::Done { checksum } => self.on_done(pkt.from, checksum),
        }
    }

    /// True once the master holds every worker's reply (and released
    /// the clique).
    pub fn done(&self) -> bool {
        self.done
    }

    /// The slowest worker's iteration — the global BSP round boundary.
    /// It only moves when every worker has crossed the barrier, so each
    /// increment marks one collective round completing.
    pub fn min_iteration(&self) -> u32 {
        self.workers.values().map(|s| s.iter).min().unwrap_or(0)
    }

    /// The verification value: per-worker checksums summed in worker
    /// order — deterministic across transports and delivery orders.
    pub fn checksum(&self) -> f64 {
        self.done_checksums.values().sum()
    }

    fn peers_of(&self, w: AoId) -> Vec<AoId> {
        self.layout
            .workers
            .iter()
            .copied()
            .filter(|p| *p != w)
            .collect()
    }

    fn broadcast(&self, w: AoId, iter: u32) -> Vec<WorkOp> {
        self.peers_of(w)
            .into_iter()
            .map(|p| {
                WorkOp::Send(AppPacket {
                    from: w,
                    to: p,
                    reply: false,
                    payload: encode_msg(&WireMsg::Chunk { iter }, self.params.chunk_bytes),
                })
            })
            .collect()
    }

    fn on_run(&mut self, w: AoId) -> Vec<WorkOp> {
        let peers = self.peers_of(w);
        let mut ops: Vec<WorkOp> = peers
            .iter()
            .map(|p| WorkOp::AddRef { from: w, to: *p })
            .collect();
        let exchange = self.params.exchange && !peers.is_empty();
        {
            let Some(state) = self.workers.get_mut(&w) else {
                return Vec::new();
            };
            if state.running {
                return Vec::new(); // duplicate RUN
            }
            state.running = true;
        }
        if exchange {
            ops.extend(self.broadcast(w, 0));
            // Chunks that raced ahead of the RUN call cannot exist —
            // per-destination FIFO (§3.2) orders RUN before any chunk
            // from the same sender, and peers only chunk after their
            // own RUN — but a 0-peer degenerate barrier opens at once.
            ops.extend(self.try_advance(w));
        } else {
            // EP-style: pure local compute, no exchange.
            ops.extend(self.finish_all_iterations(w));
        }
        ops
    }

    fn on_chunk(&mut self, w: AoId, iter: u32) -> Vec<WorkOp> {
        {
            let Some(state) = self.workers.get_mut(&w) else {
                return Vec::new();
            };
            if state.finished {
                return Vec::new();
            }
            state.received[(iter & 1) as usize] += 1;
        }
        self.try_advance(w)
    }

    /// The barrier: when all peers' chunks for the current iteration
    /// arrived, compute (for real) and move on — possibly several
    /// iterations, if this worker was the straggler both buckets were
    /// waiting on.
    fn try_advance(&mut self, w: AoId) -> Vec<WorkOp> {
        let barrier = self.peers_of(w).len() as u32;
        let mut ops = Vec::new();
        loop {
            let (advance, iter_now) = {
                let Some(state) = self.workers.get_mut(&w) else {
                    return ops;
                };
                if !state.running || state.finished {
                    return ops;
                }
                let bucket = (state.iter & 1) as usize;
                if state.received[bucket] < barrier {
                    return ops;
                }
                state.received[bucket] = 0;
                let it = state.iter;
                state.checksum += state.math.compute(it);
                state.iter += 1;
                (state.iter < self.params.iterations, it + 1)
            };
            if advance {
                ops.extend(self.broadcast(w, iter_now));
                // Loop: if this worker was the straggler, the whole
                // next barrier may already be sitting in the other
                // parity bucket — no further delivery will re-poke us.
            } else {
                ops.extend(self.finish(w));
                return ops;
            }
        }
    }

    /// EP-style completion: run every iteration locally, then reply.
    fn finish_all_iterations(&mut self, w: AoId) -> Vec<WorkOp> {
        if let Some(state) = self.workers.get_mut(&w) {
            while state.iter < self.params.iterations {
                let it = state.iter;
                state.checksum += state.math.compute(it);
                state.iter += 1;
            }
        }
        self.finish(w)
    }

    /// The worker's last act: reply to the master's future and go
    /// idle. Peer references stay held — the workers now form the idle
    /// garbage clique the §5.2 DGC-time column measures the collection
    /// of.
    fn finish(&mut self, w: AoId) -> Vec<WorkOp> {
        let Some(state) = self.workers.get_mut(&w) else {
            return Vec::new();
        };
        state.finished = true;
        let checksum = state.checksum;
        vec![
            WorkOp::Send(AppPacket {
                from: w,
                to: self.layout.master,
                reply: true,
                payload: encode_msg(&WireMsg::Done { checksum }, self.params.reply_bytes),
            }),
            WorkOp::SetIdle { ao: w, idle: true },
        ]
    }

    fn on_done(&mut self, from: AoId, checksum: f64) -> Vec<WorkOp> {
        let Some(index) = self.workers.get(&from).map(|s| s.index) else {
            return Vec::new();
        };
        self.done_checksums.insert(index, checksum);
        if self.done_checksums.len() < self.layout.workers.len() || self.done {
            return Vec::new();
        }
        self.done = true;
        // "The main drops its references": from here on the worker
        // clique is garbage and the collector's clock starts.
        self.layout
            .workers
            .clone()
            .into_iter()
            .map(|w| WorkOp::DropRef {
                from: self.layout.master,
                to: w,
            })
            .collect()
    }
}

/// Outcome of one driver-level BSP run.
#[derive(Debug, Clone)]
pub struct BspOutcome {
    /// Kernel name (from the params).
    pub kernel: &'static str,
    /// Deterministic verification checksum.
    pub checksum: f64,
    /// When the master had every reply (scenario clock) — §5.2's
    /// "benchmark has its result".
    pub result_at: Time,
    /// Application packets shipped (requests + replies), for traffic
    /// ratio accounting.
    pub packets_sent: u64,
    /// Where everything lives.
    pub layout: BspLayout,
    /// Every driver-level op applied, with its scenario time — the
    /// ground-truth script of the run.
    pub trace: Vec<Traced>,
    /// Scenario-time width of each global BSP round (one sample per
    /// [`BspEngine::min_iteration`] increment): the barrier latency the
    /// telemetry plane tracks for this workload.
    pub barrier_latency: dgc_obs::HistogramSnapshot,
}

/// Runs one BSP workload over `transport` until the master has its
/// result; workers are left as an idle garbage clique for the
/// transport's collector (await it with
/// [`crate::driver::wait_all_terminated`]).
///
/// Workers spread round-robin over the transport's nodes, master on
/// node 0. Panics if the scenario clock passes `deadline` first.
pub fn run_bsp<T: AppTransport>(
    transport: &mut T,
    params: &NasParams,
    math: &dyn Fn(u32) -> Box<dyn KernelMath>,
    deadline: Time,
) -> BspOutcome {
    let nodes = transport.nodes();
    let mut trace: Vec<Traced> = Vec::new();
    let master = transport.spawn(0);
    trace.push(Traced {
        at: transport.now(),
        op: TracedOp::Spawn {
            ao: master,
            busy: true,
        },
    });
    let workers: Vec<AoId> = (0..params.workers)
        .map(|i| {
            let w = transport.spawn(i % nodes);
            trace.push(Traced {
                at: transport.now(),
                op: TracedOp::Spawn { ao: w, busy: true },
            });
            w
        })
        .collect();
    let layout = BspLayout {
        master,
        workers: workers.clone(),
    };
    let mut engine = BspEngine::new(params, layout.clone(), math);
    let mut packets_sent = 0u64;

    let apply =
        |transport: &mut T, trace: &mut Vec<Traced>, packets_sent: &mut u64, ops: Vec<WorkOp>| {
            for op in ops {
                let at = transport.now();
                match op {
                    WorkOp::Send(pkt) => {
                        *packets_sent += 1;
                        transport.send(pkt);
                    }
                    WorkOp::AddRef { from, to } => {
                        transport.add_ref(from, to);
                        trace.push(Traced {
                            at,
                            op: TracedOp::AddRef { from, to },
                        });
                    }
                    WorkOp::DropRef { from, to } => {
                        transport.drop_ref(from, to);
                        trace.push(Traced {
                            at,
                            op: TracedOp::DropRef { from, to },
                        });
                    }
                    WorkOp::SetIdle { ao, idle } => {
                        transport.set_idle(ao, idle);
                        trace.push(Traced {
                            at,
                            op: TracedOp::SetIdle { ao, idle },
                        });
                    }
                }
            }
        };

    let ops = engine.kickoff();
    apply(transport, &mut trace, &mut packets_sent, ops);
    let barrier_hist = dgc_obs::Histogram::default();
    let mut barrier_iter = engine.min_iteration();
    let mut last_barrier_at = transport.now();
    while !engine.done() {
        assert!(
            transport.now() < deadline,
            "{} BSP workload failed to converge before the deadline",
            params.name
        );
        for pkt in transport.poll() {
            let ops = engine.on_packet(&pkt);
            apply(transport, &mut trace, &mut packets_sent, ops);
        }
        // Each min-iteration increment is one whole clique crossing the
        // barrier; the time since the previous crossing is that round's
        // barrier latency.
        let round = engine.min_iteration();
        if round > barrier_iter {
            let now = transport.now();
            for _ in barrier_iter..round {
                barrier_hist.record(now.since(last_barrier_at).as_nanos());
            }
            last_barrier_at = now;
            barrier_iter = round;
        }
        if engine.done() {
            break;
        }
        // Always pace: one quantum per delivery round stands in for the
        // kernel's per-iteration compute, so the run spans enough
        // scenario time for the background planes to interleave with
        // it (which is the traffic shape the paper measures).
        transport.step();
    }
    BspOutcome {
        kernel: params.name,
        checksum: engine.checksum(),
        result_at: transport.now(),
        packets_sent,
        layout,
        trace,
        barrier_latency: barrier_hist.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_round_trip_and_pad_to_size() {
        let cases = [
            (WireMsg::Run, 256u64),
            (WireMsg::Chunk { iter: 7 }, 128),
            (WireMsg::Done { checksum: 3.25 }, 64),
            (WireMsg::Chunk { iter: 0 }, 0), // smaller than the header
        ];
        for (msg, size) in cases {
            let bytes = encode_msg(&msg, size);
            assert!(bytes.len() as u64 >= size.min(bytes.len() as u64));
            assert_eq!(decode_msg(&bytes), Some(msg));
        }
        assert_eq!(decode_msg(&[0xEE]), None);
        assert_eq!(decode_msg(&[]), None);
    }

    /// An in-memory loop: deliver every sent packet instantly, assert
    /// the rounds complete with the right structure.
    #[test]
    fn engine_completes_exchange_rounds_in_memory() {
        let params = crate::nas::Kernel::Cg.class_c().scaled_down(4, 25);
        let layout = BspLayout {
            master: AoId::new(0, 0),
            workers: (0..4).map(|i| AoId::new(i % 2, 1 + i)).collect(),
        };
        let math = |i: u32| crate::nas::Kernel::Cg.math(i);
        let mut engine = BspEngine::new(&params, layout.clone(), &math);
        let mut queue: Vec<AppPacket> = Vec::new();
        let mut refs = 0u64;
        let mut idles: Vec<AoId> = Vec::new();
        let mut drops = 0u64;
        let mut apply = |ops: Vec<WorkOp>, queue: &mut Vec<AppPacket>| {
            for op in ops {
                match op {
                    WorkOp::Send(pkt) => queue.push(pkt),
                    WorkOp::AddRef { .. } => refs += 1,
                    WorkOp::DropRef { .. } => drops += 1,
                    WorkOp::SetIdle { ao, idle } => {
                        assert!(idle);
                        idles.push(ao);
                    }
                }
            }
        };
        apply(engine.kickoff(), &mut queue);
        let mut steps = 0u64;
        while !engine.done() {
            steps += 1;
            assert!(steps < 1_000_000, "engine wedged");
            let pkt = queue.remove(0);
            let ops = engine.on_packet(&pkt);
            apply(ops, &mut queue);
        }
        // master→workers + every worker→its 3 peers.
        assert_eq!(refs, 4 + 4 * 3);
        assert_eq!(drops, 4, "master released every worker");
        assert_eq!(idles.len(), 4, "every worker went idle");
        assert!(engine.checksum().is_finite());
        // Checksum is the sum of the genuinely executed math.
        let expected: f64 = (0..4)
            .map(|i| {
                let mut m = math(i);
                (0..params.iterations).map(|it| m.compute(it)).sum::<f64>()
            })
            .sum();
        assert!((engine.checksum() - expected).abs() < 1e-9);
    }

    #[test]
    fn ep_style_completes_without_exchange() {
        let params = crate::nas::Kernel::Ep.class_c().scaled_down(3, 25);
        assert!(!params.exchange);
        let layout = BspLayout {
            master: AoId::new(0, 0),
            workers: (0..3).map(|i| AoId::new(0, 1 + i)).collect(),
        };
        let math = |i: u32| crate::nas::Kernel::Ep.math(i);
        let mut engine = BspEngine::new(&params, layout.clone(), &math);
        let mut queue: Vec<AppPacket> = Vec::new();
        for op in engine.kickoff() {
            if let WorkOp::Send(pkt) = op {
                queue.push(pkt);
            }
        }
        while !engine.done() {
            let pkt = queue.remove(0);
            for op in engine.on_packet(&pkt) {
                if let WorkOp::Send(pkt) = op {
                    queue.push(pkt);
                }
            }
        }
        assert!(engine.checksum().is_finite());
    }
}
