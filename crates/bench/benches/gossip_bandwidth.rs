//! Gossip bandwidth — bytes per steady-state anti-entropy round,
//! full-directory pushes vs delta digests, plus the egress plane's
//! piggyback accounting.
//!
//! The membership layer's pre-delta protocol pushed the full directory
//! to every present peer every round: O(cluster²) record payloads per
//! round at steady state, for information everyone already had. Delta
//! digests carry only records the peer has not acknowledged — at
//! steady state an empty 19-byte heartbeat — with a periodic full sync
//! as the anti-entropy backstop. This bench pins the win the ISSUE
//! demands: **≥ 30% fewer gossip bytes per steady-state round at 8
//! nodes** (the real figure is far larger), and shows how piggybacked
//! digests additionally shed their frame overhead by riding frames the
//! application already pays for.
//!
//! Run: `cargo bench -p dgc-bench --bench gossip_bandwidth`

use dgc_core::egress::{EgressClass, FlushPolicy, Outbox};
use dgc_core::units::{Dur, Time};
use dgc_membership::{wire as membership_wire, GossipOut, Membership, MembershipConfig};
use dgc_rt_net::frame::FRAME_OVERHEAD;

fn ms(v: u64) -> Time {
    Time::from_nanos(v * 1_000_000)
}

/// 50 ms gossip; long silence timeouts so the steady-state measurement
/// is about anti-entropy, not the failure detector.
fn timings() -> MembershipConfig {
    MembershipConfig {
        gossip_interval: Dur::from_millis(50),
        suspect_after: Dur::from_secs(600),
        dead_after: Dur::from_secs(1200),
        full_sync_every: 10,
    }
}

/// Drives `nodes` engines lock-step and loss-free from seed-only
/// knowledge; returns total digest wire bytes over rounds
/// `[measure_from, rounds)` plus the digest count in that window.
fn run_cluster(nodes: u32, config: MembershipConfig, rounds: u64, measure_from: u64) -> (u64, u64) {
    let mut engines: Vec<Membership> = (0..nodes)
        .map(|n| Membership::new(n, None, 1, ms(0), config))
        .collect();
    for e in engines.iter_mut().skip(1) {
        e.on_contact(ms(0), 0, None);
    }
    let (mut bytes, mut digests) = (0u64, 0u64);
    for round in 0..rounds {
        let t = ms(round * 50);
        let mut outbox: Vec<(u32, GossipOut)> = Vec::new();
        for e in engines.iter_mut() {
            let from = e.node_id();
            outbox.extend(e.on_tick(t).into_iter().map(|o| (from, o)));
        }
        while let Some((from, out)) = outbox.pop() {
            if round >= measure_from {
                bytes += membership_wire::digest_wire_size(&out.digest);
                digests += 1;
            }
            let dst = engines.iter_mut().find(|e| e.node_id() == out.to).unwrap();
            let replies = dst.on_digest(t, from, &out.digest);
            let dst_id = dst.node_id();
            outbox.extend(replies.into_iter().map(|o| (dst_id, o)));
        }
    }
    (bytes, digests)
}

/// Returns `(full B/round, delta B/round, saved %)` at 8 nodes, for
/// the recorded report.
fn steady_state_table() -> (f64, f64, f64) {
    println!("steady-state gossip cost per round (loss-free, converged cluster)");
    println!(
        "{:>6} {:>16} {:>16} {:>9}",
        "nodes", "full-push B/rnd", "delta B/rnd", "saved %"
    );
    const ROUNDS: u64 = 140;
    const WARMUP: u64 = 40; // convergence + ack settling
    let window = ROUNDS - WARMUP;
    let mut eight_node = None;
    for nodes in [2u32, 4, 8, 16] {
        let (full_bytes, _) = run_cluster(nodes, timings().full_push(), ROUNDS, WARMUP);
        let (delta_bytes, _) = run_cluster(nodes, timings(), ROUNDS, WARMUP);
        let saved = 100.0 * (1.0 - delta_bytes as f64 / full_bytes as f64);
        let full_per_round = full_bytes as f64 / window as f64;
        let delta_per_round = delta_bytes as f64 / window as f64;
        println!(
            "{:>6} {:>16.1} {:>16.1} {:>8.1}%",
            nodes, full_per_round, delta_per_round, saved
        );
        if nodes == 8 {
            eight_node = Some((full_per_round, delta_per_round, saved));
        }
    }
    let (full, delta, saving) = eight_node.expect("8-node row ran");
    assert!(
        saving >= 30.0,
        "acceptance: delta gossip must cut ≥30% of steady-state bytes at 8 nodes, got {saving:.1}%"
    );
    println!("  8-node saving {saving:.1}% (acceptance floor: 30%)");
    (full, delta, saving)
}

/// Frame accounting for the piggyback: a digest flushed standalone pays
/// frame overhead; a digest riding an app-send flush pays none. Uses
/// the same `Outbox` both runtimes drive, with the socket frame
/// overhead model the `net_batching` bench validated.
/// Returns `(standalone frame-overhead bytes, digests that rode)` for
/// the recorded report.
fn piggyback_accounting() -> (u64, u64) {
    const DIGEST_BYTES: u64 = 19; // steady-state heartbeat digest
    const ROUNDS: u64 = 1000;
    let policy = FlushPolicy::default();

    // Standalone: gossip with no app traffic to ride — every digest
    // flushes alone at max-delay and pays a frame of its own.
    let mut standalone: Outbox<u32> = Outbox::new(policy);
    let mut t = Time::ZERO;
    for i in 0..ROUNDS {
        standalone.enqueue(t, 1, EgressClass::Gossip, DIGEST_BYTES, i as u32);
        t = t + Dur::from_millis(50);
        standalone.poll(t);
    }
    let st = standalone.stats();

    // Piggybacked: the same digests, but an app request to the same
    // peer lands inside every linger window.
    let mut piggy: Outbox<u32> = Outbox::new(policy);
    let mut t = Time::ZERO;
    for i in 0..ROUNDS {
        piggy.enqueue(t, 1, EgressClass::Gossip, DIGEST_BYTES, i as u32);
        piggy.enqueue(t, 1, EgressClass::AppRequest, 128, i as u32);
        t = t + Dur::from_millis(50);
        piggy.poll(t);
    }
    let pg = piggy.stats();

    // Frames the *gossip* pays for: all of them standalone; none when
    // piggybacked (the app frames were being sent anyway).
    let standalone_overhead = st.flushes * FRAME_OVERHEAD;
    let piggy_gossip_frames = pg.flushes - ROUNDS; // app frames excluded
    let piggy_overhead = piggy_gossip_frames * FRAME_OVERHEAD;
    println!();
    println!(
        "piggyback accounting over {ROUNDS} gossip rounds (frame overhead {FRAME_OVERHEAD} B):"
    );
    println!(
        "  standalone:  {:>5} gossip frames, {:>6} B frame overhead",
        st.flushes, standalone_overhead
    );
    println!(
        "  piggybacked: {:>5} gossip frames, {:>6} B frame overhead ({} digests rode app frames)",
        piggy_gossip_frames, piggy_overhead, pg.piggybacked
    );
    assert_eq!(st.flushes, ROUNDS, "standalone: one frame per digest");
    assert_eq!(
        pg.piggybacked, ROUNDS,
        "piggybacked: zero frames per digest"
    );
    assert_eq!(piggy_gossip_frames, 0);
    (standalone_overhead, pg.piggybacked)
}

fn main() {
    let (full_per_round, delta_per_round, saving) = steady_state_table();
    let (standalone_overhead, rode) = piggyback_accounting();
    dgc_bench::record(
        "gossip_bandwidth",
        &[
            ("full_push_bytes_per_round_8_nodes", full_per_round),
            ("delta_bytes_per_round_8_nodes", delta_per_round),
            ("saving_pct_8_nodes", saving),
            (
                "standalone_frame_overhead_bytes",
                standalone_overhead as f64,
            ),
            ("digests_piggybacked", rode as f64),
        ],
    );
}
