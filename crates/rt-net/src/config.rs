//! Transport-level knobs for a [`crate::node::NetNode`].

use std::time::Duration;

use dgc_core::config::DgcConfig;
use dgc_core::egress::FlushPolicy;
use dgc_membership::MembershipConfig;
use dgc_obs::TraceLevel;
use dgc_plane::AuthKey;

/// Which I/O engine drives a node's links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoEngine {
    /// Blocking sockets, one OS thread per direction per link (an
    /// acceptor, a reader per inbound connection, a writer plus a
    /// reply writer per peer): ~3 threads per peer, the transport's
    /// original shape. Still the default.
    Threaded,
    /// A single readiness loop (epoll on Linux via the vendored
    /// `polling` shim, short-timeout poll emulation elsewhere) that
    /// owns every socket nonblocking: O(shards) I/O threads however
    /// many peers a node talks to.
    Reactor,
}

impl IoEngine {
    /// Engine selected by the `DGC_NET_ENGINE` environment variable
    /// (`reactor` or `threaded`; anything else, or unset, means
    /// [`IoEngine::Threaded`]). [`NetConfig::new`] reads this, so every
    /// runner — conformance, workloads, tests — honours the variable
    /// without plumbing.
    pub fn from_env() -> IoEngine {
        match std::env::var("DGC_NET_ENGINE").as_deref() {
            Ok("reactor") => IoEngine::Reactor,
            _ => IoEngine::Threaded,
        }
    }
}

/// Configuration of one network node: the DGC parameters its activities
/// run with plus the link behaviour of the transport.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Protocol parameters handed to every hosted [`dgc_core::DgcState`].
    pub dgc: DgcConfig,
    /// The egress plane's flush policy: when a destination's queued
    /// units (heartbeats, digests, control, app payloads) become a
    /// frame. The default coalesces background units for up to 1 ms and
    /// flushes immediately — with the queue piggybacking — on every
    /// application send; [`FlushPolicy::immediate`] restores the
    /// one-RMI-call-per-message behaviour the paper measured as its
    /// baseline (kept so `net_batching` can quantify the difference).
    pub egress: FlushPolicy,
    /// First reconnect delay after a link drops; doubles per failure.
    pub reconnect_base: Duration,
    /// Reconnect delay cap.
    pub reconnect_max: Duration,
    /// Consecutive connection failures after which queued items for the
    /// peer are reported to the local protocol as send failures and the
    /// link goes **terminal** — a `PeerUnreachable` verdict instead of
    /// an endless retry (referencers then drop the unreachable edges,
    /// as the paper's collector does when an RMI call fails
    /// permanently). Reached only after the full backoff ladder, so
    /// chaos-length partitions reconnect long before it fires.
    pub fail_after_attempts: u32,
    /// When set, the node runs a `dgc-membership` engine: gossip
    /// digests piggyback on frames, peers are discovered through
    /// [`crate::NetNode::join`] seeds, and dead verdicts feed the
    /// collectors' send-failure path. `None` keeps the static
    /// registration behaviour.
    pub membership: Option<MembershipConfig>,
    /// Structured-tracing filter for the node's telemetry plane
    /// ([`dgc_obs::Tracer`]). `Off` (the default) keeps the hot paths
    /// allocation-free; conformance runners flip it from `DGC_TRACE`.
    pub trace: TraceLevel,
    /// Which I/O engine drives the node's links. Defaults to whatever
    /// `DGC_NET_ENGINE` says ([`IoEngine::Threaded`] when unset).
    pub engine: IoEngine,
    /// Reactor loop shards. The loop is structured so links could hash
    /// across several independent pollers, but only `1` is implemented;
    /// [`crate::NetNode::bind`] rejects anything else.
    pub reactor_shards: usize,
    /// TTB sweep shards: how many threads a node's due-endpoint sweep
    /// fans out across ([`dgc_core::sweep_sharded`]). `1` (the default)
    /// sweeps inline on the event loop with no thread handoff. Whatever
    /// the count, emitted units drain into the egress plane in shard
    /// order — identical to the sequential order — so the verdict
    /// stream is shard-count independent. Defaults to
    /// `DGC_SWEEP_SHARDS` when set, so every runner honours the knob
    /// without plumbing.
    pub sweep_shards: usize,
    /// Most items a single link will hold queued (wire frames included)
    /// before it sheds its oldest batches: a slow or dead peer must not
    /// hoard unbounded memory. Shed application payloads surface as
    /// failed sends; background units regenerate on protocol cadence.
    pub max_link_pending: usize,
    /// When set, every link runs the `dgc-plane` pre-shared-key
    /// HMAC challenge/response handshake after `Hello`, and no frame
    /// item is accepted from — or sent to — a peer that has not proven
    /// key possession. `None` (the default) keeps the trusted-LAN
    /// behaviour: links are live as soon as `Hello` checks out.
    pub auth: Option<AuthKey>,
    /// How long an accepted connection may sit without completing its
    /// `Hello` (and, with [`NetConfig::auth`] set, its auth handshake)
    /// before the node reclaims the slot and counts a
    /// `net.handshake_timeouts`. Bounds the damage of peers that
    /// connect and go silent — with or without authentication.
    pub handshake_timeout: Duration,
}

impl NetConfig {
    /// Defaults around a given DGC configuration.
    pub fn new(dgc: DgcConfig) -> Self {
        NetConfig {
            dgc,
            egress: FlushPolicy::default(),
            reconnect_base: Duration::from_millis(10),
            reconnect_max: Duration::from_secs(1),
            fail_after_attempts: 20,
            membership: None,
            trace: TraceLevel::Off,
            engine: IoEngine::from_env(),
            reactor_shards: 1,
            sweep_shards: std::env::var("DGC_SWEEP_SHARDS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1),
            max_link_pending: 100_000,
            auth: None,
            handshake_timeout: Duration::from_secs(2),
        }
    }

    /// Requires the `dgc-plane` link-authentication handshake with
    /// `key` on every link.
    pub fn auth(mut self, key: AuthKey) -> Self {
        self.auth = Some(key);
        self
    }

    /// Bounds how long a connection may idle mid-handshake.
    pub fn handshake_timeout(mut self, timeout: Duration) -> Self {
        self.handshake_timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// Selects the I/O engine explicitly (overriding `DGC_NET_ENGINE`).
    pub fn engine(mut self, engine: IoEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Caps per-link queued items before backpressure shedding.
    pub fn max_link_pending(mut self, max: usize) -> Self {
        self.max_link_pending = max.max(1);
        self
    }

    /// Sets the TTB sweep fan-out (overriding `DGC_SWEEP_SHARDS`).
    pub fn sweep_shards(mut self, shards: usize) -> Self {
        self.sweep_shards = shards.max(1);
        self
    }

    /// Enables the membership layer with `m` timings.
    pub fn membership(mut self, m: MembershipConfig) -> Self {
        self.membership = Some(m);
        self
    }

    /// Sets the egress flush policy.
    pub fn egress(mut self, policy: FlushPolicy) -> Self {
        self.egress = policy;
        self
    }

    /// Sets the tracing filter level (off by default).
    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Enables (default policy) or disables ([`FlushPolicy::immediate`])
    /// egress coalescing — the switch the `net_batching` bench flips.
    pub fn batching(mut self, on: bool) -> Self {
        self.egress = if on {
            FlushPolicy::default()
        } else {
            FlushPolicy::immediate()
        };
        self
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::new(DgcConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_core::units::Dur;

    #[test]
    fn defaults_batch_through_the_egress_plane() {
        let c = NetConfig::default();
        assert!(!c.egress.is_immediate());
        assert!(c.egress.flush_on_app);
        assert!(c.egress.max_delay >= Dur::from_nanos(100_000));
        assert!(c.fail_after_attempts > 0);
        assert!(c.batching(false).egress.is_immediate());
        assert_eq!(c.reactor_shards, 1);
        assert!(c.max_link_pending > 0);
        assert!(c.auth.is_none());
        assert!(c.handshake_timeout > Duration::ZERO);
    }

    #[test]
    fn auth_knobs() {
        let key = AuthKey::from_secret("swordfish");
        let c = NetConfig::default()
            .auth(key)
            .handshake_timeout(Duration::ZERO);
        assert_eq!(c.auth, Some(key));
        // Zero would make every handshake instantly late; clamped.
        assert_eq!(c.handshake_timeout, Duration::from_millis(1));
    }

    #[test]
    fn engine_knob_overrides_environment() {
        let c = NetConfig::default().engine(IoEngine::Reactor);
        assert_eq!(c.engine, IoEngine::Reactor);
        assert_eq!(c.engine(IoEngine::Threaded).engine, IoEngine::Threaded);
        assert_eq!(NetConfig::default().max_link_pending(0).max_link_pending, 1);
    }
}
