//! DGC configuration: TTB, TTA and the paper's optional extensions.

use std::fmt;

use crate::units::Dur;

/// Parent-selection policy for the reverse spanning tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ParentPolicy {
    /// The paper's implementation (§7.2): promote the **first** referenced
    /// active object whose response matches; shallow trees emerge from
    /// response timing.
    #[default]
    FirstResponder,
    /// The §7.2 future-work extension: responses carry the responder's
    /// depth in the reverse spanning tree, and a referencer switches to a
    /// strictly shallower parent when one appears, producing near-BFS
    /// (minimal-height) trees.
    MinDepth,
}

/// Heartbeat timing mode (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimingMode {
    /// One global constant TTB/TTA pair, as in the paper's evaluation.
    Static,
    /// §7.1 extension: the TTB adapts between bounds — it shrinks when
    /// garbage is suspected (this object is idle and part of a forming
    /// consensus) and relaxes back toward the base period otherwise.
    /// TTA scales with the same factor so the safety formula keeps
    /// holding.
    Adaptive {
        /// Fastest allowed heartbeat.
        min_ttb: Dur,
        /// Slowest allowed heartbeat.
        max_ttb: Dur,
    },
}

/// Configuration of one active object's DGC endpoint.
///
/// Build with [`DgcConfig::builder`]; `ttb`/`tta` default to the paper's
/// NAS settings (TTB 30 s, TTA 61 s, §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DgcConfig {
    /// TimeToBeat: period of DGC message broadcasts (§3.1).
    pub ttb: Dur,
    /// TimeToAlone: silence delay after which an idle object considers
    /// itself garbage, and a referencer that stayed silent is dropped
    /// (§3.1). Safety requires `TTA > 2·TTB + MaxComm`.
    pub tta: Dur,
    /// Upper bound on one-way communication time between active objects,
    /// used by the safety formula and by the per-referencer expiry when
    /// referencers advertise their own TTB.
    pub max_comm: Dur,
    /// §4.3 step-4 optimization: after consensus, keep answering DGC
    /// messages with `consensus_reached` so the whole cycle terminates in
    /// one TTA instead of re-running consensus per sub-cycle. On by
    /// default (the paper argues it is an important optimization);
    /// disable for the ablation benchmark.
    pub propagate_consensus: bool,
    /// Reverse-spanning-tree parent selection.
    pub parent_policy: ParentPolicy,
    /// Static or adaptive heartbeat.
    pub timing: TimingMode,
}

impl Default for DgcConfig {
    fn default() -> Self {
        DgcConfig::builder().build()
    }
}

/// Error returned when a configuration violates the safety formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    ttb: Dur,
    tta: Dur,
    max_comm: Dur,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unsafe DGC timing: TTA ({}) must exceed 2*TTB + MaxComm ({} + {})",
            self.tta,
            self.ttb.saturating_mul(2),
            self.max_comm
        )
    }
}

impl std::error::Error for ConfigError {}

impl DgcConfig {
    /// Starts building a configuration.
    pub fn builder() -> DgcConfigBuilder {
        DgcConfigBuilder::default()
    }

    /// The smallest TTA satisfying `TTA > 2·TTB + MaxComm` (plus one
    /// nanosecond of strict margin).
    pub fn minimal_safe_tta(ttb: Dur, max_comm: Dur) -> Dur {
        ttb.saturating_mul(2)
            .saturating_add(max_comm)
            .saturating_add(Dur::from_nanos(1))
    }

    /// Checks the §3.1 safety formula `TTA > 2·TTB + MaxComm`, using the
    /// *largest* TTB the timing mode can produce.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let worst_ttb = match self.timing {
            TimingMode::Static => self.ttb,
            TimingMode::Adaptive { max_ttb, .. } => max_ttb.max(self.ttb),
        };
        if self.tta > worst_ttb.saturating_mul(2).saturating_add(self.max_comm) {
            Ok(())
        } else {
            Err(ConfigError {
                ttb: worst_ttb,
                tta: self.tta,
                max_comm: self.max_comm,
            })
        }
    }
}

/// Builder for [`DgcConfig`].
#[derive(Debug, Clone)]
pub struct DgcConfigBuilder {
    ttb: Dur,
    tta: Option<Dur>,
    max_comm: Dur,
    propagate_consensus: bool,
    parent_policy: ParentPolicy,
    timing: TimingMode,
}

impl Default for DgcConfigBuilder {
    fn default() -> Self {
        DgcConfigBuilder {
            // The paper's NAS settings (§5.2): TTB 30 s, TTA 61 s.
            ttb: Dur::from_secs(30),
            tta: None,
            max_comm: Dur::from_millis(500),
            propagate_consensus: true,
            parent_policy: ParentPolicy::default(),
            timing: TimingMode::Static,
        }
    }
}

impl DgcConfigBuilder {
    /// Sets the heartbeat period.
    pub fn ttb(mut self, ttb: Dur) -> Self {
        self.ttb = ttb;
        self
    }

    /// Sets the silence timeout. When unset, the minimal safe value for
    /// the configured TTB and MaxComm is used.
    pub fn tta(mut self, tta: Dur) -> Self {
        self.tta = Some(tta);
        self
    }

    /// Sets the assumed communication-time upper bound.
    pub fn max_comm(mut self, max_comm: Dur) -> Self {
        self.max_comm = max_comm;
        self
    }

    /// Enables/disables the §4.3 consensus-propagation optimization.
    pub fn propagate_consensus(mut self, on: bool) -> Self {
        self.propagate_consensus = on;
        self
    }

    /// Sets the parent-selection policy.
    pub fn parent_policy(mut self, policy: ParentPolicy) -> Self {
        self.parent_policy = policy;
        self
    }

    /// Sets the timing mode.
    pub fn timing(mut self, timing: TimingMode) -> Self {
        self.timing = timing;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> DgcConfig {
        let tta = self
            .tta
            .unwrap_or_else(|| DgcConfig::minimal_safe_tta(self.ttb, self.max_comm));
        DgcConfig {
            ttb: self.ttb,
            tta,
            max_comm: self.max_comm,
            propagate_consensus: self.propagate_consensus,
            parent_policy: self.parent_policy,
            timing: self.timing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_nas_settings() {
        let c = DgcConfig::default();
        assert_eq!(c.ttb, Dur::from_secs(30));
        assert!(c.propagate_consensus);
        assert_eq!(c.parent_policy, ParentPolicy::FirstResponder);
        assert_eq!(c.timing, TimingMode::Static);
        c.validate().expect("defaults must be safe");
    }

    #[test]
    fn default_tta_is_minimal_safe() {
        let c = DgcConfig::builder().ttb(Dur::from_secs(10)).build();
        assert!(c.tta > Dur::from_secs(20));
        assert!(c.tta <= Dur::from_secs(21));
    }

    #[test]
    fn validate_rejects_unsafe_tta() {
        let c = DgcConfig::builder()
            .ttb(Dur::from_secs(30))
            .tta(Dur::from_secs(60))
            .max_comm(Dur::from_secs(1))
            .build();
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("TTA"));
    }

    #[test]
    fn validate_uses_worst_case_adaptive_ttb() {
        let c = DgcConfig::builder()
            .ttb(Dur::from_secs(30))
            .tta(Dur::from_secs(70))
            .max_comm(Dur::from_secs(1))
            .timing(TimingMode::Adaptive {
                min_ttb: Dur::from_secs(5),
                max_ttb: Dur::from_secs(60),
            })
            .build();
        assert!(c.validate().is_err(), "max_ttb 60 makes TTA 70 unsafe");
        let ok = DgcConfig::builder()
            .ttb(Dur::from_secs(30))
            .tta(Dur::from_secs(200))
            .timing(TimingMode::Adaptive {
                min_ttb: Dur::from_secs(5),
                max_ttb: Dur::from_secs(60),
            })
            .build();
        ok.validate().unwrap();
    }

    #[test]
    fn paper_nas_params_are_valid() {
        // TTB 30s, TTA 61s "as per the formula in Section 3.1" with small
        // MaxComm.
        let c = DgcConfig::builder()
            .ttb(Dur::from_secs(30))
            .tta(Dur::from_secs(61))
            .max_comm(Dur::from_millis(500))
            .build();
        c.validate().unwrap();
    }

    #[test]
    fn paper_torture_params_are_valid() {
        for (ttb, tta) in [(30u64, 150u64), (300, 1500)] {
            let c = DgcConfig::builder()
                .ttb(Dur::from_secs(ttb))
                .tta(Dur::from_secs(tta))
                .build();
            c.validate().unwrap();
        }
    }

    #[test]
    fn minimal_safe_tta_is_strictly_greater() {
        let ttb = Dur::from_secs(30);
        let mc = Dur::from_secs(1);
        let tta = DgcConfig::minimal_safe_tta(ttb, mc);
        assert!(tta > ttb.saturating_mul(2).saturating_add(mc));
    }
}
