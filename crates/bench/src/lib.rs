//! Shared harness code for the benchmark targets in `benches/`.
//!
//! Every table and figure of the paper's evaluation (§5) has a dedicated
//! `harness = false` bench target that prints the regenerated rows next
//! to the paper's published numbers. This crate holds the pieces they
//! share: scale selection, simple statistics, table formatting, and the
//! standard paper configurations.

use std::fmt::Write as _;

use dgc_activeobj::collector::CollectorKind;
use dgc_core::config::DgcConfig;
use dgc_core::units::Dur;
use dgc_simnet::topology::Topology;
use dgc_workloads::nas::{run_kernel, Kernel, NasOutcome, NasParams};

/// Benchmark scale, selected by the `DGC_BENCH_SCALE` environment
/// variable (`full`, the default, reproduces the paper's sizes; `quick`
/// shrinks them so `cargo bench` smoke runs stay snappy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale: 128 processes, 256 NAS workers, 6401 torture objects.
    Full,
    /// Reduced sizes for smoke benchmarking.
    Quick,
}

impl Scale {
    /// Reads `DGC_BENCH_SCALE` (default [`Scale::Full`] — the bench
    /// suite's purpose is regenerating the paper's numbers; set `quick`
    /// to smoke-test).
    pub fn from_env() -> Scale {
        match std::env::var("DGC_BENCH_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Full,
        }
    }

    /// Number of repeated runs for mean/std-dev rows (paper: 3;
    /// overridable via `DGC_BENCH_RUNS`).
    pub fn runs(self) -> usize {
        match std::env::var("DGC_BENCH_RUNS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(n) if n > 0 => n,
            _ => match self {
                Scale::Full => 3,
                Scale::Quick => 1,
            },
        }
    }

    /// NAS parameters at this scale.
    pub fn nas_params(self, kernel: Kernel) -> NasParams {
        match self {
            Scale::Full => kernel.class_c(),
            Scale::Quick => kernel.class_c().scaled_down(12, 15),
        }
    }

    /// Topology at this scale.
    pub fn topology(self) -> Topology {
        match self {
            Scale::Full => Topology::grid5000(),
            Scale::Quick => Topology::grid5000_scaled(2),
        }
    }
}

/// The paper's NAS DGC parameters (§5.2): TTB 30 s, TTA 61 s.
pub fn nas_dgc_config() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_secs(30))
        .tta(Dur::from_secs(61))
        .max_comm(Dur::from_millis(500))
        .build()
}

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (paper tables show std dev across 3 runs).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Bytes → mebibytes, as in the paper's tables.
pub fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// A plain-text table printer with right-aligned columns.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// One NAS measurement pair (control + DGC runs for every seed).
#[derive(Debug, Clone)]
pub struct NasSeries {
    /// Kernel.
    pub kernel: Kernel,
    /// Control runs (no collector).
    pub control: Vec<NasOutcome>,
    /// Runs with the complete DGC.
    pub dgc: Vec<NasOutcome>,
}

/// Runs the full NAS series for all three kernels — shared by the
/// Fig. 8 and Fig. 9 targets. Deterministic per (scale, seed).
pub fn nas_series(scale: Scale) -> Vec<NasSeries> {
    let runs = scale.runs();
    Kernel::ALL
        .iter()
        .map(|&kernel| {
            let params = scale.nas_params(kernel);
            let mut control = Vec::new();
            let mut dgc = Vec::new();
            for r in 0..runs {
                let seed = 0xBA5E + r as u64;
                eprintln!(
                    "[nas] {} run {}/{} (control + dgc)…",
                    params.name,
                    r + 1,
                    runs
                );
                control.push(run_kernel(
                    kernel,
                    &params,
                    scale.topology(),
                    CollectorKind::None,
                    seed,
                ));
                dgc.push(run_kernel(
                    kernel,
                    &params,
                    scale.topology(),
                    CollectorKind::Complete(nas_dgc_config()),
                    seed,
                ));
            }
            NasSeries {
                kernel,
                control,
                dgc,
            }
        })
        .collect()
}

/// Percentage overhead `(with - without) / without`.
pub fn overhead_pct(without: f64, with: f64) -> f64 {
    if without == 0.0 {
        return 0.0;
    }
    (with - without) / without * 100.0
}

/// Records a bench run's headline numbers as `BENCH_<name>.json` at the
/// repo root — the perf trajectory the CI `bench-record` step uploads
/// and future re-anchors diff. The schema is
/// [`dgc_obs::bench::report_json`]'s flat metric map. Recording is
/// best-effort: an unwritable checkout (say, a sandboxed bench run)
/// logs and moves on rather than failing the measurement.
pub fn record(name: &str, metrics: &[(&str, f64)]) {
    // dgc-analysis: allow(wall-clock): the bench harness records wall time by design
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = dgc_obs::bench::report_json(name, unix_secs, metrics);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[bench] recorded {}", path.display()),
        Err(e) => eprintln!("[bench] could not record {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(std_dev(&[2.0, 4.0]) > 1.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn overhead_formula_matches_paper() {
        // Fig. 8 CG row: 194351.81 -> 223639.83 = 15.07 %.
        let pct = overhead_pct(194_351.81, 223_639.83);
        assert!((pct - 15.07).abs() < 0.01);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["100", "x"]);
        let s = t.render();
        assert!(s.contains("long-header"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn mib_conversion() {
        assert_eq!(mib(1024 * 1024), 1.0);
    }
}
