//! The egress plane: one per-destination outbox for every message the
//! node sends, whatever plane it belongs to.
//!
//! The paper's §4.2 bandwidth argument assumes DGC heartbeats ride
//! communication that is flowing anyway; before this module each plane
//! paid its own way — the socket runtime batched DGC units only with
//! each other, membership gossiped on its own cadence, and application
//! requests shipped alone. The egress plane replaces those per-feature
//! batching policies with **one** composable mechanism: every outgoing
//! unit, classified by [`EgressClass`], is enqueued into a runtime's
//! [`Outbox`]; the [`FlushPolicy`] decides when a destination's queue
//! becomes a frame:
//!
//! * **flush-on-app-send** — an application request/reply is latency
//!   sensitive and flushes its destination immediately, carrying every
//!   queued heartbeat and gossip digest with it for free (the
//!   *piggyback*: a heartbeat to a peer we are already talking to costs
//!   ~0 extra frames);
//! * **max-delay** — background units (heartbeats, digests, control)
//!   may linger at most this long waiting for company;
//! * **max-bytes / max-items** — a queue that grows past either bound
//!   flushes early so frames stay bounded.
//!
//! The outbox is sans-io and runtime-neutral, like the rest of this
//! crate: `dgc-rt-net` drives one per node event loop and turns flushes
//! into length-prefixed TCP frames; `dgc-simnet`'s grid drives one per
//! process and turns flushes into single metered network sends (one
//! call envelope per frame instead of one per unit, which is exactly
//! the saving the paper measures). Items flush in enqueue order, so
//! per-destination — and therefore per-class — FIFO is preserved, the
//! §3.2 transport assumption both runtimes rely on.

use std::collections::HashMap;

use dgc_obs::{Counter, Histogram, LocalHistogram, Registry};

use crate::units::{Dur, Time};

/// Classification of an egress unit: which plane it belongs to.
///
/// The classes mirror the traffic accounting of the paper's
/// instrumented proxy (and `dgc_simnet::TrafficClass`); the egress
/// plane itself only distinguishes *application* traffic (which
/// triggers flush-on-app-send) from everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EgressClass {
    /// An application request (method call between activities).
    AppRequest,
    /// An application reply (future value).
    AppReply,
    /// A DGC message (TTB heartbeat).
    DgcMessage,
    /// A DGC response.
    DgcResponse,
    /// A membership gossip digest.
    Gossip,
    /// Transport control (send-failure notifications and the like).
    Control,
}

impl EgressClass {
    /// True for the latency-sensitive application classes that trigger
    /// flush-on-app-send.
    pub fn is_app(self) -> bool {
        matches!(self, EgressClass::AppRequest | EgressClass::AppReply)
    }
}

/// When a destination's queue becomes a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Flush the destination the moment an application unit is
    /// enqueued, so background units piggyback on the app frame.
    pub flush_on_app: bool,
    /// Longest a queued unit may wait for company. [`Dur::ZERO`] makes
    /// the outbox *immediate*: every enqueue flushes by itself (the
    /// one-frame-per-unit behaviour the paper measured as baseline).
    pub max_delay: Dur,
    /// Flush when a destination's queued bytes reach this bound.
    pub max_bytes: u64,
    /// Flush when a destination's queued unit count reaches this bound.
    pub max_items: usize,
}

impl FlushPolicy {
    /// Every enqueue flushes by itself — no coalescing, no added
    /// latency. The baseline the batching comparisons run against.
    /// (`max_items` stays above 1 so these flushes report as
    /// [`FlushReason::MaxDelay`], the immediate-policy reason, not as
    /// a bounds trip.)
    pub fn immediate() -> FlushPolicy {
        FlushPolicy {
            flush_on_app: true,
            max_delay: Dur::ZERO,
            max_bytes: 64 * 1024,
            max_items: 4096,
        }
    }

    /// True when every enqueue flushes immediately.
    pub fn is_immediate(&self) -> bool {
        self.max_delay.is_zero()
    }
}

impl Default for FlushPolicy {
    /// Batching defaults: app sends flush instantly (and carry the
    /// queue), background units linger up to 1 ms — comfortably one
    /// event-loop sweep at millisecond TTBs, invisible at the paper's
    /// 30 s TTB — and frames stay under 64 KiB / 4096 units.
    fn default() -> FlushPolicy {
        FlushPolicy {
            flush_on_app: true,
            max_delay: Dur::from_millis(1),
            max_bytes: 64 * 1024,
            max_items: 4096,
        }
    }
}

/// One unit inside the outbox (and inside a [`Flush`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedItem<T> {
    /// The unit's plane.
    pub class: EgressClass,
    /// Its wire size in bytes (what the runtime will charge the link).
    pub size: u64,
    /// The unit itself.
    pub item: T,
}

/// Why a flush fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// An application unit was enqueued (flush-on-app-send); everything
    /// else in the flush piggybacked.
    AppSend,
    /// The oldest queued unit reached `max_delay` (or the policy is
    /// immediate).
    MaxDelay,
    /// The queue reached `max_bytes` or `max_items`.
    Bounds,
    /// The runtime forced the flush (shutdown, graceful leave).
    Forced,
}

/// One frame's worth of units for one destination, in enqueue order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flush<T> {
    /// Destination node.
    pub dest: u32,
    /// What fired it.
    pub reason: FlushReason,
    /// The units, oldest first.
    pub items: Vec<QueuedItem<T>>,
}

impl<T> Flush<T> {
    /// Total payload bytes of the flush.
    pub fn bytes(&self) -> u64 {
        self.items.iter().map(|i| i.size).sum()
    }
}

/// Monotone counters of what the outbox did, for benches and tests.
///
/// Conservation invariant (checked by `tests/egress_props.rs`): every
/// unit that enters the outbox either flushes or is returned by
/// [`Outbox::drop_dest`], so
/// `enqueued_items = items + dropped_items + pending` (and likewise
/// for bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EgressStats {
    /// Units accepted by [`Outbox::enqueue`].
    pub enqueued_items: u64,
    /// Payload bytes accepted by [`Outbox::enqueue`].
    pub enqueued_bytes: u64,
    /// Units returned by [`Outbox::drop_dest`] for departed peers.
    pub dropped_items: u64,
    /// Payload bytes returned by [`Outbox::drop_dest`].
    pub dropped_bytes: u64,
    /// Flushes emitted (= frames the runtime will send).
    pub flushes: u64,
    /// Units flushed.
    pub items: u64,
    /// Payload bytes flushed.
    pub bytes: u64,
    /// Non-app units that rode an [`FlushReason::AppSend`] flush — the
    /// heartbeats and digests that cost no frame of their own.
    pub piggybacked: u64,
    /// Flushes fired by an application send.
    pub app_flushes: u64,
    /// Flushes fired by the delay bound (or immediate policy).
    pub delay_flushes: u64,
    /// Flushes fired by the byte/item bounds.
    pub bound_flushes: u64,
    /// Flushes forced by the runtime.
    pub forced_flushes: u64,
}

/// Cached `dgc-obs` handles an [`Outbox`] mirrors its [`EgressStats`]
/// into when attached ([`Outbox::set_obs`]). Counter names live under
/// `egress.` in the owning node's registry and converge to the legacy
/// struct by delta-sync: the enqueue and flush hot paths touch **no**
/// shared atomics — histogram samples buffer in a [`LocalHistogram`]
/// and counter deltas accumulate in plain stats, and the outbox pushes
/// both into the registry on a sparse cadence (every
/// [`SYNC_EVERY_FLUSHES`]th flush, any forced flush or destination
/// drop, and whenever the outbox drains empty). A mid-burst snapshot
/// may therefore lag the legacy struct slightly; at quiescence they are
/// equal (the conservation tests cross-check). The histograms add what
/// plain counters cannot: the distribution of how long flushed units
/// lingered waiting for company (`egress.flush_linger_ns`) and of
/// flush sizes (`egress.flush_items`).
#[derive(Debug, Clone)]
pub struct EgressObs {
    enqueued_items: Counter,
    enqueued_bytes: Counter,
    dropped_items: Counter,
    dropped_bytes: Counter,
    flushes: Counter,
    items: Counter,
    bytes: Counter,
    piggybacked: Counter,
    app_flushes: Counter,
    delay_flushes: Counter,
    bound_flushes: Counter,
    forced_flushes: Counter,
    flush_linger: Histogram,
    flush_items: Histogram,
}

impl EgressObs {
    /// Resolves the outbox's handles against `registry`.
    pub fn new(registry: &Registry) -> EgressObs {
        EgressObs {
            enqueued_items: registry.counter("egress.enqueued_items"),
            enqueued_bytes: registry.counter("egress.enqueued_bytes"),
            dropped_items: registry.counter("egress.dropped_items"),
            dropped_bytes: registry.counter("egress.dropped_bytes"),
            flushes: registry.counter("egress.flushes"),
            items: registry.counter("egress.items"),
            bytes: registry.counter("egress.bytes"),
            piggybacked: registry.counter("egress.piggybacked"),
            app_flushes: registry.counter("egress.flush_reason.app"),
            delay_flushes: registry.counter("egress.flush_reason.delay"),
            bound_flushes: registry.counter("egress.flush_reason.bounds"),
            forced_flushes: registry.counter("egress.flush_reason.forced"),
            flush_linger: registry.histogram("egress.flush_linger_ns"),
            flush_items: registry.histogram("egress.flush_items"),
        }
    }
}

#[derive(Debug)]
struct DestQueue<T> {
    /// The destination this slot currently serves (stale in freed
    /// slots, which always have empty `items`).
    dest: u32,
    items: Vec<QueuedItem<T>>,
    bytes: u64,
    /// When the oldest queued item must flush.
    deadline: Time,
    /// When the oldest queued item was enqueued (linger histogram).
    first_at: Time,
}

/// The per-destination outbox. `T` is the runtime's unit type (a frame
/// item on sockets, a scheduled event payload in the simulator); the
/// outbox never looks inside it.
///
/// Queues live in a dense slot `Vec` — one slot per destination, found
/// through a `dest → slot` index with a one-entry cache in front (a
/// TTB sweep enqueues runs of units for the same destination; those
/// repeats skip the map entirely). A departed destination's slot is
/// recycled through a free list, keeping the slot vector bounded by
/// the peak number of live destinations. Flush order is deterministic:
/// [`Outbox::poll`] and [`Outbox::flush_all`] emit in ascending
/// destination order, exactly as the `BTreeMap`-backed original did.
#[derive(Debug)]
pub struct Outbox<T> {
    policy: FlushPolicy,
    slots: Vec<DestQueue<T>>,
    /// Destination → slot index. Lookups iterate nothing, so the map's
    /// (hash) iteration order never influences behavior.
    index: HashMap<u32, usize>,
    /// Recycled slots of departed destinations.
    free: Vec<usize>,
    /// Last `(dest, slot)` touched — the sweep-burst fast path.
    last_slot: Option<(u32, usize)>,
    stats: EgressStats,
    obs: Option<EgressObs>,
    /// The stats values already pushed into `obs` (delta-sync marker).
    mirrored: EgressStats,
    /// Cached `Σ slots.items.len()` so the drained-empty sync trigger
    /// costs one integer compare instead of a slot walk.
    pending: u64,
    /// Flushes since the last [`Outbox::sync_obs`].
    unsynced_flushes: u32,
    local_flush_linger: LocalHistogram,
    local_flush_items: LocalHistogram,
}

/// How many flushes may pass between registry syncs while the outbox
/// stays non-empty. Small enough that observers stay fresh to within a
/// burst, large enough to amortize the shared-atomic traffic to noise.
pub const SYNC_EVERY_FLUSHES: u32 = 64;

impl<T> Outbox<T> {
    /// An empty outbox under `policy`.
    pub fn new(policy: FlushPolicy) -> Outbox<T> {
        Outbox {
            policy,
            slots: Vec::new(),
            index: HashMap::new(),
            free: Vec::new(),
            last_slot: None,
            stats: EgressStats::default(),
            obs: None,
            mirrored: EgressStats::default(),
            pending: 0,
            unsynced_flushes: 0,
            local_flush_linger: LocalHistogram::new(),
            local_flush_items: LocalHistogram::new(),
        }
    }

    /// The slot serving `dest`, if any — the one-entry cache first,
    /// then the index.
    #[inline]
    fn slot_of(&self, dest: u32) -> Option<usize> {
        if let Some((d, s)) = self.last_slot {
            if d == dest {
                return Some(s);
            }
        }
        self.index.get(&dest).copied()
    }

    /// The slot serving `dest`, materializing one (recycled if
    /// possible) on first use.
    fn slot_for(&mut self, dest: u32, now: Time) -> usize {
        if let Some(s) = self.slot_of(dest) {
            self.last_slot = Some((dest, s));
            return s;
        }
        let s = match self.free.pop() {
            Some(s) => {
                // dgc-analysis: allow(hot-path-panic): slot index comes from the free list / slot map, in bounds by construction
                let q = &mut self.slots[s];
                debug_assert!(q.items.is_empty(), "freed slot must be drained");
                q.dest = dest;
                q.bytes = 0;
                q.deadline = now + self.policy.max_delay;
                q.first_at = now;
                s
            }
            None => {
                self.slots.push(DestQueue {
                    dest,
                    items: Vec::new(),
                    bytes: 0,
                    deadline: now + self.policy.max_delay,
                    first_at: now,
                });
                self.slots.len() - 1
            }
        };
        self.index.insert(dest, s);
        self.last_slot = Some((dest, s));
        s
    }

    /// Attaches telemetry handles; the outbox mirrors its stats into
    /// the registry they came from at every flush boundary (see
    /// [`EgressObs`] — the enqueue hot path stays atomic-free).
    pub fn set_obs(&mut self, obs: EgressObs) {
        self.obs = Some(obs);
        self.sync_obs();
    }

    /// Pushes the not-yet-mirrored stats deltas and buffered histogram
    /// samples into the registry handles. Called on the sparse sync
    /// cadence, never per enqueue.
    fn sync_obs(&mut self) {
        let Some(obs) = &self.obs else { return };
        self.unsynced_flushes = 0;
        self.local_flush_linger.drain_into(&obs.flush_linger);
        self.local_flush_items.drain_into(&obs.flush_items);
        let s = self.stats;
        let m = &mut self.mirrored;
        let push = |c: &Counter, new: u64, old: &mut u64| {
            if new > *old {
                c.add(new - *old);
                *old = new;
            }
        };
        push(&obs.enqueued_items, s.enqueued_items, &mut m.enqueued_items);
        push(&obs.enqueued_bytes, s.enqueued_bytes, &mut m.enqueued_bytes);
        push(&obs.dropped_items, s.dropped_items, &mut m.dropped_items);
        push(&obs.dropped_bytes, s.dropped_bytes, &mut m.dropped_bytes);
        push(&obs.flushes, s.flushes, &mut m.flushes);
        push(&obs.items, s.items, &mut m.items);
        push(&obs.bytes, s.bytes, &mut m.bytes);
        push(&obs.piggybacked, s.piggybacked, &mut m.piggybacked);
        push(&obs.app_flushes, s.app_flushes, &mut m.app_flushes);
        push(&obs.delay_flushes, s.delay_flushes, &mut m.delay_flushes);
        push(&obs.bound_flushes, s.bound_flushes, &mut m.bound_flushes);
        push(&obs.forced_flushes, s.forced_flushes, &mut m.forced_flushes);
    }

    /// The policy in force.
    pub fn policy(&self) -> &FlushPolicy {
        &self.policy
    }

    /// Queues one unit for `dest` and returns the flush it triggered,
    /// if the policy demands one *now* (app send, a bound reached, or
    /// an immediate policy). Otherwise the unit waits — the runtime
    /// must call [`Outbox::poll`] no later than
    /// [`Outbox::next_deadline`].
    pub fn enqueue(
        &mut self,
        now: Time,
        dest: u32,
        class: EgressClass,
        size: u64,
        item: T,
    ) -> Option<Flush<T>> {
        let s = self.slot_for(dest, now);
        // dgc-analysis: allow(hot-path-panic): slot index comes from the free list / slot map, in bounds by construction
        let q = &mut self.slots[s];
        if q.items.is_empty() {
            q.deadline = now + self.policy.max_delay;
            q.first_at = now;
        }
        q.items.push(QueuedItem { class, size, item });
        q.bytes += size;
        self.pending += 1;
        self.stats.enqueued_items += 1;
        self.stats.enqueued_bytes += size;
        if self.policy.flush_on_app && class.is_app() {
            return self.take(Some(now), dest, FlushReason::AppSend);
        }
        if q.bytes >= self.policy.max_bytes || q.items.len() >= self.policy.max_items {
            return self.take(Some(now), dest, FlushReason::Bounds);
        }
        if self.policy.max_delay.is_zero() {
            return self.take(Some(now), dest, FlushReason::MaxDelay);
        }
        None
    }

    /// Flushes every destination whose oldest unit has waited out
    /// `max_delay`, in ascending destination order.
    pub fn poll(&mut self, now: Time) -> Vec<Flush<T>> {
        let mut due: Vec<u32> = self
            .slots
            .iter()
            .filter(|q| !q.items.is_empty() && q.deadline <= now)
            .map(|q| q.dest)
            .collect();
        due.sort_unstable();
        due.into_iter()
            .filter_map(|d| self.take(Some(now), d, FlushReason::MaxDelay))
            .collect()
    }

    /// The earliest instant a queued unit must flush; `None` while
    /// nothing is queued.
    pub fn next_deadline(&self) -> Option<Time> {
        self.slots
            .iter()
            .filter(|q| !q.items.is_empty())
            .map(|q| q.deadline)
            .min()
    }

    /// Forces `dest`'s queue out (shutdown, graceful leave).
    pub fn flush(&mut self, dest: u32) -> Option<Flush<T>> {
        self.take(None, dest, FlushReason::Forced)
    }

    /// Forces every queue out, destination order.
    pub fn flush_all(&mut self) -> Vec<Flush<T>> {
        let mut dests: Vec<u32> = self
            .slots
            .iter()
            .filter(|q| !q.items.is_empty())
            .map(|q| q.dest)
            .collect();
        dests.sort_unstable();
        dests
            .into_iter()
            .filter_map(|d| self.take(None, d, FlushReason::Forced))
            .collect()
    }

    /// Forgets `dest` entirely — queue, byte count and flush deadline —
    /// and returns whatever was still waiting, oldest first.
    ///
    /// This is the reclamation path for a **departed** peer (a
    /// membership Dead/Left verdict, a terminal transport conviction):
    /// without it a destination's queue lives for the outbox's whole
    /// lifetime, exactly like the lease lists of Birrell-style
    /// reference listing retaining state for parties that are gone. The
    /// caller must surface the returned units as send failures — they
    /// were accepted for delivery and must not silently vanish.
    pub fn drop_dest(&mut self, dest: u32) -> Vec<QueuedItem<T>> {
        let Some(s) = self.index.remove(&dest) else {
            return Vec::new();
        };
        if self.last_slot.map(|(d, _)| d) == Some(dest) {
            self.last_slot = None;
        }
        // dgc-analysis: allow(hot-path-panic): slot index comes from the free list / slot map, in bounds by construction
        let q = &mut self.slots[s];
        let items = std::mem::take(&mut q.items);
        let bytes = q.bytes;
        q.bytes = 0;
        self.free.push(s);
        self.pending -= items.len() as u64;
        self.stats.dropped_items += items.len() as u64;
        self.stats.dropped_bytes += bytes;
        self.sync_obs();
        items
    }

    /// Units currently waiting across all destinations.
    pub fn pending_items(&self) -> usize {
        self.slots.iter().map(|q| q.items.len()).sum()
    }

    /// Payload bytes currently waiting across all destinations.
    pub fn pending_bytes(&self) -> u64 {
        self.slots.iter().map(|q| q.bytes).sum()
    }

    /// Units currently waiting for `dest` (0 after a
    /// [`Outbox::drop_dest`]).
    pub fn pending_items_for(&self, dest: u32) -> usize {
        // dgc-analysis: allow(hot-path-panic): slot index comes from the free list / slot map, in bounds by construction
        self.slot_of(dest).map_or(0, |s| self.slots[s].items.len())
    }

    /// What the outbox has flushed so far.
    pub fn stats(&self) -> EgressStats {
        self.stats
    }

    fn take(&mut self, now: Option<Time>, dest: u32, reason: FlushReason) -> Option<Flush<T>> {
        let s = self.slot_of(dest)?;
        // dgc-analysis: allow(hot-path-panic): slot index comes from the free list / slot map, in bounds by construction
        let q = &mut self.slots[s];
        if q.items.is_empty() {
            return None;
        }
        let first_at = q.first_at;
        let items = std::mem::take(&mut q.items);
        q.bytes = 0;
        self.pending -= items.len() as u64;
        self.stats.flushes += 1;
        self.stats.items += items.len() as u64;
        let flushed_bytes = items.iter().map(|i| i.size).sum::<u64>();
        self.stats.bytes += flushed_bytes;
        let rode_along = items.iter().filter(|i| !i.class.is_app()).count() as u64;
        match reason {
            FlushReason::AppSend => {
                self.stats.app_flushes += 1;
                self.stats.piggybacked += rode_along;
            }
            FlushReason::MaxDelay => self.stats.delay_flushes += 1,
            FlushReason::Bounds => self.stats.bound_flushes += 1,
            FlushReason::Forced => self.stats.forced_flushes += 1,
        }
        if self.obs.is_some() {
            self.local_flush_items.record(items.len() as u64);
            // How long the oldest unit waited for company; forced
            // flushes carry no "now" and skip the sample.
            if let Some(now) = now {
                self.local_flush_linger
                    .record(now.since(first_at).as_nanos());
            }
            self.unsynced_flushes += 1;
            if self.unsynced_flushes >= SYNC_EVERY_FLUSHES
                || self.pending == 0
                || reason == FlushReason::Forced
            {
                self.sync_obs();
            }
        }
        Some(Flush {
            dest,
            reason,
            items,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Time {
        Time::from_nanos(v * 1_000_000)
    }

    fn policy() -> FlushPolicy {
        FlushPolicy {
            flush_on_app: true,
            max_delay: Dur::from_millis(5),
            max_bytes: 1000,
            max_items: 10,
        }
    }

    #[test]
    fn background_units_linger_until_max_delay() {
        let mut ob: Outbox<u32> = Outbox::new(policy());
        assert!(ob
            .enqueue(ms(0), 1, EgressClass::DgcMessage, 34, 0)
            .is_none());
        assert!(ob.enqueue(ms(1), 1, EgressClass::Gossip, 20, 1).is_none());
        assert_eq!(ob.next_deadline(), Some(ms(5)));
        assert!(ob.poll(ms(4)).is_empty(), "not due yet");
        let flushes = ob.poll(ms(5));
        assert_eq!(flushes.len(), 1);
        assert_eq!(flushes[0].reason, FlushReason::MaxDelay);
        assert_eq!(flushes[0].items.len(), 2);
        assert_eq!(flushes[0].bytes(), 54);
        assert_eq!(ob.pending_items(), 0);
        assert_eq!(ob.next_deadline(), None);
    }

    #[test]
    fn app_send_flushes_and_piggybacks_the_queue() {
        let mut ob: Outbox<u32> = Outbox::new(policy());
        ob.enqueue(ms(0), 1, EgressClass::DgcMessage, 34, 0);
        ob.enqueue(ms(0), 1, EgressClass::Gossip, 20, 1);
        // A different destination's queue must be untouched.
        ob.enqueue(ms(0), 2, EgressClass::DgcMessage, 34, 9);
        let flush = ob
            .enqueue(ms(1), 1, EgressClass::AppRequest, 128, 2)
            .expect("app send flushes");
        assert_eq!(flush.reason, FlushReason::AppSend);
        assert_eq!(flush.dest, 1);
        let order: Vec<u32> = flush.items.iter().map(|i| i.item).collect();
        assert_eq!(order, vec![0, 1, 2], "enqueue order preserved");
        assert_eq!(ob.stats().piggybacked, 2, "heartbeat + digest rode along");
        assert_eq!(ob.pending_items(), 1, "dest 2 still queued");
    }

    #[test]
    fn byte_and_item_bounds_flush_early() {
        let mut ob: Outbox<u32> = Outbox::new(policy());
        let flush = ob
            .enqueue(ms(0), 1, EgressClass::DgcMessage, 2000, 0)
            .expect("oversized unit flushes at once");
        assert_eq!(flush.reason, FlushReason::Bounds);
        for i in 0..9 {
            assert!(ob.enqueue(ms(0), 1, EgressClass::Control, 1, i).is_none());
        }
        let flush = ob
            .enqueue(ms(0), 1, EgressClass::Control, 1, 9)
            .expect("10th unit hits max_items");
        assert_eq!(flush.items.len(), 10);
    }

    #[test]
    fn immediate_policy_flushes_every_enqueue() {
        let mut ob: Outbox<u32> = Outbox::new(FlushPolicy::immediate());
        assert!(FlushPolicy::immediate().is_immediate());
        for i in 0..3 {
            let f = ob
                .enqueue(ms(0), 7, EgressClass::DgcResponse, 26, i)
                .expect("immediate");
            assert_eq!(f.items.len(), 1);
            assert_eq!(f.reason, FlushReason::MaxDelay, "the immediate reason");
        }
        assert_eq!(ob.stats().flushes, 3);
        assert_eq!(ob.stats().delay_flushes, 3);
        assert_eq!(ob.stats().piggybacked, 0);
    }

    #[test]
    fn deadline_restarts_with_each_fresh_queue() {
        let mut ob: Outbox<u32> = Outbox::new(policy());
        ob.enqueue(ms(0), 1, EgressClass::DgcMessage, 1, 0);
        ob.poll(ms(5));
        // The queue emptied; a later unit gets its own full delay.
        ob.enqueue(ms(20), 1, EgressClass::DgcMessage, 1, 1);
        assert_eq!(ob.next_deadline(), Some(ms(25)));
        // But the deadline is pinned to the *oldest* unit: later
        // arrivals do not extend it.
        ob.enqueue(ms(24), 1, EgressClass::DgcMessage, 1, 2);
        assert_eq!(ob.next_deadline(), Some(ms(25)));
    }

    #[test]
    fn drop_dest_forgets_queue_bytes_and_deadline() {
        let mut ob: Outbox<u32> = Outbox::new(policy());
        ob.enqueue(ms(0), 1, EgressClass::DgcMessage, 34, 0);
        ob.enqueue(ms(1), 1, EgressClass::Gossip, 20, 1);
        ob.enqueue(ms(2), 2, EgressClass::DgcMessage, 34, 2);
        assert_eq!(ob.next_deadline(), Some(ms(5)), "dest 1 owns the wakeup");
        let returned = ob.drop_dest(1);
        let items: Vec<u32> = returned.iter().map(|qi| qi.item).collect();
        assert_eq!(items, vec![0, 1], "queued units come back, oldest first");
        assert_eq!(ob.pending_items_for(1), 0);
        assert_eq!(ob.pending_items(), 1, "dest 2 untouched");
        assert_eq!(ob.pending_bytes(), 34);
        assert_eq!(
            ob.next_deadline(),
            Some(ms(7)),
            "the departed peer's wakeup deadline is gone with its queue"
        );
        let stats = ob.stats();
        assert_eq!(stats.dropped_items, 2);
        assert_eq!(stats.dropped_bytes, 54);
        assert_eq!(stats.enqueued_items, 3);
        assert!(ob.drop_dest(1).is_empty(), "idempotent");
        assert!(ob.drop_dest(9).is_empty(), "unknown destinations are fine");
    }

    #[test]
    fn stats_conserve_items_and_bytes() {
        let mut ob: Outbox<u32> = Outbox::new(policy());
        ob.enqueue(ms(0), 1, EgressClass::DgcMessage, 10, 0);
        ob.enqueue(ms(0), 2, EgressClass::Gossip, 20, 1);
        ob.enqueue(ms(0), 1, EgressClass::AppRequest, 30, 2); // flushes dest 1
        ob.drop_dest(2);
        ob.enqueue(ms(0), 3, EgressClass::Control, 40, 3); // still pending
        let s = ob.stats();
        assert_eq!(s.enqueued_items, 4);
        assert_eq!(s.enqueued_bytes, 100);
        assert_eq!(
            s.enqueued_items,
            s.items + s.dropped_items + ob.pending_items() as u64
        );
        assert_eq!(
            s.enqueued_bytes,
            s.bytes + s.dropped_bytes + ob.pending_bytes()
        );
    }

    #[test]
    fn forced_flush_drains_everything() {
        let mut ob: Outbox<u32> = Outbox::new(policy());
        ob.enqueue(ms(0), 1, EgressClass::DgcMessage, 1, 0);
        ob.enqueue(ms(0), 3, EgressClass::Gossip, 1, 1);
        ob.enqueue(ms(0), 2, EgressClass::Control, 1, 2);
        let flushes = ob.flush_all();
        assert_eq!(flushes.len(), 3);
        assert!(flushes.iter().all(|f| f.reason == FlushReason::Forced));
        let dests: Vec<u32> = flushes.iter().map(|f| f.dest).collect();
        assert_eq!(dests, vec![1, 2, 3], "destination order");
        assert_eq!(ob.pending_items(), 0);
        assert!(ob.flush(1).is_none(), "nothing left");
    }
}
