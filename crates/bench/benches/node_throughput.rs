//! Hot-path node throughput: batched arena sweeps vs the pre-arena
//! per-activity path, plus the full unit pipeline and the sharding axis.
//!
//! A node hosting `K` activities pays three recurring costs per TTB
//! round: the **sweep** (walk every due activity's referencer/referenced
//! tables and emit heartbeats), the **egress pipeline** (queue the
//! emitted units per destination, frame them), and the peer's **decode**.
//! This bench measures all three:
//!
//! 1. **Sweep ablation** — the arena/batched path (`DgcState::on_tick_into`
//!    with reused [`SweepScratch`]/[`SweepUnit`] buffers over a flat due
//!    list) against an in-run reconstruction of the pre-change path:
//!    the `BTreeMap` tables kept verbatim in `dgc_core::legacy`, the
//!    old `on_tick`'s idle-path logic transcribed over them (expiry
//!    scan, acyclic/cyclic checks, per-destination consensus-bit
//!    lookup), a fresh `Vec<Action>` per activity, and the old
//!    runtime's collect-ids-then-`get_mut` endpoint loop.
//! 2. **Pipeline** — units/second through sweep → egress outbox →
//!    [`split_len`]-bounded [`encode_batch_frame`] → [`FrameDecoder`]
//!    (the zero-copy decode).
//! 3. **Sharding** — the same sweep fanned across
//!    [`dgc_core::sweep_sharded`] worker threads. On a single-core
//!    runner threads cannot beat inline; the axis is recorded honestly
//!    for what it is.
//!
//! **Methodology.** Shared runners drift by integer factors between
//! runs, so the ablation is *paired*: both populations are built up
//! front, rounds alternate arena/legacy under the same clock, and each
//! leg is scored by its **minimum** round time over the repetitions
//! (after one untimed warmup round each, so first-touch page faults on
//! the tables and unit pools stay out of the numbers). Minimum-of-N
//! discards noise spikes; alternation cancels slow phases of the box.
//!
//! Scale: `quick` stops at 100 k activities; `full` adds the 1 M row.
//! The gate this bench enforces at 100 k activities: on a runner with
//! 2+ cores, the sharded batched sweep must clear **2×** the
//! (single-threaded, as it always was) pre-change path; on a
//! single-core runner, where the shard fan-out cannot help, the
//! unsharded batched sweep must still clear **1.25×** — the
//! single-thread ablation floor.
//!
//! Run: `cargo bench -p dgc-bench --bench node_throughput`

use std::collections::HashMap;
use std::time::Instant;

use dgc_bench::Scale;
use dgc_core::clock::NamedClock;
use dgc_core::config::DgcConfig;
use dgc_core::egress::{FlushPolicy, Outbox};
use dgc_core::id::AoId;
use dgc_core::legacy;
use dgc_core::message::{Action, DgcMessage, TerminateReason};
use dgc_core::protocol::DgcState;
use dgc_core::sweep::{sweep_sharded, SweepPools};
use dgc_core::units::{Dur, Time};
use dgc_rt_net::frame::{encode_batch_frame, split_len, FrameDecoder, Item};

/// Referenced targets per activity (heartbeats emitted per sweep).
const TARGETS: u32 = 32;
/// Referencer entries per activity (expiry-scan width per sweep).
const REFERENCERS: u32 = 32;
/// Remote activities heartbeats are spread over (distinct egress
/// destinations stay bounded, as on a real grid).
const PEER_ACTIVITIES: u32 = 64;

fn config() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_secs(30))
        // Wide enough that no referencer expires mid-measurement: the
        // bench times the steady broadcast state, not collection.
        .tta(Dur::from_secs(3600))
        .max_comm(Dur::from_millis(500))
        .build()
}

fn heartbeat(sender: AoId) -> DgcMessage {
    DgcMessage {
        sender,
        clock: NamedClock::initial(sender),
        consensus: false,
        sender_ttb: Dur::from_secs(30),
    }
}

/// The arena-path node: every hosted activity's full state machine.
fn build_states(k: u32) -> HashMap<u32, DgcState> {
    let cfg = config();
    let t0 = Time::ZERO;
    let mut states = HashMap::new();
    for i in 0..k {
        let me = AoId::new(0, i);
        let mut s = DgcState::new(me, t0, cfg);
        for j in 0..TARGETS {
            s.on_stub_deserialized(AoId::new(1, (i + j) % PEER_ACTIVITIES));
        }
        for j in 0..REFERENCERS {
            let from = AoId::new(1, (i * 7 + j) % PEER_ACTIVITIES);
            let _ = s.on_message(t0, &heartbeat(from));
        }
        states.insert(i, s);
    }
    states
}

/// The pre-change ablation baseline: the `BTreeMap` tables the arena
/// replaced, swept exactly the way the old `on_tick` used them.
struct LegacyEndpoint {
    id: AoId,
    clock: NamedClock,
    last_message_timestamp: Time,
    last_tick_at: Option<Time>,
    messages_sent: u64,
    referencers: legacy::ReferencerTable,
    referenced: legacy::ReferencedTable,
}

impl LegacyEndpoint {
    /// The old sweep for one idle activity, transcribed from the
    /// pre-change `DgcState::on_tick` Active path over the legacy
    /// tables: allocate-and-collect expiries, the acyclic self-timeout
    /// and cyclic consensus checks, allocate-and-collect broadcast
    /// targets, a per-destination consensus bit (Algorithm 2's
    /// `lastResponse` lookup), and a fresh `Vec<Action>` for the
    /// caller to route.
    fn on_tick(&mut self, now: Time, cfg: &DgcConfig) -> Vec<Action> {
        self.last_tick_at = Some(now);
        let expired = self.referencers.expire_silent(now, cfg.tta, cfg.max_comm);
        std::hint::black_box(expired.len());
        // Acyclic garbage: no DGC message for TTA (never fires here —
        // the bench measures the steady broadcast state).
        let timeout = self.referencers.max_expiry(cfg.tta, cfg.max_comm);
        if now.since(self.last_message_timestamp) > timeout {
            return vec![Action::Terminate {
                reason: TerminateReason::Acyclic,
            }];
        }
        // Cyclic garbage: our clock, unanimously echoed (never here —
        // the recorded referencer bits are all false).
        if self.clock.is_owned_by(self.id)
            && !self.referencers.is_empty()
            && self.referencers.agree(self.clock)
        {
            return vec![Action::Terminate {
                reason: TerminateReason::CyclicDetected,
            }];
        }
        let (targets, dropped) = self.referenced.broadcast_targets();
        std::hint::black_box(dropped.len());
        let mut actions = Vec::new();
        for dest in targets {
            let consensus = self
                .referenced
                .last_response(dest)
                .is_some_and(|r| r.clock == self.clock)
                && self.clock.is_owned_by(self.id);
            self.messages_sent += 1;
            actions.push(Action::SendMessage {
                to: dest,
                message: DgcMessage {
                    sender: self.id,
                    clock: self.clock,
                    consensus,
                    sender_ttb: cfg.ttb,
                },
            });
        }
        actions
    }
}

fn build_legacy(k: u32) -> HashMap<u32, LegacyEndpoint> {
    let t0 = Time::ZERO;
    let mut eps = HashMap::new();
    for i in 0..k {
        let me = AoId::new(0, i);
        let mut ep = LegacyEndpoint {
            id: me,
            clock: NamedClock::initial(me),
            last_message_timestamp: t0,
            last_tick_at: None,
            messages_sent: 0,
            referencers: legacy::ReferencerTable::new(),
            referenced: legacy::ReferencedTable::new(),
        };
        for j in 0..TARGETS {
            ep.referenced
                .on_stub_deserialized(AoId::new(1, (i + j) % PEER_ACTIVITIES));
        }
        for j in 0..REFERENCERS {
            let from = AoId::new(1, (i * 7 + j) % PEER_ACTIVITIES);
            ep.referencers.record_message(
                from,
                NamedClock::initial(from),
                false,
                t0,
                Dur::from_secs(30),
            );
        }
        eps.insert(i, ep);
    }
    eps
}

/// Timed repetitions per leg (one extra untimed warmup round precedes
/// them). Minimum round time over these is the leg's score.
fn reps_for(scale: Scale) -> u32 {
    match scale {
        Scale::Full => 9,
        Scale::Quick => 5,
    }
}

/// One arena sweep round over every activity: flat due list,
/// [`sweep_sharded`] fan-out, drain the pooled units. Returns the
/// number of units drained.
fn arena_round(
    states: &mut HashMap<u32, DgcState>,
    pools: &mut SweepPools,
    now: Time,
    shards: usize,
) -> u64 {
    let mut due: Vec<&mut DgcState> = states.values_mut().collect();
    sweep_sharded(&mut due, shards, pools, |state, scratch, sink| {
        state.on_tick_into(now, true, scratch, sink);
    });
    drop(due);
    let mut units = 0u64;
    for unit in pools.drain_units() {
        std::hint::black_box(&unit.action);
        units += 1;
    }
    units
}

/// One pre-change sweep round: collect due ids, re-hash every endpoint
/// (`HashMap::get_mut` each, as the old runtime loop did), route each
/// activity's freshly allocated `Vec<Action>`.
fn legacy_round(eps: &mut HashMap<u32, LegacyEndpoint>, cfg: &DgcConfig, now: Time) -> u64 {
    let due: Vec<u32> = eps.keys().copied().collect();
    let mut units = 0u64;
    for idx in due {
        let Some(ep) = eps.get_mut(&idx) else {
            continue;
        };
        let actions = ep.on_tick(now, cfg);
        for action in actions {
            std::hint::black_box(&action);
            units += 1;
        }
    }
    units
}

/// Paired sweep ablation at `k` activities: alternating arena/legacy
/// rounds, each leg scored by its minimum round time. Returns
/// `(arena units/s, legacy units/s, arena activities/s)`.
fn sweep_pair(k: u32, reps: u32) -> (f64, f64, f64) {
    let cfg = config();
    let mut states = build_states(k);
    let mut eps = build_legacy(k);
    let mut pools = SweepPools::new();
    let per_round = k as u64 * TARGETS as u64;
    let mut arena_best = f64::INFINITY;
    let mut legacy_best = f64::INFINITY;
    for r in 0..=reps {
        let now = Time::from_nanos((r as u64 + 1) * 1_000_000_000);

        let t = Instant::now();
        let arena_units = arena_round(&mut states, &mut pools, now, 1);
        let arena_dt = t.elapsed().as_secs_f64();
        assert_eq!(arena_units, per_round, "arena sweep emission drifted");

        let t = Instant::now();
        let legacy_units = legacy_round(&mut eps, &cfg, now);
        let legacy_dt = t.elapsed().as_secs_f64();
        assert_eq!(legacy_units, per_round, "legacy sweep emission drifted");

        if r > 0 {
            arena_best = arena_best.min(arena_dt);
            legacy_best = legacy_best.min(legacy_dt);
        }
    }
    (
        per_round as f64 / arena_best,
        per_round as f64 / legacy_best,
        k as f64 / arena_best,
    )
}

/// Sharded sweep throughput at `k` activities: minimum round time over
/// `reps` repetitions after a warmup round.
fn sharded_sweep(k: u32, shards: usize, reps: u32) -> f64 {
    let mut states = build_states(k);
    let mut pools = SweepPools::new();
    let per_round = k as u64 * TARGETS as u64;
    let mut best = f64::INFINITY;
    for r in 0..=reps {
        let now = Time::from_nanos((r as u64 + 1) * 1_000_000_000);
        let t = Instant::now();
        let units = arena_round(&mut states, &mut pools, now, shards);
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(units, per_round, "sharded sweep emission drifted");
        if r > 0 {
            best = best.min(dt);
        }
    }
    per_round as f64 / best
}

/// Frames one egress flush through [`split_len`]-bounded
/// [`encode_batch_frame`] and feeds it back through a [`FrameDecoder`];
/// returns how many items round-tripped.
fn ship(flush: dgc_core::egress::Flush<Item>, decoder: &mut FrameDecoder) -> u64 {
    let mut decoded = 0u64;
    let items: Vec<Item> = flush.items.into_iter().map(|qi| qi.item).collect();
    let mut off = 0;
    while off < items.len() {
        let n = split_len(&items[off..]);
        let wire = encode_batch_frame(&items[off..off + n]);
        off += n;
        decoder.push(&wire);
        while let Some(frame) = decoder.next_frame().expect("self-framed stream") {
            if let dgc_rt_net::Frame::Batch(batch) = frame {
                decoded += batch.len() as u64;
            }
        }
    }
    decoded
}

/// units/s through the whole hot path: sweep → outbox enqueue → flush →
/// [`split_len`]-bounded [`encode_batch_frame`] → [`FrameDecoder`]
/// (zero-copy decode) → items. Minimum round time over `reps`.
fn pipeline(k: u32, reps: u32) -> f64 {
    let mut states = build_states(k);
    let mut pools = SweepPools::new();
    let mut outbox: Outbox<Item> = Outbox::new(FlushPolicy::default());
    let mut decoder = FrameDecoder::new();
    let per_round = k as u64 * TARGETS as u64;
    let mut best = f64::INFINITY;
    for r in 0..=reps {
        let now = Time::from_nanos((r as u64 + 1) * 1_000_000_000);
        let t = Instant::now();
        let mut decoded = 0u64;
        let mut due: Vec<&mut DgcState> = states.values_mut().collect();
        sweep_sharded(&mut due, 1, &mut pools, |state, scratch, sink| {
            state.on_tick_into(now, true, scratch, sink);
        });
        drop(due);
        for unit in pools.drain_units() {
            if let Action::SendMessage { to, message } = unit.action {
                let item = Item::Dgc {
                    from: unit.from,
                    to,
                    message,
                };
                let size = item.wire_size();
                if let Some(flush) = outbox.enqueue(now, to.node, item.class(), size, item) {
                    decoded += ship(flush, &mut decoder);
                }
            }
        }
        for flush in outbox.flush_all() {
            decoded += ship(flush, &mut decoder);
        }
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(
            decoded, per_round,
            "every emitted unit must survive encode -> decode"
        );
        if r > 0 {
            best = best.min(dt);
        }
    }
    per_round as f64 / best
}

fn main() {
    let scale = Scale::from_env();
    let sizes: &[u32] = match scale {
        Scale::Full => &[10_000, 100_000, 1_000_000],
        Scale::Quick => &[10_000, 100_000],
    };
    let reps = reps_for(scale);

    println!("node_throughput (scale {scale:?}): K activities x {TARGETS} heartbeat targets");
    println!(
        "{:>9} {:>16} {:>16} {:>8} {:>16} {:>16}",
        "K", "arena units/s", "legacy units/s", "speedup", "arena acts/s", "pipeline units/s"
    );

    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut speedup_100k = 0.0;
    for &k in sizes {
        let (arena_ups, legacy_ups, arena_aps) = sweep_pair(k, reps);
        let pipe_ups = pipeline(k, reps);
        let speedup = arena_ups / legacy_ups;
        if k == 100_000 {
            speedup_100k = speedup;
        }
        println!(
            "{:>9} {:>16.0} {:>16.0} {:>7.2}x {:>16.0} {:>16.0}",
            k, arena_ups, legacy_ups, speedup, arena_aps, pipe_ups
        );
        let tag = if k >= 1_000_000 {
            format!("{}m", k / 1_000_000)
        } else {
            format!("{}k", k / 1_000)
        };
        metrics.push((format!("sweep_units_per_sec_{tag}"), arena_ups));
        metrics.push((format!("legacy_sweep_units_per_sec_{tag}"), legacy_ups));
        metrics.push((format!("sweep_speedup_{tag}"), speedup));
        metrics.push((format!("sweep_activities_per_sec_{tag}"), arena_aps));
        metrics.push((format!("pipeline_units_per_sec_{tag}"), pipe_ups));
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!();
    println!("sharding axis at 100k ({cores} core(s)):");
    let mut best_sharded = 0.0f64;
    for shards in [1usize, 2, 4] {
        let ups = sharded_sweep(100_000, shards, reps);
        println!("  shards {shards}: {ups:>14.0} units/s");
        metrics.push((format!("sharded_units_per_sec_100k_s{shards}"), ups));
        best_sharded = best_sharded.max(ups);
    }
    let legacy_100k = metrics
        .iter()
        .find(|(n, _)| n == "legacy_sweep_units_per_sec_100k")
        .map_or(1.0, |(_, v)| *v);
    let sharded_speedup = best_sharded / legacy_100k;
    metrics.push(("sharded_speedup_100k".to_string(), sharded_speedup));
    metrics.push(("cores".to_string(), cores as f64));
    println!(
        "  best sharded vs pre-change path: {sharded_speedup:.2}x \
         (unsharded ablation {speedup_100k:.2}x)"
    );

    if cores >= 2 {
        assert!(
            sharded_speedup >= 2.0,
            "sharded batched sweep must clear 2x the pre-change path at \
             100k activities on a {cores}-core runner (measured \
             {sharded_speedup:.2}x; unsharded {speedup_100k:.2}x)"
        );
    } else {
        // One core: the fan-out cannot beat inline, so hold the
        // single-thread ablation to its floor instead.
        assert!(
            speedup_100k >= 1.25,
            "batched arena sweep must clear 1.25x the pre-change path at \
             100k activities on a single-core runner (measured \
             {speedup_100k:.2}x)"
        );
    }

    let borrowed: Vec<(&str, f64)> = metrics.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    dgc_bench::record("node_throughput", &borrowed);
}
