//! Property tests of the log2 histogram: whatever values land in it,
//! bucketing conserves the count, merging is associative (so
//! fleet-wide aggregation is order-independent), quantiles are
//! monotone in `q`, and bucket boundaries classify onto themselves.

use proptest::prelude::*;

use dgc_obs::metrics::{bucket_bound, bucket_index, Histogram, HistogramSnapshot, BUCKETS};

fn fill(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Every observation lands in exactly one bucket: Σ buckets ==
    /// count == number of records, and sum is the exact value total.
    #[test]
    fn count_conservation(values in proptest::collection::vec(any::<u64>(), 0..200)) {
        let s = fill(&values);
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        let expect: u64 = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        // Histogram sum uses wrapping atomics semantics only via
        // fetch_add; both sides wrap identically.
        prop_assert_eq!(s.sum, expect);
    }

    /// (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c), and merging conserves counts.
    #[test]
    fn merge_associativity(
        a in proptest::collection::vec(any::<u64>(), 0..60),
        b in proptest::collection::vec(any::<u64>(), 0..60),
        c in proptest::collection::vec(any::<u64>(), 0..60),
    ) {
        let (sa, sb, sc) = (fill(&a), fill(&b), fill(&c));
        let left = sa.merge(&sb).merge(&sc);
        let right = sa.merge(&sb.merge(&sc));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.count, (a.len() + b.len() + c.len()) as u64);
        prop_assert_eq!(left.buckets.iter().sum::<u64>(), left.count);
        // Commutativity rides along for free.
        prop_assert_eq!(sb.merge(&sa), sa.merge(&sb));
    }

    /// quantile(q) is non-decreasing in q, and bracketed by the
    /// extreme quantiles.
    #[test]
    fn quantile_monotonicity(
        values in proptest::collection::vec(any::<u64>(), 1..150),
        milli_qs in proptest::collection::vec(0u32..1001, 2..20),
    ) {
        let s = fill(&values);
        let mut sorted_qs = milli_qs.clone();
        sorted_qs.sort_unstable();
        let mut prev = s.quantile(0.0);
        for mq in sorted_qs {
            let q = mq as f64 / 1000.0;
            let cur = s.quantile(q);
            prop_assert!(cur >= prev, "quantile({q}) = {cur} < {prev}");
            prev = cur;
        }
        prop_assert!(s.quantile(1.0) >= prev);
        // The max quantile's bucket really contains the max value.
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(s.quantile(1.0), bucket_bound(bucket_index(max)));
    }

    /// Power-of-two boundary values: 2^k opens bucket k+1, 2^k − 1
    /// closes bucket k, and every bucket bound classifies into its own
    /// bucket.
    #[test]
    fn bucket_boundary_values(k in 0u32..63) {
        let v = 1u64 << k;
        prop_assert_eq!(bucket_index(v), (k as usize + 1).min(BUCKETS - 1));
        if v > 1 {
            prop_assert_eq!(bucket_index(v - 1), k as usize);
        }
        prop_assert!(bucket_bound(bucket_index(v)) >= v);
    }
}

#[test]
fn quantile_of_single_value_hits_its_bucket() {
    for v in [0u64, 1, 7, 4096, u64::MAX] {
        let s = fill(&[v]);
        let bound = bucket_bound(bucket_index(v));
        assert_eq!(s.quantile(0.5), bound);
        assert_eq!(s.quantile(1.0), bound);
    }
}
