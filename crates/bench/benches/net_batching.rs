//! Transport batching — bytes per TTB round, batched vs unbatched.
//!
//! The paper's fig. 8 measures the DGC's bandwidth overhead when every
//! DGC call travels as its own RMI invocation. `dgc-rt-net` coalesces
//! all heartbeats bound for one remote node into a single frame; this
//! bench quantifies the saving two ways:
//!
//! 1. **Codec-level** (deterministic): encode one TTB round of
//!    heartbeats from a node hosting `k` referencers of activities on
//!    one peer, as one batched frame vs one frame per message, and
//!    compare the exact byte counts.
//! 2. **Socket-level** (live): run a two-node localhost cluster in both
//!    modes for a fixed wall-clock window and report measured
//!    bytes/frames per delivered protocol unit.
//!
//! Run: `cargo bench -p dgc-bench --bench net_batching`

use std::time::Duration;

use dgc_core::clock::NamedClock;
use dgc_core::config::DgcConfig;
use dgc_core::id::AoId;
use dgc_core::message::DgcMessage;
use dgc_core::units::Dur;
use dgc_rt_net::frame::{encode_frame, Frame, Item, FRAME_OVERHEAD};
use dgc_rt_net::{Cluster, NetConfig};

fn heartbeat_round(k: u32) -> Vec<Item> {
    (0..k)
        .map(|i| {
            let from = AoId::new(0, i);
            Item::Dgc {
                from,
                to: AoId::new(1, i % 4),
                message: DgcMessage {
                    sender: from,
                    clock: NamedClock {
                        value: 17,
                        owner: from,
                    },
                    consensus: false,
                    sender_ttb: Dur::from_secs(30),
                },
            }
        })
        .collect()
}

fn codec_level() {
    println!("codec-level: one TTB round of k heartbeats to one peer node");
    println!(
        "{:>6} {:>14} {:>16} {:>10} {:>12}",
        "k", "batched B", "unbatched B", "saved %", "pred saved B"
    );
    for k in [1u32, 4, 16, 64, 256, 1024] {
        let round = heartbeat_round(k);
        let batched = encode_frame(&Frame::Batch(round.clone())).len() as u64;
        let unbatched: u64 = round
            .iter()
            .map(|i| encode_frame(&Frame::Batch(vec![i.clone()])).len() as u64)
            .sum();
        let predicted = (k as u64 - 1) * FRAME_OVERHEAD;
        assert!(
            k == 1 || batched < unbatched,
            "batching must strictly save bytes for k={k}"
        );
        assert_eq!(
            unbatched - batched,
            predicted,
            "framing overhead model drifted"
        );
        println!(
            "{:>6} {:>14} {:>16} {:>9.1}% {:>12}",
            k,
            batched,
            unbatched,
            100.0 * (unbatched - batched) as f64 / unbatched as f64,
            predicted
        );
    }
}

fn socket_level(batching: bool) -> (u64, u64, u64) {
    let dgc = DgcConfig::builder()
        .ttb(Dur::from_millis(20))
        .tta(Dur::from_millis(70))
        .max_comm(Dur::from_millis(15))
        .build();
    let cluster = Cluster::listen_local(2, NetConfig::new(dgc).batching(batching)).unwrap();
    let targets: Vec<_> = (0..4).map(|_| cluster.add_activity(1)).collect();
    for _ in 0..16 {
        let holder = cluster.add_activity(0);
        for t in &targets {
            cluster.add_ref(holder, *t);
        }
    }
    std::thread::sleep(Duration::from_millis(700));
    let s = cluster.stats()[0];
    cluster.shutdown();
    (s.items_sent, s.frames_sent, s.bytes_sent)
}

fn main() {
    codec_level();
    println!();
    println!("socket-level: 16 referencers x 4 targets on one peer, 700 ms live run");
    let (bi, bf, bb) = socket_level(true);
    let (ui, uf, ub) = socket_level(false);
    let per = |bytes: u64, items: u64| {
        if items == 0 {
            0.0
        } else {
            bytes as f64 / items as f64
        }
    };
    println!(
        "  batched:   {bi:>6} items in {bf:>5} frames, {bb:>8} B ({:>6.1} B/item)",
        per(bb, bi)
    );
    println!(
        "  unbatched: {ui:>6} items in {uf:>5} frames, {ub:>8} B ({:>6.1} B/item)",
        per(ub, ui)
    );
    let mut saving_pct = 0.0;
    if bi > 0 && ui > 0 {
        assert!(
            per(bb, bi) < per(ub, ui),
            "batched transport must cost fewer bytes per protocol unit"
        );
        saving_pct = 100.0 * (1.0 - per(bb, bi) / per(ub, ui));
        println!("  batching saves {saving_pct:.1}% bytes per delivered unit");
    }
    dgc_bench::record(
        "net_batching",
        &[
            ("batched_bytes_per_item", per(bb, bi)),
            ("unbatched_bytes_per_item", per(ub, ui)),
            ("batched_items_per_frame", per(bi, bf)),
            ("unbatched_items_per_frame", per(ui, uf)),
            ("socket_saving_pct", saving_pct),
        ],
    );
}
