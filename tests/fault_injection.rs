//! §4.2 — the hard real-time caveat, demonstrated.
//!
//! The DGC is safe only while `TTA > 2·TTB + MaxComm` actually holds at
//! run time. These tests inject the §4.2 hazards — long link delays
//! (TCP timeouts) and stop-the-world process pauses (local GC) — and
//! show (a) the oracle catching the wrongful collection when the bound
//! is violated, and (b) safety holding when TTA has enough slack.

use grid_dgc::activeobj::activity::Inert;
use grid_dgc::activeobj::collector::CollectorKind;
use grid_dgc::activeobj::runtime::{Grid, GridConfig};
use grid_dgc::dgc::config::DgcConfig;
use grid_dgc::dgc::units::Dur;
use grid_dgc::simnet::fault::{FaultPlan, LinkFault, ProcessPause};
use grid_dgc::simnet::time::{SimDuration, SimTime};
use grid_dgc::simnet::topology::{ProcId, Topology};

fn topo() -> Topology {
    Topology::single_site(3, SimDuration::from_millis(1))
}

fn dgc(ttb: u64, tta: u64) -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_secs(ttb))
        .tta(Dur::from_secs(tta))
        .max_comm(Dur::from_millis(500))
        .build()
}

/// A grid where a root keeps one activity alive over the faulty link.
fn root_and_kept(grid: &mut Grid) -> grid_dgc::dgc::AoId {
    let root = grid.spawn_root(ProcId(0), Box::new(Inert));
    let kept = grid.spawn(ProcId(1), Box::new(Inert));
    grid.make_ref(root, kept);
    kept
}

#[test]
fn long_link_delay_with_tight_tta_wrongly_collects() {
    // TTA = 61 s (minimal for TTB 30 s + small MaxComm). A 70 s link
    // outage starting mid-run exceeds the slack: `kept` misses two
    // heartbeats and self-collects although its referencer is alive —
    // the malfunction the paper accepts as the price of synchrony.
    let mut plan = FaultPlan::none();
    plan.add_link_fault(LinkFault {
        from: Some(ProcId(0)),
        to: Some(ProcId(1)),
        start: SimTime::from_secs(100),
        end: SimTime::from_secs(175),
        extra_delay: SimDuration::from_secs(75),
    });
    let mut grid = Grid::new(
        GridConfig::new(topo())
            .collector(CollectorKind::Complete(dgc(30, 61)))
            .fault_plan(plan)
            .seed(1),
    );
    let kept = root_and_kept(&mut grid);
    grid.run_for(SimDuration::from_secs(400));
    assert!(!grid.is_alive(kept), "the outage exceeded the TTA slack");
    assert!(
        !grid.violations().is_empty(),
        "the oracle must flag the wrongful collection"
    );
}

#[test]
fn same_outage_with_generous_tta_is_safe() {
    // Same 75 s outage, but TTA = 300 s: "deadlines can be pushed
    // arbitrarily far away, obviously slowing down the DGC".
    let mut plan = FaultPlan::none();
    plan.add_link_fault(LinkFault {
        from: Some(ProcId(0)),
        to: Some(ProcId(1)),
        start: SimTime::from_secs(100),
        end: SimTime::from_secs(175),
        extra_delay: SimDuration::from_secs(75),
    });
    let mut grid = Grid::new(
        GridConfig::new(topo())
            .collector(CollectorKind::Complete(dgc(30, 300)))
            .fault_plan(plan)
            .seed(2),
    );
    let kept = root_and_kept(&mut grid);
    grid.run_for(SimDuration::from_secs(1_000));
    assert!(grid.is_alive(kept), "enough slack: no malfunction");
    assert!(grid.violations().is_empty());
}

#[test]
fn gc_pause_on_the_referencer_process_can_kill_its_referenced() {
    // §4.2's other culprit: a stop-the-world pause of the *referencer's*
    // process delays its broadcasts beyond TTA.
    let mut plan = FaultPlan::none();
    plan.add_pause(ProcessPause {
        proc: ProcId(0),
        start: SimTime::from_secs(100),
        end: SimTime::from_secs(190), // 90 s pause > TTA 61 s
    });
    let mut grid = Grid::new(
        GridConfig::new(topo())
            .collector(CollectorKind::Complete(dgc(30, 61)))
            .fault_plan(plan)
            .seed(3),
    );
    let kept = root_and_kept(&mut grid);
    grid.run_for(SimDuration::from_secs(400));
    assert!(!grid.is_alive(kept));
    assert!(!grid.violations().is_empty());
}

#[test]
fn short_gc_pause_within_slack_is_harmless() {
    let mut plan = FaultPlan::none();
    plan.add_pause(ProcessPause {
        proc: ProcId(0),
        start: SimTime::from_secs(100),
        end: SimTime::from_secs(120), // 20 s < TTA - TTB
    });
    let mut grid = Grid::new(
        GridConfig::new(topo())
            .collector(CollectorKind::Complete(dgc(30, 61)))
            .fault_plan(plan)
            .seed(4),
    );
    let kept = root_and_kept(&mut grid);
    grid.run_for(SimDuration::from_secs(600));
    assert!(grid.is_alive(kept));
    assert!(grid.violations().is_empty());
}

#[test]
fn faults_never_cause_leaks_only_haste() {
    // Failure mode asymmetry: delays can only make the collector *too
    // eager* (missed heartbeat ⇒ wrongful collection), never too lazy
    // forever — garbage is still reclaimed under faults.
    let mut plan = FaultPlan::none();
    plan.add_link_fault(LinkFault {
        from: None,
        to: None,
        start: SimTime::from_secs(0),
        end: SimTime::from_secs(10_000),
        extra_delay: SimDuration::from_millis(400), // within MaxComm
    });
    let mut grid = Grid::new(
        GridConfig::new(topo())
            .collector(CollectorKind::Complete(dgc(30, 61)))
            .fault_plan(plan)
            .seed(5),
    );
    let a = grid.spawn(ProcId(0), Box::new(Inert));
    let b = grid.spawn(ProcId(1), Box::new(Inert));
    grid.make_ref(a, b);
    grid.make_ref(b, a);
    grid.run_for(SimDuration::from_secs(1_000));
    assert_eq!(
        grid.alive_count(),
        0,
        "garbage still reclaimed under 400 ms jitter"
    );
    assert!(grid.violations().is_empty(), "within MaxComm: safe");
}
