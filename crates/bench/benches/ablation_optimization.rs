//! Ablation — the §4.3 consensus-propagation optimization.
//!
//! When a consensus completes, the detecting activity can either
//! propagate "consensus reached" through its referencers so the whole
//! compound cycle dies within one TTA (the optimization, on by
//! default), or terminate alone and let the collector re-run consensus
//! for every remaining sub-cycle. The paper argues the optimization is
//! what makes the NAS clique collapse in 15–17 rounds. This ablation
//! measures both modes on chained compound cycles.

use dgc_activeobj::collector::CollectorKind;
use dgc_activeobj::runtime::{Grid, GridConfig};
use dgc_bench::Table;
use dgc_core::config::DgcConfig;
use dgc_core::units::Dur;
use dgc_simnet::time::{SimDuration, SimTime};
use dgc_simnet::topology::Topology;
use dgc_workloads::scenarios::clique;

fn run(propagate: bool) -> (f64, usize) {
    let cfg = DgcConfig::builder()
        .ttb(Dur::from_secs(30))
        .tta(Dur::from_secs(61))
        .max_comm(Dur::from_millis(500))
        .propagate_consensus(propagate)
        .build();
    let mut grid = Grid::new(
        GridConfig::new(Topology::single_site(8, SimDuration::from_millis(1)))
            .collector(CollectorKind::Complete(cfg))
            .seed(3),
    );
    // A clique is the worst case for the unoptimized mode: removing one
    // member leaves a clique of n-1, so every sub-collection needs a
    // fresh consensus (the acyclic collector never gets a foothold) —
    // exactly the paper's argument for step 4.
    let ids = clique(&mut grid, 12, 8);
    let deadline = SimTime::from_secs(60_000);
    while grid.now() < deadline && ids.iter().any(|id| grid.is_alive(*id)) {
        grid.run_for(SimDuration::from_secs(30));
    }
    assert!(
        ids.iter().all(|id| !grid.is_alive(*id)),
        "clique not fully collected (propagate={propagate})"
    );
    assert!(grid.violations().is_empty());
    let last = grid
        .collected()
        .iter()
        .map(|c| c.at.as_secs_f64())
        .fold(0.0, f64::max);
    (last, grid.violations().len())
}

fn main() {
    println!("=== Ablation: §4.3 consensus-propagation optimization ===\n");
    println!("Workload: an idle 12-clique (every sub-collection re-runs consensus).\n");
    let mut table = Table::new(vec!["Mode", "Full collection at", "Violations"]);
    let (with, v1) = run(true);
    let (without, v2) = run(false);
    table.row(vec![
        "propagate (paper)".to_string(),
        format!("{with:.0} s"),
        format!("{v1}"),
    ]);
    table.row(vec![
        "no propagation".to_string(),
        format!("{without:.0} s"),
        format!("{v2}"),
    ]);
    table.print();
    println!(
        "\nslowdown without the optimization: {:.2}x",
        without / with
    );
    assert!(
        without > with,
        "dropping the optimization must slow full collection ({without} <= {with})"
    );
}
