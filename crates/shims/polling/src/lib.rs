//! Offline stand-in for the [`polling`](https://crates.io/crates/polling)
//! crate: a minimal portable readiness poller.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset `dgc-rt-net`'s reactor needs:
//!
//! - [`Poller`] — register sockets under a `usize` key with a read/write
//!   [`Interest`] and [`Poller::wait`] for readiness events. On Linux the
//!   backend is **epoll**, declared directly against the C ABI (no libc
//!   crate). Everywhere else — and on Linux when `DGC_POLL_EMULATION=1`
//!   is set, so the fallback stays testable — a **short-timeout
//!   emulation** backend reports every registered key as ready at a
//!   bounded cadence; since all reactor I/O is nonblocking, spurious
//!   readiness costs only wasted `WouldBlock` syscalls, never blocking.
//! - [`Waker`] — cross-thread wakeup for a parked [`Poller::wait`]
//!   (a nonblocking pipe registered with epoll, or a flag + condvar for
//!   the emulated backend).
//! - [`connect_nonblocking`] / [`take_socket_error`] — initiate a TCP
//!   connect without blocking the loop and harvest its completion status
//!   (`SO_ERROR`) once the socket polls writable.
//! - [`raise_nofile_limit`] — best-effort `RLIMIT_NOFILE` bump for
//!   thousand-connection benches.
//!
//! Readiness is **level-triggered**: a key keeps reporting ready until
//! the condition is drained. Callers must tolerate spurious events (the
//! emulated backend produces them by design).

#![warn(missing_docs)]

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

mod emu;
#[cfg(target_os = "linux")]
mod sys;

/// What readiness a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the source is readable (or hung up).
    pub readable: bool,
    /// Wake when the source is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Registered but silent (keeps the slot; hears nothing).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness event out of [`Poller::wait`].
///
/// Errors and hangups are folded into `readable`/`writable` (the next
/// read or write on the source surfaces the actual `io::Error`).
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The key the source was registered under.
    pub key: usize,
    /// The source is (possibly spuriously) readable.
    pub readable: bool,
    /// The source is (possibly spuriously) writable.
    pub writable: bool,
}

/// Anything with an OS handle the poller can watch.
pub trait Source {
    /// Raw file descriptor on unix; the emulated backend ignores it.
    fn raw(&self) -> i32;
}

#[cfg(unix)]
impl Source for TcpStream {
    fn raw(&self) -> i32 {
        std::os::unix::io::AsRawFd::as_raw_fd(self)
    }
}

#[cfg(unix)]
impl Source for TcpListener {
    fn raw(&self) -> i32 {
        std::os::unix::io::AsRawFd::as_raw_fd(self)
    }
}

#[cfg(not(unix))]
impl Source for TcpStream {
    fn raw(&self) -> i32 {
        -1
    }
}

#[cfg(not(unix))]
impl Source for TcpListener {
    fn raw(&self) -> i32 {
        -1
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(sys::Epoll),
    Emulated(emu::Emu),
}

/// A readiness multiplexer over nonblocking sockets.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Opens a poller with the best backend for this platform: epoll on
    /// Linux (unless `DGC_POLL_EMULATION=1` forces the fallback), the
    /// short-timeout emulation everywhere else.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let force_emu = std::env::var("DGC_POLL_EMULATION")
                .map(|v| v == "1")
                .unwrap_or(false);
            if !force_emu {
                return Ok(Poller {
                    backend: Backend::Epoll(sys::Epoll::new()?),
                });
            }
        }
        Ok(Poller::emulated())
    }

    /// Opens the portable emulation backend explicitly (used by its own
    /// tests; [`Poller::new`] picks it automatically where epoll is
    /// unavailable).
    pub fn emulated() -> Poller {
        Poller {
            backend: Backend::Emulated(emu::Emu::new()),
        }
    }

    /// True when running on the emulation backend.
    pub fn is_emulated(&self) -> bool {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => false,
            Backend::Emulated(_) => true,
        }
    }

    /// Registers a source under `key` with the given interest.
    pub fn add(&self, src: &impl Source, key: usize, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.add(src.raw(), key, interest),
            Backend::Emulated(e) => e.add(key, interest),
        }
    }

    /// Updates the interest of an already-registered source.
    pub fn modify(&self, src: &impl Source, key: usize, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.modify(src.raw(), key, interest),
            Backend::Emulated(e) => e.modify(key, interest),
        }
    }

    /// Removes a source. Pass the same `key` it was registered under
    /// (epoll keys off the descriptor; the emulation keys off `key`).
    pub fn delete(&self, src: &impl Source, key: usize) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.delete(src.raw()),
            Backend::Emulated(e) => e.delete(key),
        }
    }

    /// Blocks until at least one event arrives, the timeout elapses, or a
    /// [`Waker`] fires; appends events to `out` and returns how many.
    /// `Ok(0)` means timeout (or a signal). The emulated backend returns
    /// within ~1 ms regardless of `timeout`, reporting every registered
    /// key at its registered interest.
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<usize> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.wait(out, timeout),
            Backend::Emulated(e) => e.wait(out, timeout),
        }
    }

    /// Creates the waker for this poller, surfacing as a readable event
    /// on `key` when woken. One waker per poller.
    pub fn waker(&self, key: usize) -> io::Result<Waker> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => {
                let pipe = sys::pipe_nonblocking()?;
                ep.add(pipe.read_fd, key, Interest::READ)?;
                Ok(Waker {
                    inner: WakerInner::Pipe(pipe),
                })
            }
            Backend::Emulated(e) => {
                e.set_waker(key);
                Ok(Waker {
                    inner: WakerInner::Flag(e.shared()),
                })
            }
        }
    }
}

enum WakerInner {
    #[cfg(target_os = "linux")]
    Pipe(sys::Pipe),
    Flag(std::sync::Arc<emu::Shared>),
}

/// Wakes a [`Poller::wait`] parked on another thread.
pub struct Waker {
    inner: WakerInner,
}

impl Waker {
    /// Interrupts the poller; its next (or current) `wait` reports a
    /// readable event on the waker's key. Coalesces: many wakes before a
    /// `clear` surface as one event.
    pub fn wake(&self) {
        match &self.inner {
            #[cfg(target_os = "linux")]
            WakerInner::Pipe(p) => p.signal(),
            WakerInner::Flag(s) => s.wake(),
        }
    }

    /// Drains the wake signal; call when handling the waker's event so
    /// the poller can park again.
    pub fn clear(&self) {
        match &self.inner {
            #[cfg(target_os = "linux")]
            WakerInner::Pipe(p) => p.drain(),
            WakerInner::Flag(s) => s.clear(),
        }
    }
}

/// Starts a TCP connect without blocking: returns a nonblocking stream
/// whose connect is (usually) still in flight. Poll it for *writable*,
/// then call [`take_socket_error`] to learn whether the connect landed.
///
/// On Linux this is a raw `socket(SOCK_NONBLOCK) + connect` (accepting
/// `EINPROGRESS`); on other platforms it degrades to a bounded blocking
/// `connect_timeout` so the portable fallback stays correct.
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<TcpStream> {
    #[cfg(target_os = "linux")]
    {
        sys::connect_nonblocking(addr)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let stream = TcpStream::connect_timeout(addr, Duration::from_millis(500))?;
        stream.set_nonblocking(true)?;
        Ok(stream)
    }
}

/// Harvests and clears a socket's pending error (`SO_ERROR`): `Ok(())`
/// if the in-flight connect completed cleanly, the connect error
/// otherwise. Always `Ok` on platforms where [`connect_nonblocking`]
/// already blocked for the result.
pub fn take_socket_error(stream: &TcpStream) -> io::Result<()> {
    #[cfg(target_os = "linux")]
    {
        sys::take_socket_error(stream)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = stream;
        Ok(())
    }
}

/// Best-effort bump of `RLIMIT_NOFILE` to its hard limit; returns the
/// resulting soft limit (0 where unsupported). Thousand-peer benches
/// call this so descriptor counts, not defaults, set the ceiling.
pub fn raise_nofile_limit() -> u64 {
    #[cfg(target_os = "linux")]
    {
        sys::raise_nofile_limit()
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::sync::Arc;
    use std::time::Instant;

    fn wait_for(p: &Poller, mut pred: impl FnMut(&PollEvent) -> bool) -> bool {
        let mut evs = Vec::new();
        let start = Instant::now();
        while start.elapsed() < Duration::from_secs(5) {
            evs.clear();
            p.wait(&mut evs, Some(Duration::from_millis(20))).unwrap();
            if evs.iter().any(&mut pred) {
                return true;
            }
        }
        false
    }

    fn poll_accept(listener: &TcpListener) -> TcpStream {
        let start = Instant::now();
        loop {
            match listener.accept() {
                Ok((s, _)) => return s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(start.elapsed() < Duration::from_secs(5), "accept timed out");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("accept failed: {e}"),
            }
        }
    }

    #[test]
    fn listener_and_stream_readiness() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        poller.add(&listener, 7, Interest::READ).unwrap();

        let client = connect_nonblocking(&addr).unwrap();
        assert!(
            wait_for(&poller, |e| e.key == 7 && e.readable),
            "listener never polled readable"
        );
        let server = poll_accept(&listener);
        server.set_nonblocking(true).unwrap();

        poller.add(&client, 8, Interest::BOTH).unwrap();
        assert!(
            wait_for(&poller, |e| e.key == 8 && e.writable),
            "client never polled writable"
        );
        take_socket_error(&client).unwrap();

        (&server).write_all(b"ping").unwrap();
        assert!(
            wait_for(&poller, |e| e.key == 8 && e.readable),
            "client never polled readable after server wrote"
        );
        let mut got = Vec::new();
        let mut buf = [0u8; 16];
        let start = Instant::now();
        while got.len() < 4 {
            match (&client).read(&mut buf) {
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(start.elapsed() < Duration::from_secs(5), "read timed out");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("read failed: {e}"),
            }
        }
        assert_eq!(&got, b"ping");

        poller.delete(&client, 8).unwrap();
        poller.delete(&listener, 7).unwrap();
    }

    #[test]
    fn waker_interrupts_wait() {
        let poller = Arc::new(Poller::new().unwrap());
        let waker = Arc::new(poller.waker(0).unwrap());
        let w2 = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w2.wake();
        });
        assert!(
            wait_for(&poller, |e| e.key == 0 && e.readable),
            "waker never surfaced"
        );
        waker.clear();
        t.join().unwrap();
    }

    #[test]
    fn emulated_backend_reports_registered_interest() {
        let poller = Poller::emulated();
        assert!(poller.is_emulated());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        poller.add(&listener, 3, Interest::READ).unwrap();
        assert!(wait_for(&poller, |e| e.key == 3
            && e.readable
            && !e.writable));
        poller.modify(&listener, 3, Interest::BOTH).unwrap();
        assert!(wait_for(&poller, |e| e.key == 3
            && e.readable
            && e.writable));
        poller.delete(&listener, 3).unwrap();
        let mut evs = Vec::new();
        poller
            .wait(&mut evs, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(!evs.iter().any(|e| e.key == 3), "deleted key still fired");
    }

    #[test]
    fn refused_connect_surfaces_as_error() {
        // Bind-then-drop to learn a (very likely) dead port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        match connect_nonblocking(&addr) {
            Err(_) => {} // refused synchronously: also a pass
            Ok(stream) => {
                let poller = Poller::new().unwrap();
                poller.add(&stream, 1, Interest::BOTH).unwrap();
                assert!(wait_for(&poller, |e| e.key == 1 && (e.writable || e.readable)));
                // Completion status must be an error (connection refused).
                let start = Instant::now();
                loop {
                    match take_socket_error(&stream) {
                        Err(_) => break,
                        Ok(()) => {
                            // Spurious writable before the RST landed.
                            assert!(
                                start.elapsed() < Duration::from_secs(5),
                                "refused connect never surfaced an error"
                            );
                            std::thread::sleep(Duration::from_millis(2));
                            // A zero-byte peek read distinguishes refused from open.
                            let mut b = [0u8; 1];
                            if matches!((&stream).read(&mut b), Err(ref e) if e.kind() != io::ErrorKind::WouldBlock)
                            {
                                break;
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn nofile_limit_is_queryable() {
        // Best-effort: just exercise the call path.
        let _ = raise_nofile_limit();
    }
}
