//! Integration tests for the two alternative collectors: the RMI-style
//! lease baseline (acyclic-only, §1/§6) and the process-graph mode
//! (§4.1), compared against the complete DGC on identical workloads.

use grid_dgc::activeobj::activity::Inert;
use grid_dgc::activeobj::collector::CollectorKind;
use grid_dgc::activeobj::process_mode::ProcessModeSim;
use grid_dgc::activeobj::runtime::{Grid, GridConfig};
use grid_dgc::dgc::config::DgcConfig;
use grid_dgc::dgc::units::Dur;
use grid_dgc::rmi::endpoint::RmiConfig;
use grid_dgc::simnet::time::SimDuration;
use grid_dgc::simnet::topology::{ProcId, Topology};
use grid_dgc::simnet::traffic::TrafficClass;
use grid_dgc::workloads::scenarios;

fn dgc() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_secs(30))
        .tta(Dur::from_secs(61))
        .max_comm(Dur::from_millis(500))
        .build()
}

fn grid(collector: CollectorKind, seed: u64) -> Grid {
    Grid::new(
        GridConfig::new(Topology::single_site(6, SimDuration::from_millis(1)))
            .collector(collector)
            .seed(seed),
    )
}

#[test]
fn rmi_reclaims_chains_with_lease_traffic_only() {
    let mut g = grid(CollectorKind::Rmi(RmiConfig::default()), 1);
    let ids = scenarios::chain(&mut g, 6, 6);
    g.run_for(SimDuration::from_secs(1_500));
    assert!(
        ids.iter().all(|id| !g.is_alive(*id)),
        "acyclic garbage reclaimed"
    );
    assert!(g.traffic().bytes(TrafficClass::RmiLease) > 0);
    assert_eq!(
        g.traffic().dgc_bytes(),
        0,
        "no complete-DGC traffic in RMI mode"
    );
}

#[test]
fn rmi_leaks_exactly_the_cycles() {
    let mut g = grid(CollectorKind::Rmi(RmiConfig::default()), 2);
    let ring = scenarios::ring(&mut g, 5, 6);
    let chain = scenarios::chain(&mut g, 5, 6);
    g.run_for(SimDuration::from_secs(2_000));
    assert!(ring.iter().all(|id| g.is_alive(*id)), "the ring leaks");
    assert!(
        chain.iter().all(|id| !g.is_alive(*id)),
        "the chain is reclaimed"
    );
    // The oracle agrees the leak is real garbage.
    let garbage = g.garbage_remaining();
    for id in &ring {
        assert!(garbage.contains(id));
    }
}

#[test]
fn complete_dgc_reclaims_what_rmi_leaks() {
    let mut g = grid(CollectorKind::Complete(dgc()), 3);
    let ring = scenarios::ring(&mut g, 5, 6);
    g.run_for(SimDuration::from_secs(2_000));
    assert!(ring.iter().all(|id| !g.is_alive(*id)));
    assert!(g.violations().is_empty());
}

#[test]
fn rmi_keeps_live_objects_alive_through_renewals() {
    let mut g = grid(CollectorKind::Rmi(RmiConfig::default()), 4);
    let root = g.spawn_root(ProcId(0), Box::new(Inert));
    let kept = g.spawn(ProcId(1), Box::new(Inert));
    g.make_ref(root, kept);
    // Many lease periods: renewals must keep arriving.
    g.run_for(SimDuration::from_secs(1_000));
    assert!(g.is_alive(kept));
    g.drop_ref(root, kept);
    g.run_for(SimDuration::from_secs(300));
    assert!(!g.is_alive(kept), "clean + lease expiry reclaim it");
}

#[test]
fn rmi_lease_duration_trades_traffic_for_latency() {
    let run = |lease_secs: u64| {
        let mut g = grid(
            CollectorKind::Rmi(RmiConfig {
                lease: Dur::from_secs(lease_secs),
            }),
            5,
        );
        let root = g.spawn_root(ProcId(0), Box::new(Inert));
        let kept = g.spawn(ProcId(1), Box::new(Inert));
        g.make_ref(root, kept);
        g.run_for(SimDuration::from_secs(1_000));
        g.drop_ref(root, kept);
        let drop_at = g.now();
        g.run_for(SimDuration::from_secs(4 * lease_secs + 120));
        assert!(!g.is_alive(kept));
        let reclaimed = g
            .collected()
            .iter()
            .find(|c| c.ao == kept)
            .expect("collected")
            .at;
        (
            g.traffic().bytes(TrafficClass::RmiLease),
            reclaimed.saturating_since(drop_at).as_secs(),
        )
    };
    // Short leases (pre-Java-6 1 min) vs long leases (Java 6 default 1 h,
    // the change the paper cites in §4.2).
    let (short_traffic, short_latency) = run(60);
    let (long_traffic, long_latency) = run(3600);
    assert!(
        short_traffic > long_traffic,
        "short leases renew more often"
    );
    assert!(
        short_latency < long_latency,
        "long leases linger after the drop"
    );
}

#[test]
fn process_mode_collects_whole_idle_processes() {
    let cfg = dgc();
    let mut sim = ProcessModeSim::new(3, cfg, Dur::from_millis(1));
    let a = sim.add_activity(0);
    let b = sim.add_activity(1);
    let c = sim.add_activity(2);
    sim.add_edge(a, b);
    sim.add_edge(b, c);
    sim.add_edge(c, a);
    for id in [a, b, c] {
        sim.set_idle(id, true);
    }
    for _ in 0..40 {
        sim.step(Dur::from_secs(30));
    }
    assert!(!sim.is_alive(a) && !sim.is_alive(b) && !sim.is_alive(c));
}

#[test]
fn process_mode_imprecision_matches_the_papers_warning() {
    // Same graph, but process 1 also hosts a busy activity: under the
    // process graph nothing is ever collected, under the reference graph
    // the cycle goes. This is the §4.1 trade-off, end to end.
    let cfg = dgc();
    let mut sim = ProcessModeSim::new(3, cfg, Dur::from_millis(1));
    let a = sim.add_activity(0);
    let b = sim.add_activity(1);
    let c = sim.add_activity(2);
    let busy = sim.add_activity(1);
    sim.add_edge(a, b);
    sim.add_edge(b, c);
    sim.add_edge(c, a);
    for id in [a, b, c] {
        sim.set_idle(id, true);
    }
    sim.set_idle(busy, false);
    for _ in 0..60 {
        sim.step(Dur::from_secs(30));
    }
    assert!(sim.is_alive(a) && sim.is_alive(b) && sim.is_alive(c));

    // Reference-graph control: the cycle is collected even though the
    // busy bystander shares a process with b.
    let mut g = grid(CollectorKind::Complete(cfg), 6);
    let ra = g.spawn(ProcId(0), Box::new(Inert));
    let rb = g.spawn(ProcId(1), Box::new(Inert));
    let rc = g.spawn(ProcId(2), Box::new(Inert));
    let _busy = g.spawn_root(ProcId(1), Box::new(Inert));
    g.make_ref(ra, rb);
    g.make_ref(rb, rc);
    g.make_ref(rc, ra);
    g.run_for(SimDuration::from_secs(2_000));
    assert!(!g.is_alive(ra) && !g.is_alive(rb) && !g.is_alive(rc));
    assert!(g.violations().is_empty());
}
