//! virtual-path: crates/rt-net/src/fixture.rs
// Golden fixture: the lock-across-send rule.

fn guard_across_send(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock();
    tx.send(*g).ok();
}

fn guard_across_sleep(m: &Mutex<u32>) {
    let mut g = m.lock();
    std::thread::sleep(Duration::from_millis(1));
    *g += 1;
}

fn dropped_first(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock();
    let v = *g;
    drop(g);
    tx.send(v).ok();
}

fn scoped_block(m: &Mutex<u32>, tx: &Sender<u32>) {
    let v = {
        let g = m.lock();
        *g
    };
    tx.send(v).ok();
}

fn chained_lock_is_not_a_guard(m: &Mutex<Vec<u32>>, tx: &Sender<usize>) {
    let len = m.lock().len();
    tx.send(len).ok();
}

fn annotated(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock();
    // dgc-analysis: allow(lock-across-send): fixture shows the escape hatch
    tx.send(*g).ok();
}
