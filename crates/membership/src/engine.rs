//! The sans-io membership engine: one per node, driven by whatever
//! clock and transport the runtime owns.
//!
//! Like [`dgc_core::protocol::DgcState`], the engine performs no I/O:
//! the runtime calls [`Membership::on_tick`] periodically and
//! [`Membership::on_digest`] for every received gossip digest, and
//! sends whatever [`GossipOut`]s come back. The simulator drives it
//! from virtual time and simulated delivery (verdicts stay
//! deterministic); the socket runtime drives it from its node event
//! loop and piggybacks digests on the DGC's batched frames.
//!
//! Protocol, in brief:
//!
//! * **Bootstrap** — a joining node knows only seed contacts
//!   ([`Membership::on_contact`], or a socket dial of a seed address).
//!   Its first digest introduces it; the seed replies with the full
//!   directory (push-on-new), and anti-entropy spreads the join.
//! * **Anti-entropy** — every `gossip_interval` the engine pushes its
//!   full directory to every present peer. For the cluster sizes this
//!   repository drives (single-digit nodes) full push is simpler and
//!   converges in one round-trip; the digest is a few dozen bytes per
//!   node and rides piggybacked on frames that were being sent anyway.
//! * **Failure detection** — a peer silent past `suspect_after` is
//!   suspected; past `dead_after` it is declared dead, which the
//!   runtime feeds into `DgcState::on_node_dead` so the collector
//!   treats the node's referencers as departed (the paper's
//!   send-failure path, §4.1).
//! * **Refutation / rejoin** — verdicts are pinned to incarnations
//!   (see [`crate::directory`]); a slandered node outbids the verdict
//!   by re-announcing one incarnation higher, and a crash-rejoin under
//!   a fresh incarnation supersedes its own death record.

use std::collections::BTreeMap;
use std::net::SocketAddr;

use dgc_core::units::{Dur, Time};

use crate::directory::{Directory, NodeRecord, NodeStatus, Transition};

/// Timing knobs of the membership layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipConfig {
    /// Anti-entropy period: how often the full directory is pushed to
    /// every present peer.
    pub gossip_interval: Dur,
    /// Silence after which an alive peer is suspected. Must cover
    /// several gossip intervals, or ordinary jitter slanders peers.
    pub suspect_after: Dur,
    /// Silence after which a peer is declared dead. Must exceed
    /// `suspect_after`; the gap is the refutation window.
    pub dead_after: Dur,
}

impl MembershipConfig {
    /// A config scaled around one gossip interval: suspicion after 5
    /// silent intervals, death after 15.
    pub fn scaled(gossip_interval: Dur) -> MembershipConfig {
        MembershipConfig {
            gossip_interval,
            suspect_after: gossip_interval.saturating_mul(5),
            dead_after: gossip_interval.saturating_mul(15),
        }
    }

    fn validate(&self) {
        assert!(
            !self.gossip_interval.is_zero(),
            "gossip_interval must be positive"
        );
        assert!(
            self.suspect_after.as_nanos() >= self.gossip_interval.as_nanos() * 2,
            "suspect_after below 2 gossip intervals slanders healthy peers"
        );
        assert!(
            self.dead_after > self.suspect_after,
            "dead_after must leave a refutation window past suspect_after"
        );
    }
}

impl Default for MembershipConfig {
    fn default() -> MembershipConfig {
        MembershipConfig::scaled(Dur::from_millis(100))
    }
}

/// One digest the runtime must deliver to a peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipOut {
    /// Destination node.
    pub to: u32,
    /// The full directory at emission time.
    pub records: Vec<NodeRecord>,
}

/// One observed membership transition, in the runtime's scenario time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// When the local engine applied it.
    pub at: Time,
    /// The node the verdict is about.
    pub node: u32,
    /// The incarnation the verdict is pinned to.
    pub incarnation: u64,
    /// What happened.
    pub transition: Transition,
}

/// The per-node membership engine.
#[derive(Debug, Clone)]
pub struct Membership {
    node: u32,
    addr: Option<SocketAddr>,
    incarnation: u64,
    config: MembershipConfig,
    directory: Directory,
    /// Last instant a digest arrived from each peer.
    last_heard: BTreeMap<u32, Time>,
    next_gossip: Time,
    events: Vec<MembershipEvent>,
}

impl Membership {
    /// A fresh engine for `node`, announcing itself under
    /// `incarnation` (first lives start at 1; rejoins must pass
    /// something strictly above every incarnation the node lived
    /// before).
    ///
    /// # Panics
    ///
    /// Panics if `config` timings are inconsistent (see
    /// [`MembershipConfig`]).
    pub fn new(
        node: u32,
        addr: Option<SocketAddr>,
        incarnation: u64,
        now: Time,
        config: MembershipConfig,
    ) -> Membership {
        config.validate();
        let mut directory = Directory::new();
        directory.merge(&NodeRecord::alive(node, incarnation, addr));
        Membership {
            node,
            addr,
            incarnation,
            config,
            directory,
            last_heard: BTreeMap::new(),
            next_gossip: now,
            events: Vec::new(),
        }
    }

    /// This engine's node id.
    pub fn node_id(&self) -> u32 {
        self.node
    }

    /// The incarnation this node currently announces. Monotone:
    /// refutations only ever raise it.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// The timing configuration.
    pub fn config(&self) -> &MembershipConfig {
        &self.config
    }

    /// The current directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// The current full digest (what gossip carries).
    pub fn records(&self) -> Vec<NodeRecord> {
        self.directory.records()
    }

    /// Seed bootstrap: the runtime knows (out of band) that `node`
    /// exists, optionally at `addr`. Inserted as assumed-alive at
    /// incarnation 0, which any real announcement supersedes.
    pub fn on_contact(&mut self, now: Time, node: u32, addr: Option<SocketAddr>) {
        if node == self.node {
            return;
        }
        if let Some(tr) = self.directory.merge(&NodeRecord::alive(node, 0, addr)) {
            self.push_event(now, node, 0, tr);
        }
        self.last_heard.entry(node).or_insert(now);
    }

    /// Periodic driver: runs failure detection, and when the gossip
    /// period elapsed, emits the anti-entropy push to every present
    /// peer. Call at least a couple of times per `gossip_interval`.
    pub fn on_tick(&mut self, now: Time) -> Vec<GossipOut> {
        self.detect_failures(now);
        if now >= self.next_gossip {
            self.next_gossip = now + self.config.gossip_interval;
            self.broadcast()
        } else {
            Vec::new()
        }
    }

    /// Handles one received digest. Returns any immediate replies:
    /// the full directory pushed back when the sender is new or just
    /// transitioned (back) to alive (a joiner or rejoiner converges in
    /// one round-trip instead of waiting out a gossip period), when a
    /// record about *this* node had to be refuted, or when the sender
    /// is one we had written off (it must learn the verdict to outbid
    /// it).
    pub fn on_digest(&mut self, now: Time, from: u32, records: &[NodeRecord]) -> Vec<GossipOut> {
        let known_before = self.directory.contains(from);
        self.last_heard.insert(from, now);
        let mut refuted = false;
        let mut sender_reappeared = false;
        for rec in records {
            if rec.node == self.node {
                refuted |= self.defend(now, rec);
                continue;
            }
            if let Some(tr) = self.directory.merge(rec) {
                self.push_event(now, rec.node, rec.incarnation, tr);
                // A node (re)appearing alive starts a fresh silence
                // clock; without this it would be instantly re-suspected.
                if matches!(tr, Transition::Joined | Transition::Alive) {
                    self.last_heard.insert(rec.node, now);
                    sender_reappeared |= rec.node == from;
                }
            }
        }
        let written_off = self
            .directory
            .status_of(from)
            .is_some_and(|s| !s.is_present());
        if !known_before || refuted || written_off || sender_reappeared {
            let mut outs = self.broadcast();
            // `broadcast` skips written-off peers; this reply is the one
            // channel through which a slandered node learns its verdict.
            if written_off {
                outs.push(GossipOut {
                    to: from,
                    records: self.records(),
                });
            }
            outs
        } else {
            Vec::new()
        }
    }

    /// Transport-level hint: the runtime's link to `node` failed
    /// terminally (e.g. `fail_after_attempts` consecutive connect
    /// failures). Recorded as an immediate suspicion at the node's
    /// current incarnation — `dead_after` still gates the dead verdict,
    /// so a refutation through a third node can save it.
    pub fn on_peer_unreachable(&mut self, now: Time, node: u32) {
        if node == self.node {
            return;
        }
        let Some(rec) = self.directory.get(node).copied() else {
            return;
        };
        if rec.status == NodeStatus::Alive {
            let suspect = NodeRecord {
                status: NodeStatus::Suspect,
                ..rec
            };
            if let Some(tr) = self.directory.merge(&suspect) {
                self.push_event(now, node, rec.incarnation, tr);
            }
            // Backdate the silence clock to at least `suspect_after`
            // ago, so the dead verdict does not restart from a digest
            // that arrived just before the link died.
            let backdated = Time::from_nanos(
                now.as_nanos()
                    .saturating_sub(self.config.suspect_after.as_nanos()),
            );
            let prior = self.heard(node, now);
            self.last_heard.insert(node, prior.min(backdated));
        }
    }

    /// Graceful departure: marks this node [`NodeStatus::Left`] and
    /// returns the farewell digest for every present peer. The engine
    /// should not be driven afterwards.
    pub fn leave(&mut self, now: Time) -> Vec<GossipOut> {
        let rec = NodeRecord {
            node: self.node,
            incarnation: self.incarnation,
            status: NodeStatus::Left,
            addr: self.addr,
        };
        if let Some(tr) = self.directory.merge(&rec) {
            self.push_event(now, self.node, self.incarnation, tr);
        }
        self.broadcast()
    }

    /// Drains the pending membership events, oldest first.
    pub fn poll_events(&mut self) -> Vec<MembershipEvent> {
        std::mem::take(&mut self.events)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn heard(&mut self, node: u32, now: Time) -> Time {
        *self.last_heard.entry(node).or_insert(now)
    }

    fn push_event(&mut self, at: Time, node: u32, incarnation: u64, transition: Transition) {
        self.events.push(MembershipEvent {
            at,
            node,
            incarnation,
            transition,
        });
    }

    /// Self-defense (SWIM refutation): a circulating record claims this
    /// node is suspect/left/dead, or someone echoes an incarnation at
    /// least ours with a worse status. Outbid it: jump strictly above
    /// the slander and re-announce alive. Returns true if a refutation
    /// happened (the caller then pushes the new record out).
    fn defend(&mut self, now: Time, rec: &NodeRecord) -> bool {
        let slandered = rec.status != NodeStatus::Alive && rec.incarnation >= self.incarnation;
        let outrun = rec.incarnation > self.incarnation;
        if !(slandered || outrun) {
            return false;
        }
        // Saturating: a hostile digest claiming u64::MAX must not wrap
        // the incarnation back to 0 (which would bury this node behind
        // its own higher-precedence slander forever) or panic the
        // engine. At saturation the refutation cannot outbid a
        // same-incarnation slander — an accepted edge of a 2^64 space
        // no honest cluster approaches.
        self.incarnation = rec.incarnation.saturating_add(u64::from(slandered));
        let own = NodeRecord::alive(self.node, self.incarnation, self.addr);
        if let Some(tr) = self.directory.merge(&own) {
            self.push_event(now, self.node, self.incarnation, tr);
        }
        slandered
    }

    fn detect_failures(&mut self, now: Time) {
        let present: Vec<NodeRecord> = self
            .directory
            .iter()
            .filter(|r| r.node != self.node && r.status.is_present())
            .copied()
            .collect();
        for rec in present {
            let silent = now.since(self.heard(rec.node, now));
            if rec.status == NodeStatus::Alive && silent >= self.config.suspect_after {
                let suspect = NodeRecord {
                    status: NodeStatus::Suspect,
                    ..rec
                };
                if let Some(tr) = self.directory.merge(&suspect) {
                    self.push_event(now, rec.node, rec.incarnation, tr);
                }
            }
            if silent >= self.config.dead_after {
                let dead = NodeRecord {
                    status: NodeStatus::Dead,
                    ..rec
                };
                if let Some(tr) = self.directory.merge(&dead) {
                    self.push_event(now, rec.node, rec.incarnation, tr);
                }
            }
        }
    }

    fn broadcast(&self) -> Vec<GossipOut> {
        let records = self.records();
        self.directory
            .iter()
            .filter(|r| r.node != self.node && r.status.is_present())
            .map(|r| GossipOut {
                to: r.node,
                records: records.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Time {
        Time::from_nanos(v * 1_000_000)
    }

    fn cfg() -> MembershipConfig {
        // 50 ms gossip, suspect at 250 ms, dead at 750 ms.
        MembershipConfig {
            gossip_interval: Dur::from_millis(50),
            suspect_after: Dur::from_millis(250),
            dead_after: Dur::from_millis(750),
        }
    }

    /// Drives `engines` lock-step with instant loss-free delivery until
    /// `until`, in `step`-ms increments.
    fn run(engines: &mut [Membership], from_ms: u64, until_ms: u64, step: u64) {
        let mut t = from_ms;
        while t <= until_ms {
            let mut outbox: Vec<(u32, GossipOut)> = Vec::new();
            for e in engines.iter_mut() {
                let from = e.node_id();
                for out in e.on_tick(ms(t)) {
                    outbox.push((from, out));
                }
            }
            while let Some((from, out)) = outbox.pop() {
                if let Some(dst) = engines.iter_mut().find(|e| e.node_id() == out.to) {
                    for reply in dst.on_digest(ms(t), from, &out.records) {
                        outbox.push((dst.node_id(), reply));
                    }
                }
            }
            t += step;
        }
    }

    #[test]
    fn seed_bootstrap_converges_to_full_membership() {
        let mut engines: Vec<Membership> = (0..3u32)
            .map(|n| Membership::new(n, None, 1, ms(0), cfg()))
            .collect();
        // Nodes 1 and 2 know only the seed (node 0); the seed knows no
        // one. Node 2 must still learn node 1 exists, through the seed.
        engines[1].on_contact(ms(0), 0, None);
        engines[2].on_contact(ms(0), 0, None);
        run(&mut engines, 0, 300, 10);
        for e in &engines {
            assert_eq!(e.directory().len(), 3, "node {} incomplete", e.node_id());
            assert_eq!(
                e.directory().alive_nodes(),
                vec![0, 1, 2],
                "node {} disagrees",
                e.node_id()
            );
        }
        // Every engine saw the other two join.
        for e in engines.iter_mut() {
            let joins: Vec<u32> = e
                .poll_events()
                .iter()
                .filter(|ev| matches!(ev.transition, Transition::Joined))
                .map(|ev| ev.node)
                .collect();
            assert_eq!(joins.len(), 2, "node {} joins: {joins:?}", e.node_id());
        }
    }

    #[test]
    fn silence_escalates_to_suspect_then_dead() {
        let mut engines: Vec<Membership> = (0..2u32)
            .map(|n| Membership::new(n, None, 1, ms(0), cfg()))
            .collect();
        engines[1].on_contact(ms(0), 0, None);
        run(&mut engines, 0, 200, 10);
        assert_eq!(engines[0].directory().alive_nodes(), vec![0, 1]);
        // Node 1 goes silent: only node 0 ticks from now on.
        let a = &mut engines[0];
        a.poll_events(); // drain the join
        let mut transitions = Vec::new();
        for t in (210..1300).step_by(10) {
            a.on_tick(ms(t));
            transitions.extend(a.poll_events().into_iter().map(|e| (e.transition, e.node)));
        }
        assert_eq!(
            transitions,
            vec![(Transition::Suspected, 1), (Transition::Dead, 1)],
            "silence must escalate exactly once through suspect to dead"
        );
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Dead));
    }

    #[test]
    fn suspected_node_refutes_and_survives() {
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        let mut b = Membership::new(1, None, 1, ms(0), cfg());
        b.on_contact(ms(0), 0, None);
        // Introduce them.
        let hello = b.on_tick(ms(0));
        for out in hello {
            for reply in a.on_digest(ms(0), 1, &out.records) {
                if reply.to == 1 {
                    b.on_digest(ms(0), 0, &reply.records);
                }
            }
        }
        // A suspects B (silence on A's side only).
        for t in (0..400).step_by(10) {
            a.on_tick(ms(t));
        }
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Suspect));
        // A's next digest reaches B: B must outbid the suspicion.
        let inc_before = b.incarnation();
        let replies = b.on_digest(ms(400), 0, &a.records());
        assert_eq!(b.incarnation(), inc_before + 1, "refutation bumps");
        assert!(
            replies.iter().any(|o| o.to == 0),
            "the refutation must be pushed back immediately"
        );
        for out in replies {
            if out.to == 0 {
                a.on_digest(ms(400), 1, &out.records);
            }
        }
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Alive));
    }

    #[test]
    fn dead_node_rejoining_under_higher_incarnation_recovers() {
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        a.on_contact(ms(0), 1, None);
        // Write node 1 off entirely.
        for t in (0..1000).step_by(10) {
            a.on_tick(ms(t));
        }
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Dead));
        a.poll_events();
        // Rejoin under incarnation 2 (strictly above the corpse).
        let b2 = Membership::new(1, None, 2, ms(1500), cfg());
        let outs = a.on_digest(ms(1500), 1, &b2.records());
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Alive));
        let evs = a.poll_events();
        assert!(
            evs.iter()
                .any(|e| e.node == 1 && e.incarnation == 2 && e.transition == Transition::Alive),
            "rejoin must surface as an Alive transition at the new incarnation: {evs:?}"
        );
        // And the (formerly written-off) sender gets a direct reply.
        assert!(outs.iter().any(|o| o.to == 1));
    }

    #[test]
    fn wrongly_buried_node_learns_its_verdict_and_refutes() {
        // A declares B dead; B never crashed and keeps gossiping at its
        // original incarnation. The direct reply to a written-off sender
        // is what closes the loop.
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        let mut b = Membership::new(1, None, 1, ms(0), cfg());
        b.on_contact(ms(0), 0, None);
        // A has heard B's real announcement once, so the eventual death
        // verdict is pinned to B's true incarnation (not the weaker
        // assumed-contact one an alive re-announcement would outbid).
        for out in b.on_tick(ms(0)) {
            if out.to == 0 {
                a.on_digest(ms(0), 1, &out.records);
            }
        }
        for t in (0..1000).step_by(10) {
            a.on_tick(ms(t)); // hears nothing more: buries B
        }
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Dead));
        // B's routine digest reaches A: A replies with the verdict.
        let replies = a.on_digest(ms(1000), 1, &b.records());
        let to_b: Vec<_> = replies.into_iter().filter(|o| o.to == 1).collect();
        assert!(!to_b.is_empty(), "a written-off sender must get a reply");
        for out in to_b {
            for back in b.on_digest(ms(1000), 0, &out.records) {
                if back.to == 0 {
                    a.on_digest(ms(1000), 1, &back.records);
                }
            }
        }
        assert_eq!(b.incarnation(), 2, "refuted the death verdict");
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Alive));
    }

    #[test]
    fn leave_is_announced_and_not_refuted_by_its_own_record() {
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        let mut b = Membership::new(1, None, 1, ms(0), cfg());
        a.on_contact(ms(0), 1, None);
        b.on_contact(ms(0), 0, None);
        let farewell = b.leave(ms(100));
        assert!(farewell.iter().any(|o| o.to == 0));
        for out in farewell {
            if out.to == 0 {
                a.on_digest(ms(100), 1, &out.records);
            }
        }
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Left));
        // Left is quieter than dead but still departed: not present.
        assert_eq!(a.directory().present_nodes(), vec![0]);
    }

    #[test]
    fn unreachable_report_suspects_immediately() {
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        a.on_contact(ms(0), 1, None);
        a.on_peer_unreachable(ms(10), 1);
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Suspect));
        let evs = a.poll_events();
        assert!(evs
            .iter()
            .any(|e| e.node == 1 && e.transition == Transition::Suspected));
        // Death still waits for dead_after from the report.
        a.on_tick(ms(20));
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Suspect));
        for t in (20..1300).step_by(10) {
            a.on_tick(ms(t));
        }
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Dead));
    }

    #[test]
    fn gossip_respects_the_interval() {
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        a.on_contact(ms(0), 1, None);
        assert!(!a.on_tick(ms(0)).is_empty(), "first tick gossips");
        assert!(a.on_tick(ms(10)).is_empty(), "inside the interval");
        assert!(a.on_tick(ms(49)).is_empty());
        assert!(!a.on_tick(ms(50)).is_empty(), "interval elapsed");
    }
}
