//! §4.3 — time-complexity sweep: O(h·TTB) + TTA.
//!
//! The paper bounds cycle-detection time by the height `h` of the
//! (reverse) spanning trees: clocks propagate down the references,
//! consensus candidates return along the tree, and agreement flows down
//! again — each hop costing one TTB — plus the final TTA dying wait.
//! Rings of increasing size make `h` explicit; the measured collection
//! time should grow linearly in the ring size with slope around TTB.

use dgc_activeobj::collector::CollectorKind;
use dgc_activeobj::runtime::{Grid, GridConfig};
use dgc_bench::{nas_dgc_config, Table};
use dgc_simnet::time::{SimDuration, SimTime};
use dgc_simnet::topology::Topology;
use dgc_workloads::scenarios::ring;

fn main() {
    println!("=== §4.3 complexity: ring size vs collection time (TTB 30 s, TTA 61 s) ===\n");
    let mut table = Table::new(vec![
        "Ring size h",
        "Collected at",
        "(t - TTA) / TTB",
        "Violations",
    ]);
    let mut previous = 0.0f64;
    let mut monotone = true;
    for h in [2usize, 4, 8, 16, 32, 64] {
        let mut grid = Grid::new(
            GridConfig::new(Topology::single_site(8, SimDuration::from_millis(1)))
                .collector(CollectorKind::Complete(nas_dgc_config()))
                .seed(5),
        );
        let ids = ring(&mut grid, h, 8);
        let deadline = SimTime::from_secs(20_000);
        while grid.now() < deadline && ids.iter().any(|id| grid.is_alive(*id)) {
            grid.run_for(SimDuration::from_secs(30));
        }
        assert!(
            ids.iter().all(|id| !grid.is_alive(*id)),
            "ring {h} not collected"
        );
        let t = grid
            .collected()
            .iter()
            .map(|c| c.at.as_secs_f64())
            .fold(0.0f64, f64::max);
        let beats = (t - 61.0) / 30.0;
        table.row(vec![
            format!("{h}"),
            format!("{t:.0} s"),
            format!("{beats:.1} beats"),
            format!("{}", grid.violations().len()),
        ]);
        if t + 1.0 < previous {
            monotone = false;
        }
        previous = t;
    }
    table.print();
    assert!(monotone, "collection time must not shrink as h grows");
    println!(
        "\nExpected shape: collection time ≈ c·h·TTB + TTA with a small\n\
         constant c (clock propagation + consensus return + agreement wave),\n\
         i.e. the '(t - TTA)/TTB' column grows roughly linearly in h."
    );
}
