//! Fig. 9 — NAS time overhead and DGC time table.
//!
//! Regenerates the paper's runtime table: per kernel, the application
//! runtime without and with the DGC (overhead %), and the **DGC time** —
//! the span between the benchmark having its result and the collector
//! reclaiming all 256 workers. With TTB = 30 s the paper observes 457 to
//! 534 s, i.e. 15–17 broadcast rounds; two factors make it that fast:
//! the consensus-propagation optimization and the complete reference
//! graph spreading consensus attempts quickly.

use dgc_bench::{mean, nas_series, overhead_pct, std_dev, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    println!("=== Fig. 9: NAS time overhead and DGC time (scale: {scale:?}) ===\n");
    let series = nas_series(scale);

    let mut table = Table::new(vec![
        "Kernel",
        "No DGC avg",
        "DGC avg",
        "Overhead",
        "DGC time avg",
        "DGC time std",
    ]);
    for s in &series {
        let base: Vec<f64> = s
            .control
            .iter()
            .map(|o| o.result_at.as_secs_f64())
            .collect();
        let with: Vec<f64> = s.dgc.iter().map(|o| o.result_at.as_secs_f64()).collect();
        let dgc_time: Vec<f64> = s
            .dgc
            .iter()
            .filter_map(|o| o.dgc_time.map(|d| d.as_secs_f64()))
            .collect();
        assert_eq!(
            dgc_time.len(),
            s.dgc.len(),
            "{:?}: a DGC run failed to collect all workers",
            s.kernel
        );
        table.row(vec![
            format!("{:?}", s.kernel).to_uppercase(),
            format!("{:.2} s", mean(&base)),
            format!("{:.2} s", mean(&with)),
            format!("{:.2} %", overhead_pct(mean(&base), mean(&with))),
            format!("{:.2} s", mean(&dgc_time)),
            format!("{:.2} s", std_dev(&dgc_time)),
        ]);
    }
    table.print();

    println!("\nPaper (Fig. 9):");
    let mut paper = Table::new(vec![
        "Kernel",
        "No DGC avg",
        "DGC avg",
        "Overhead",
        "DGC time",
    ]);
    paper.row(vec!["CG", "3529.45 s", "3190.00 s", "-9.62 %", "534.31 s"]);
    paper.row(vec!["EP", "8.36 s", "8.37 s", "0.12 %", "530.41 s"]);
    paper.row(vec!["FT", "424.40 s", "427.66 s", "0.77 %", "457.41 s"]);
    paper.print();
    println!(
        "\nNotes: the paper's negative CG overhead is an RMI socket-reopening\n\
         artifact it discusses at length (retesting with warm sockets gave\n\
         +0.44 %); our transport has no such artifact, so expect ~0 %.\n\
         DGC time should land within a few broadcast rounds of the paper's\n\
         (15–20 × TTB plus the final TTA wait)."
    );
}
