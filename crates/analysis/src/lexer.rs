//! A small self-contained Rust lexer.
//!
//! The correctness lints need exactly enough syntax to be trustworthy:
//! tokens with line numbers, comments preserved (allow directives live
//! there), and none of the classic false-positive traps — a
//! `HashMap` inside a string literal, an `unwrap` inside a comment, a
//! lifetime `'a` mistaken for an unterminated char literal, a nested
//! block comment swallowing the rest of the file. There is no external
//! dependency (the container has no crates.io); the grammar subset is
//! raw/byte/C strings, char literals vs lifetimes, nested block
//! comments, raw identifiers, numbers loose enough for suffixes and
//! ranges, and single-char punctuation for everything else.
//!
//! The lexer **never panics**, on any byte sequence: malformed input
//! degrades to best-effort tokens ending at EOF (pinned by the
//! `lexer_props` proptest).

/// What a token is; its text rides in [`Token::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers arrive without `r#`).
    Ident,
    /// Lifetime (`'a`, text without the quote).
    Lifetime,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`);
    /// text is the raw content between the quotes, escapes unprocessed.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Number literal (loose: `0xff_u32`, `1.5e3`; `0..n` stays three
    /// tokens).
    Num,
    /// One significant punctuation character.
    Punct,
    /// `// …` comment; text is everything after the slashes.
    LineComment,
    /// `/* … */` comment (nesting handled); text is the inner content.
    BlockComment,
}

/// One lexed token with its location.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what each kind stores).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based line it ends on (differs for multi-line strings and
    /// block comments; allow directives anchor to the *end* line).
    pub end_line: u32,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for this punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

/// Tokenizes `source`. Total: every byte of every input produces some
/// token stream, never a panic.
pub fn lex(source: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: source.chars().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    };
    lx.run();
    lx.out
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Token {
            kind,
            text,
            line,
            end_line: self.line,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.cooked_string(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c.is_alphabetic() || c == '_' => self.ident_or_prefixed(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line);
    }

    /// `/* … */` with nesting; unterminated runs to EOF.
    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else if c == '/' && self.peek(1) == Some('*') {
                self.bump();
                self.bump();
                depth += 1;
                text.push_str("/*");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, text, line);
    }

    /// A `"…"` body (opening quote not yet consumed); escapes keep the
    /// next char verbatim, so `"\""` terminates correctly.
    fn cooked_string(&mut self, line: u32) {
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                _ => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// `r"…"`, `r#"…"#`, … — `hashes` is the `#` count; the body ends
    /// only at `"` followed by the same number of `#`s.
    fn raw_string(&mut self, hashes: usize, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes {
                    if self.peek(0) == Some('#') {
                        self.bump();
                        matched += 1;
                    } else {
                        // A quote with too few hashes is part of the body.
                        text.push('"');
                        for _ in 0..matched {
                            text.push('#');
                        }
                        continue 'scan;
                    }
                }
                break;
            }
            text.push(c);
        }
        self.push(TokKind::Str, text, line);
    }

    /// Disambiguates `'a'` / `'\n'` / `'a` (lifetime). A quote followed
    /// by ident chars is a char literal only if the very next char after
    /// them is a closing quote.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape then to closing
                // quote (bounded by newline/EOF so garbage can't run
                // away).
                self.bump(); // the backslash
                let mut text = String::from("\\");
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
                while let Some(c) = self.peek(0) {
                    if c == '\'' || c == '\n' {
                        if c == '\'' {
                            self.bump();
                        }
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokKind::Char, text, line);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                let mut len = 1;
                while self
                    .peek(len)
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    len += 1;
                }
                if self.peek(len) == Some('\'') {
                    // 'a' — char literal.
                    let mut text = String::new();
                    for _ in 0..len {
                        if let Some(c) = self.bump() {
                            text.push(c);
                        }
                    }
                    self.bump(); // closing quote
                    self.push(TokKind::Char, text, line);
                } else {
                    // 'a — lifetime (or a label).
                    let mut text = String::new();
                    for _ in 0..len {
                        if let Some(c) = self.bump() {
                            text.push(c);
                        }
                    }
                    self.push(TokKind::Lifetime, text, line);
                }
            }
            Some(c) => {
                // Something like '(' — a single-char literal '(', or
                // stray quote. Treat as char literal if closed.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, c.to_string(), line);
            }
            None => self.push(TokKind::Punct, "'".to_string(), line),
        }
    }

    /// Loose numbers: `123`, `0xff_u64`, `1.5e3`, but `0..n` leaves the
    /// range dots alone.
    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let continues = c.is_alphanumeric()
                || c == '_'
                || (c == '.'
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                    && !text.contains('.'));
            if !continues {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Num, text, line);
    }

    /// Identifier, or a string/char prefix (`r"`, `br#"`, `b'`, `c"`,
    /// `r#raw_ident`).
    fn ident_or_prefixed(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let raw_capable = matches!(text.as_str(), "r" | "br" | "cr" | "rb");
        match self.peek(0) {
            Some('"') if matches!(text.as_str(), "b" | "c") || raw_capable => {
                if raw_capable {
                    self.raw_string(0, line);
                } else {
                    self.cooked_string(line);
                }
            }
            Some('#') if raw_capable => {
                // Count hashes; then a quote means raw string, an ident
                // char means raw identifier (`r#fn`).
                let mut hashes = 0;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                match self.peek(hashes) {
                    Some('"') => {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        self.raw_string(hashes, line);
                    }
                    Some(c) if hashes == 1 && (c.is_alphabetic() || c == '_') => {
                        self.bump(); // '#'
                        let mut raw = String::new();
                        while let Some(c) = self.peek(0) {
                            if c.is_alphanumeric() || c == '_' {
                                raw.push(c);
                                self.bump();
                            } else {
                                break;
                            }
                        }
                        self.push(TokKind::Ident, raw, line);
                    }
                    _ => self.push(TokKind::Ident, text, line),
                }
            }
            Some('\'') if text == "b" => {
                self.char_or_lifetime(line);
                // Relabel: `b'x'` produced a Char already; nothing to do
                // (the prefix itself is dropped, matching how the rules
                // consume these).
            }
            _ => self.push(TokKind::Ident, text, line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let t = kinds("fn main() { x.y(); }");
        assert_eq!(t[0], (TokKind::Ident, "fn".into()));
        assert_eq!(t[1], (TokKind::Ident, "main".into()));
        assert!(t.contains(&(TokKind::Punct, ".".into())));
        assert!(t.contains(&(TokKind::Punct, ";".into())));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(t.contains(&(TokKind::Lifetime, "a".into())));
        assert!(t.contains(&(TokKind::Char, "x".into())));
        // And escaped / labeled edge cases:
        let t = kinds("let c = '\\n'; 'outer: loop { break 'outer; }");
        assert!(t.contains(&(TokKind::Char, "\\n".into())));
        assert!(t.contains(&(TokKind::Lifetime, "outer".into())));
    }

    #[test]
    fn raw_strings_do_not_end_early() {
        let t = kinds(r##"let s = r#"contains "quotes" and \ backslash"#;"##);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Str && s.contains("\"quotes\"")));
        let t = kinds("let s = r\"plain raw\";");
        assert!(t.contains(&(TokKind::Str, "plain raw".into())));
        let t = kinds("let b = br#\"bytes\"#;");
        assert!(t.contains(&(TokKind::Str, "bytes".into())));
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(t.len(), 3);
        assert_eq!(t[1].0, TokKind::BlockComment);
        assert!(t[1].1.contains("inner"));
        assert!(t[1].1.contains("still outer"));
        assert_eq!(t[2], (TokKind::Ident, "b".into()));
    }

    #[test]
    fn strings_hide_code_from_rules() {
        let t = kinds(r#"let s = "Instant::now() HashMap.unwrap()";"#);
        assert!(!t
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "Instant"));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let t = kinds("let r#fn = 1;");
        assert!(t.contains(&(TokKind::Ident, "fn".into())));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let toks = lex("a\n/* one\ntwo */\nb\n\"x\ny\"");
        let a = &toks[0];
        assert_eq!((a.line, a.end_line), (1, 1));
        let c = &toks[1];
        assert_eq!((c.kind, c.line, c.end_line), (TokKind::BlockComment, 2, 3));
        let b = &toks[2];
        assert_eq!(b.line, 4);
        let s = &toks[3];
        assert_eq!((s.kind, s.line, s.end_line), (TokKind::Str, 5, 6));
    }

    #[test]
    fn unterminated_constructs_reach_eof_quietly() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b'", "r#"] {
            let _ = lex(src); // must not panic
        }
    }
}
