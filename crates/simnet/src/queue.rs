//! Deterministic event queue.
//!
//! A binary heap keyed by `(time, sequence)`. The monotonically increasing
//! sequence number breaks ties between events scheduled for the same
//! instant in insertion order, which makes runs fully deterministic for a
//! given seed regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    cancelled: bool,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timed events.
///
/// Events with equal timestamps pop in the order they were pushed.
/// Cancellation is lazy: cancelled entries stay in the heap and are
/// discarded when they surface.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    // Sorted vec of cancelled sequence numbers would be O(n); a small
    // hash set suffices because cancellations are rare.
    cancelled: std::collections::HashSet<u64>,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            live: 0,
        }
    }

    /// Schedules `payload` at absolute time `at`, returning a handle that
    /// can later be passed to [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            cancelled: false,
            payload,
        });
        self.live += 1;
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// had not yet fired nor been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(id.0) {
            self.live = self.live.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if entry.cancelled || self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live -= 1;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let entry = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&entry.seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of live (scheduled, not cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), "c");
        q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(7), i)));
        }
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.pop(), Some((t(5), "b")));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }
}
