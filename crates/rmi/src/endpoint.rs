//! The lease-based endpoint: client (lease renewal) and server (lease
//! table) roles fused into one state machine per active object.

use std::collections::BTreeMap;

use dgc_core::id::AoId;
use dgc_core::units::{Dur, Time};

/// Configuration of the RMI-style collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RmiConfig {
    /// Lease duration granted to referencers. Sun's RMI shipped 1 minute
    /// up to Java 5 and 1 hour from Java 6 (the paper cites the bug
    /// report motivating the change, §4.2).
    pub lease: Dur,
}

impl Default for RmiConfig {
    fn default() -> Self {
        // The historical RMI default (pre-Java-6): 60 s.
        RmiConfig {
            lease: Dur::from_secs(60),
        }
    }
}

/// Wire units of the RMI DGC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmiMessage {
    /// `DGCClient.dirty`: register / renew the sender's lease.
    Dirty {
        /// The lease holder.
        holder: AoId,
        /// Requested lease duration.
        lease: Dur,
    },
    /// `DGCClient.clean`: the sender's stub was collected.
    Clean {
        /// The former lease holder.
        holder: AoId,
    },
}

/// What the runtime must do after an endpoint handler ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmiAction {
    /// Send an RMI DGC call to a referenced object.
    Send {
        /// Destination.
        to: AoId,
        /// The call.
        message: RmiMessage,
    },
    /// This object has no lease holders and is idle: destroy it.
    Terminate,
}

#[derive(Debug, Clone)]
struct HeldRef {
    /// Next dirty (renewal) due.
    next_renewal: Time,
    /// At least one local stub alive.
    reachable: bool,
}

/// Per-active-object endpoint of the RMI-style collector.
#[derive(Debug, Clone)]
pub struct RmiEndpoint {
    id: AoId,
    config: RmiConfig,
    /// Server role: lease holder → expiry.
    leases: BTreeMap<AoId, Time>,
    /// Client role: referenced target → renewal schedule.
    held: BTreeMap<AoId, HeldRef>,
    /// Last dirty received (or creation), for the no-referencer grace.
    last_dirty: Time,
    dead: bool,
    /// Dirty calls sent (for traffic sanity checks).
    dirty_sent: u64,
    /// Clean calls sent.
    clean_sent: u64,
}

impl RmiEndpoint {
    /// Creates the endpoint for `id` at `now`.
    pub fn new(id: AoId, now: Time, config: RmiConfig) -> Self {
        RmiEndpoint {
            id,
            config,
            leases: BTreeMap::new(),
            held: BTreeMap::new(),
            last_dirty: now,
            dead: false,
            dirty_sent: 0,
            clean_sent: 0,
        }
    }

    /// A stub for `target` was deserialized: send an immediate dirty and
    /// schedule renewals.
    pub fn on_stub_deserialized(&mut self, now: Time, target: AoId) -> Vec<RmiAction> {
        if self.dead {
            return Vec::new();
        }
        self.held.insert(
            target,
            HeldRef {
                next_renewal: now + self.config.lease.div(2),
                reachable: true,
            },
        );
        self.dirty_sent += 1;
        vec![RmiAction::Send {
            to: target,
            message: RmiMessage::Dirty {
                holder: self.id,
                lease: self.config.lease,
            },
        }]
    }

    /// All stubs for `target` were collected: send a clean call.
    pub fn on_stubs_collected(&mut self, target: AoId) -> Vec<RmiAction> {
        if self.dead || self.held.remove(&target).is_none() {
            return Vec::new();
        }
        self.clean_sent += 1;
        vec![RmiAction::Send {
            to: target,
            message: RmiMessage::Clean { holder: self.id },
        }]
    }

    /// A send to `target` failed (it terminated): forget it.
    pub fn on_send_failure(&mut self, target: AoId) {
        self.held.remove(&target);
    }

    /// Handles an incoming DGC call.
    pub fn on_message(&mut self, now: Time, message: &RmiMessage) {
        if self.dead {
            return;
        }
        match *message {
            RmiMessage::Dirty { holder, lease } => {
                self.leases.insert(holder, now + lease);
                self.last_dirty = now;
            }
            RmiMessage::Clean { holder } => {
                self.leases.remove(&holder);
            }
        }
    }

    /// Periodic work: renew due leases (client role), expire stale ones
    /// (server role), and terminate if idle with no holder for a full
    /// lease period.
    pub fn on_tick(&mut self, now: Time, idle: bool) -> Vec<RmiAction> {
        if self.dead {
            return Vec::new();
        }
        let mut actions = Vec::new();

        // Client: renewals at lease/2.
        for (target, held) in &mut self.held {
            if held.reachable && now >= held.next_renewal {
                held.next_renewal = now + self.config.lease.div(2);
                self.dirty_sent += 1;
                actions.push(RmiAction::Send {
                    to: *target,
                    message: RmiMessage::Dirty {
                        holder: self.id,
                        lease: self.config.lease,
                    },
                });
            }
        }

        // Server: expire stale leases.
        self.leases.retain(|_, expiry| *expiry > now);

        // Collection: reference listing empty, idle, and a grace of one
        // lease since the last dirty (covers in-flight first dirties).
        if idle && self.leases.is_empty() && now.since(self.last_dirty) > self.config.lease {
            self.dead = true;
            actions.push(RmiAction::Terminate);
        }
        actions
    }

    /// This endpoint's id.
    pub fn id(&self) -> AoId {
        self.id
    }

    /// The configuration this endpoint runs with.
    pub fn config(&self) -> RmiConfig {
        self.config
    }

    /// True once terminated.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Current number of lease holders.
    pub fn lease_holders(&self) -> usize {
        self.leases.len()
    }

    /// Current number of held (referenced) targets.
    pub fn held_refs(&self) -> usize {
        self.held.len()
    }

    /// Dirty calls sent so far.
    pub fn dirty_sent(&self) -> u64 {
        self.dirty_sent
    }

    /// Clean calls sent so far.
    pub fn clean_sent(&self) -> u64 {
        self.clean_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ao(n: u32) -> AoId {
        AoId::new(n, 0)
    }

    fn t(s: u64) -> Time {
        Time::from_secs(s)
    }

    fn cfg() -> RmiConfig {
        RmiConfig {
            lease: Dur::from_secs(60),
        }
    }

    #[test]
    fn deserialization_sends_immediate_dirty() {
        let mut e = RmiEndpoint::new(ao(1), t(0), cfg());
        let actions = e.on_stub_deserialized(t(0), ao(2));
        assert_eq!(
            actions,
            vec![RmiAction::Send {
                to: ao(2),
                message: RmiMessage::Dirty {
                    holder: ao(1),
                    lease: Dur::from_secs(60)
                },
            }]
        );
        assert_eq!(e.held_refs(), 1);
    }

    #[test]
    fn renewal_happens_at_half_lease() {
        let mut e = RmiEndpoint::new(ao(1), t(0), cfg());
        e.on_stub_deserialized(t(0), ao(2));
        assert!(e.on_tick(t(29), false).is_empty(), "too early");
        let actions = e.on_tick(t(30), false);
        assert_eq!(actions.len(), 1, "renewal due at lease/2");
        assert!(e.on_tick(t(31), false).is_empty(), "rescheduled");
    }

    #[test]
    fn clean_sent_when_stubs_collected() {
        let mut e = RmiEndpoint::new(ao(1), t(0), cfg());
        e.on_stub_deserialized(t(0), ao(2));
        let actions = e.on_stubs_collected(ao(2));
        assert_eq!(
            actions,
            vec![RmiAction::Send {
                to: ao(2),
                message: RmiMessage::Clean { holder: ao(1) }
            }]
        );
        assert_eq!(e.held_refs(), 0);
        assert!(e.on_stubs_collected(ao(2)).is_empty(), "idempotent");
    }

    #[test]
    fn lease_holder_keeps_target_alive() {
        let mut srv = RmiEndpoint::new(ao(2), t(0), cfg());
        srv.on_message(
            t(1),
            &RmiMessage::Dirty {
                holder: ao(1),
                lease: Dur::from_secs(60),
            },
        );
        assert_eq!(srv.lease_holders(), 1);
        assert!(srv.on_tick(t(50), true).is_empty(), "leased: stays alive");
    }

    #[test]
    fn expired_lease_allows_collection() {
        let mut srv = RmiEndpoint::new(ao(2), t(0), cfg());
        srv.on_message(
            t(1),
            &RmiMessage::Dirty {
                holder: ao(1),
                lease: Dur::from_secs(60),
            },
        );
        // Lease expires at 61; grace needs last_dirty + lease < now.
        let actions = srv.on_tick(t(62), true);
        assert_eq!(actions, vec![RmiAction::Terminate]);
        assert!(srv.is_dead());
    }

    #[test]
    fn clean_call_releases_lease() {
        let mut srv = RmiEndpoint::new(ao(2), t(0), cfg());
        srv.on_message(
            t(1),
            &RmiMessage::Dirty {
                holder: ao(1),
                lease: Dur::from_secs(60),
            },
        );
        srv.on_message(t(2), &RmiMessage::Clean { holder: ao(1) });
        assert_eq!(srv.lease_holders(), 0);
        // Still within the grace of the last dirty.
        assert!(srv.on_tick(t(30), true).is_empty());
        let actions = srv.on_tick(t(62), true);
        assert_eq!(actions, vec![RmiAction::Terminate]);
    }

    #[test]
    fn busy_object_is_never_collected() {
        let mut srv = RmiEndpoint::new(ao(2), t(0), cfg());
        assert!(srv.on_tick(t(1_000), false).is_empty());
        assert!(!srv.is_dead());
    }

    #[test]
    fn fresh_object_has_grace_before_collection() {
        let mut srv = RmiEndpoint::new(ao(2), t(0), cfg());
        assert!(
            srv.on_tick(t(59), true).is_empty(),
            "grace: one lease period"
        );
        assert_eq!(srv.on_tick(t(61), true), vec![RmiAction::Terminate]);
    }

    #[test]
    fn renewals_refresh_the_server_side() {
        let mut client = RmiEndpoint::new(ao(1), t(0), cfg());
        let mut srv = RmiEndpoint::new(ao(2), t(0), cfg());
        client.on_stub_deserialized(t(0), ao(2));
        srv.on_message(
            t(0),
            &RmiMessage::Dirty {
                holder: ao(1),
                lease: Dur::from_secs(60),
            },
        );
        // At t=30 the client renews; deliver to server.
        for a in client.on_tick(t(30), false) {
            if let RmiAction::Send { message, .. } = a {
                srv.on_message(t(30), &message);
            }
        }
        // At t=70 the original lease would be stale, but the renewal holds.
        assert!(srv.on_tick(t(70), true).is_empty());
        assert_eq!(srv.lease_holders(), 1);
    }

    #[test]
    fn cycle_leaks_forever() {
        // a ⇄ b, both idle: leases renew forever, nobody terminates.
        let mut a = RmiEndpoint::new(ao(1), t(0), cfg());
        let mut b = RmiEndpoint::new(ao(2), t(0), cfg());
        let mut pending: Vec<(AoId, RmiMessage)> = Vec::new();
        for act in a.on_stub_deserialized(t(0), ao(2)) {
            if let RmiAction::Send { to, message } = act {
                pending.push((to, message));
            }
        }
        for act in b.on_stub_deserialized(t(0), ao(1)) {
            if let RmiAction::Send { to, message } = act {
                pending.push((to, message));
            }
        }
        for secs in 0..2000 {
            let now = t(secs);
            for (to, m) in std::mem::take(&mut pending) {
                if to == ao(1) {
                    a.on_message(now, &m);
                } else {
                    b.on_message(now, &m);
                }
            }
            for (ep, _other) in [(&mut a, ao(2)), (&mut b, ao(1))] {
                for act in ep.on_tick(now, true) {
                    match act {
                        RmiAction::Send { to, message } => pending.push((to, message)),
                        RmiAction::Terminate => panic!("RMI DGC must not collect a cycle"),
                    }
                }
            }
        }
        assert!(!a.is_dead() && !b.is_dead(), "the cycle leaks, as expected");
        assert!(a.dirty_sent() > 10, "leases kept being renewed");
    }

    #[test]
    fn send_failure_stops_renewals() {
        let mut e = RmiEndpoint::new(ao(1), t(0), cfg());
        e.on_stub_deserialized(t(0), ao(2));
        e.on_send_failure(ao(2));
        assert!(e.on_tick(t(30), false).is_empty());
        assert_eq!(e.held_refs(), 0);
    }
}
