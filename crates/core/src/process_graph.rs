//! The process graph (§4.1).
//!
//! When the no-sharing property is unavailable, the per-activity
//! reference graph cannot be built reliably; the paper falls back to the
//! coarser **graph of address spaces**: every activity of process *P* is
//! considered to reference every activity of process *Q* as soon as any
//! edge crosses from *P* to *Q* (equation (2) of the paper). The same DGC
//! algorithm then runs with one virtual endpoint per *process*, whose
//! idleness is the conjunction of its members' idleness.
//!
//! The trade-off, which `benches/process_graph_precision.rs` measures: a
//! garbage cycle spanning processes that also host live activities is
//! **not** collected in this mode.

use std::collections::{BTreeMap, BTreeSet};

use crate::id::AoId;

/// Aggregates activity-level facts into process-level DGC inputs.
///
/// `group` identifiers are the `node` field of [`AoId`]; the virtual
/// endpoint of group `g` has id `AoId::new(g, u32::MAX)` so it can never
/// collide with a real activity.
#[derive(Debug, Default)]
pub struct ProcessGraph {
    /// Members per group, with their idleness.
    members: BTreeMap<u32, BTreeMap<AoId, bool>>,
    /// Activity-level edges, kept so group edges can be recomputed.
    edges: BTreeSet<(AoId, AoId)>,
}

impl ProcessGraph {
    /// Empty aggregator.
    pub fn new() -> Self {
        ProcessGraph::default()
    }

    /// The virtual endpoint id representing group `g`.
    pub fn endpoint_id(g: u32) -> AoId {
        AoId::new(g, u32::MAX)
    }

    /// Group of an activity (its hosting process).
    pub fn group_of(id: AoId) -> u32 {
        id.node
    }

    /// Registers an activity (initially busy).
    pub fn add_member(&mut self, id: AoId) {
        self.members.entry(id.node).or_default().insert(id, false);
    }

    /// Removes an activity (terminated) together with its edges.
    pub fn remove_member(&mut self, id: AoId) {
        if let Some(g) = self.members.get_mut(&id.node) {
            g.remove(&id);
            if g.is_empty() {
                self.members.remove(&id.node);
            }
        }
        self.edges.retain(|(a, b)| *a != id && *b != id);
    }

    /// Updates an activity's idleness.
    pub fn set_idle(&mut self, id: AoId, idle: bool) {
        if let Some(g) = self.members.get_mut(&id.node) {
            if let Some(slot) = g.get_mut(&id) {
                *slot = idle;
            }
        }
    }

    /// Adds an activity-level reference edge.
    pub fn add_edge(&mut self, from: AoId, to: AoId) {
        self.edges.insert((from, to));
    }

    /// Removes an activity-level reference edge.
    pub fn remove_edge(&mut self, from: AoId, to: AoId) {
        self.edges.remove(&(from, to));
    }

    /// A process is idle iff **all** its activities are idle (an empty
    /// group is vacuously idle).
    pub fn group_idle(&self, g: u32) -> bool {
        self.members
            .get(&g)
            .map(|m| m.values().all(|i| *i))
            .unwrap_or(true)
    }

    /// Number of live activities in a group.
    pub fn group_len(&self, g: u32) -> usize {
        self.members.get(&g).map(|m| m.len()).unwrap_or(0)
    }

    /// All groups with at least one member.
    pub fn groups(&self) -> Vec<u32> {
        self.members.keys().copied().collect()
    }

    /// The current process-level edges (equation (2)): `(P, Q)` present
    /// iff some activity of `P` references some activity of `Q`, with
    /// `P ≠ Q`.
    pub fn group_edges(&self) -> BTreeSet<(u32, u32)> {
        self.edges
            .iter()
            .filter(|(a, b)| a.node != b.node)
            .map(|(a, b)| (a.node, b.node))
            .collect()
    }

    /// Members of a group, in id order.
    pub fn group_members(&self, g: u32) -> Vec<AoId> {
        self.members
            .get(&g)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ao(node: u32, idx: u32) -> AoId {
        AoId::new(node, idx)
    }

    #[test]
    fn endpoint_ids_cannot_collide_with_activities() {
        // Activity indices are allocated from 0 upward; u32::MAX is
        // reserved for the virtual endpoint.
        assert_eq!(ProcessGraph::endpoint_id(3), AoId::new(3, u32::MAX));
        assert_eq!(ProcessGraph::group_of(ao(3, 7)), 3);
    }

    #[test]
    fn group_idle_is_conjunction() {
        let mut pg = ProcessGraph::new();
        pg.add_member(ao(0, 0));
        pg.add_member(ao(0, 1));
        assert!(!pg.group_idle(0));
        pg.set_idle(ao(0, 0), true);
        assert!(!pg.group_idle(0), "one member still busy");
        pg.set_idle(ao(0, 1), true);
        assert!(pg.group_idle(0));
        pg.set_idle(ao(0, 0), false);
        assert!(!pg.group_idle(0));
    }

    #[test]
    fn group_edges_follow_equation_2() {
        let mut pg = ProcessGraph::new();
        pg.add_member(ao(0, 0));
        pg.add_member(ao(1, 0));
        pg.add_member(ao(1, 1));
        pg.add_edge(ao(0, 0), ao(1, 0));
        pg.add_edge(ao(0, 0), ao(1, 1)); // same group pair
        pg.add_edge(ao(1, 0), ao(1, 1)); // intra-process: not a group edge
        let ge = pg.group_edges();
        assert_eq!(ge.len(), 1);
        assert!(ge.contains(&(0, 1)));
    }

    #[test]
    fn removing_last_crossing_edge_removes_group_edge() {
        let mut pg = ProcessGraph::new();
        pg.add_edge(ao(0, 0), ao(1, 0));
        pg.add_edge(ao(0, 1), ao(1, 0));
        pg.remove_edge(ao(0, 0), ao(1, 0));
        assert!(
            pg.group_edges().contains(&(0, 1)),
            "second edge still crosses"
        );
        pg.remove_edge(ao(0, 1), ao(1, 0));
        assert!(pg.group_edges().is_empty());
    }

    #[test]
    fn remove_member_cleans_edges_and_groups() {
        let mut pg = ProcessGraph::new();
        pg.add_member(ao(0, 0));
        pg.add_member(ao(1, 0));
        pg.add_edge(ao(0, 0), ao(1, 0));
        pg.remove_member(ao(0, 0));
        assert!(pg.group_edges().is_empty());
        assert_eq!(pg.group_len(0), 0);
        assert!(pg.group_idle(0), "empty group is vacuously idle");
        assert_eq!(pg.groups(), vec![1]);
    }

    #[test]
    fn group_members_are_ordered() {
        let mut pg = ProcessGraph::new();
        pg.add_member(ao(0, 2));
        pg.add_member(ao(0, 0));
        pg.add_member(ao(0, 1));
        assert_eq!(pg.group_members(0), vec![ao(0, 0), ao(0, 1), ao(0, 2)]);
    }
}
