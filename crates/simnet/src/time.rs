//! Virtual time for the discrete-event simulator.
//!
//! Simulated time is a monotonically non-decreasing count of nanoseconds
//! since the start of the simulation. Using integral nanoseconds keeps the
//! simulator deterministic across platforms (no floating-point drift) while
//! still resolving sub-millisecond network latencies.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time expressed in (truncated) whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Time expressed in fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as an "infinite" sentinel
    /// (e.g. to disable a timeout).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds (rounds to nanoseconds).
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "duration must be finite and non-negative"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole (truncated) seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiplication by an integer factor.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Integer division by a non-zero factor.
    pub const fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }

    /// Saturating addition.
    pub const fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulated time overflow: event scheduled past u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracting a later SimTime from an earlier one"),
        )
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("simulated duration overflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(1500).as_secs(), 1);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_secs(), 2);
    }

    #[test]
    fn arithmetic_works() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 10_500_000_000);
        assert_eq!((t - SimTime::from_secs(10)).as_nanos(), 500_000_000);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "subtracting a later SimTime")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn duration_helpers() {
        assert!(SimDuration::ZERO.is_zero());
        assert_eq!(
            SimDuration::from_secs(3).saturating_mul(2),
            SimDuration::from_secs(6)
        );
        assert_eq!(SimDuration::from_secs(3).div(3), SimDuration::from_secs(1));
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1250).to_string(), "1.250s");
        assert_eq!(SimDuration::from_millis(30).to_string(), "0.030s");
    }
}
