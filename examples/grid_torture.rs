//! A scaled-down §5.3 torture test with live progress output.
//!
//! Slaves exchange remote references among themselves and the master for
//! two simulated minutes, then go idle; the collector then has to tear
//! down one large tangled cyclic graph. Prints the Fig. 10-style
//! idle/collected series as it unfolds.
//!
//! Run with: `cargo run --release --example grid_torture`

use grid_dgc::activeobj::collector::CollectorKind;
use grid_dgc::dgc::config::DgcConfig;
use grid_dgc::dgc::units::Dur;
use grid_dgc::simnet::time::SimTime;
use grid_dgc::simnet::topology::Topology;
use grid_dgc::workloads::torture::{run_torture, TortureParams};

fn main() {
    // 12 processes × 10 slaves + 1 master = 121 activities, across the
    // three Grid'5000 sites (scaled).
    let mut params = TortureParams::small();
    params.slaves_per_proc = 10;
    let topology = Topology::grid5000_scaled(4);

    let collector = CollectorKind::Complete(
        DgcConfig::builder()
            .ttb(Dur::from_secs(30))
            .tta(Dur::from_secs(150))
            .max_comm(Dur::from_millis(500))
            .build(),
    );

    println!(
        "torture: {} slaves/proc on {} processes, {}s active phase, TTB 30s TTA 150s\n",
        params.slaves_per_proc,
        topology.procs(),
        params.active_duration.as_secs(),
    );

    let out = run_torture(
        &params,
        topology,
        collector,
        2024,
        SimTime::from_secs(10_000),
    );

    println!(
        "{:>8}  {:>6}  {:>9}  {:>6}",
        "time", "idle", "collected", "alive"
    );
    let mut last = (usize::MAX, usize::MAX);
    for s in &out.samples {
        if (s.idle, s.collected) == last {
            continue; // only print changes
        }
        last = (s.idle, s.collected);
        println!(
            "{:>7}s  {:>6}  {:>9}  {:>6}",
            s.at.as_secs(),
            s.idle,
            s.collected,
            s.alive
        );
        if s.alive == 0 {
            break;
        }
    }

    println!(
        "\n{} objects, quiescent at {:?}s, all collected at {:?}s, {} bytes of traffic",
        out.total_objects,
        out.quiescent_at.map(|t| t.as_secs()),
        out.all_collected_at.map(|t| t.as_secs()),
        out.total_bytes,
    );
    assert_eq!(out.violations, 0);
    assert_eq!(out.leaked, 0);
    println!("zero leaks, zero safety violations.");
}
