//! Reference-graph scenarios from the paper's figures.
//!
//! Each builder spawns inert activities on a grid and wires the exact
//! shapes the paper reasons about, so tests and benches can replay the
//! figures: the reverse-spanning-tree example (Fig. 3), oriented cycle
//! pairs (Fig. 4), referencer loss (Fig. 5), referenced loss (Fig. 6),
//! and the compound cycle with/without a live blocker (Fig. 7).

use dgc_activeobj::activity::{Behavior, Inert};
use dgc_activeobj::runtime::Grid;
use dgc_core::id::AoId;
use dgc_simnet::topology::ProcId;

/// A behavior that is permanently busy: it reschedules a timer forever.
/// Stands in for the "live object" of Fig. 7 without being a root (its
/// *busyness*, not root status, is what blocks collection).
#[derive(Debug, Default)]
pub struct Spinner;

impl Behavior for Spinner {
    fn on_start(&mut self, ctx: &mut dgc_activeobj::activity::AoCtx<'_>) {
        ctx.set_timer(dgc_simnet::time::SimDuration::from_secs(1), 0);
    }
    fn on_timer(&mut self, ctx: &mut dgc_activeobj::activity::AoCtx<'_>, _token: u64) {
        // Compute past the next timer fire so a pending event always
        // exists before the activity could go idle: without the overlap
        // there is a window each period in which the DGC (correctly)
        // observes the spinner idle, which is not what a "live blocker"
        // scenario wants to model.
        ctx.compute(dgc_simnet::time::SimDuration::from_millis(1100));
        ctx.set_timer(dgc_simnet::time::SimDuration::from_secs(1), 0);
    }
}

/// Spawns `n` inert activities spread round-robin over `procs` processes.
pub fn spawn_inert(grid: &mut Grid, n: usize, procs: u32) -> Vec<AoId> {
    (0..n)
        .map(|i| grid.spawn(ProcId(i as u32 % procs), Box::new(Inert)))
        .collect()
}

/// A directed ring `v0 → v1 → … → v(n-1) → v0` (the minimal garbage
/// cycle of height ~n).
pub fn ring(grid: &mut Grid, n: usize, procs: u32) -> Vec<AoId> {
    let ids = spawn_inert(grid, n, procs);
    for i in 0..n {
        grid.make_ref(ids[i], ids[(i + 1) % n]);
    }
    ids
}

/// A complete digraph on `n` activities (the NAS reference shape, §5.2).
pub fn clique(grid: &mut Grid, n: usize, procs: u32) -> Vec<AoId> {
    let ids = spawn_inert(grid, n, procs);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                grid.make_ref(ids[i], ids[j]);
            }
        }
    }
    ids
}

/// A chain `v0 → v1 → … → v(n-1)` (acyclic garbage ladder).
pub fn chain(grid: &mut Grid, n: usize, procs: u32) -> Vec<AoId> {
    let ids = spawn_inert(grid, n, procs);
    for w in ids.windows(2) {
        grid.make_ref(w[0], w[1]);
    }
    ids
}

/// Fig. 3's reference graph: the originator `A` referenced (directly or
/// transitively) by five activities with cross edges. Returns
/// `[a, b, c, d, e, f]` where the edges are
/// `b→a, c→a, d→b, e→c, f→e, c→d, a→f` (a strongly connected blob whose
/// reverse spanning tree the consensus explores).
pub fn fig3(grid: &mut Grid, procs: u32) -> Vec<AoId> {
    let ids = spawn_inert(grid, 6, procs);
    let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
    for (x, y) in [(b, a), (c, a), (d, b), (e, c), (f, e), (c, d), (a, f)] {
        grid.make_ref(x, y);
    }
    ids
}

/// Fig. 4: two 2-cycles `C1 = {a1, a2}` and `C2 = {b1, b2}` with an
/// oriented edge `C1 → C2`. Returns `(c1, c2)`.
///
/// Because references are oriented, a busy `C2` must **not** prevent the
/// idle `C1` from being collected — and clocks never travel backwards in
/// responses, so a busy `C1` keeps feeding clocks into `C2` without `C2`
/// feeding any back.
pub fn fig4(grid: &mut Grid, procs: u32) -> (Vec<AoId>, Vec<AoId>) {
    let c1 = spawn_inert(grid, 2, procs);
    let c2 = spawn_inert(grid, 2, procs);
    grid.make_ref(c1[0], c1[1]);
    grid.make_ref(c1[1], c1[0]);
    grid.make_ref(c2[0], c2[1]);
    grid.make_ref(c2[1], c2[0]);
    grid.make_ref(c1[0], c2[0]);
    (c1, c2)
}

/// Fig. 5: an external referencer `a` pointing into a 2-cycle `{b, c}`.
/// Returns `(a, [b, c])`. When `a` dies (acyclically), `b` must detect
/// the loss of a referencer and take ownership of a fresh clock,
/// otherwise the cycle would wait forever on a clock owned by nobody.
pub fn fig5(grid: &mut Grid, procs: u32) -> (AoId, Vec<AoId>) {
    let ids = spawn_inert(grid, 3, procs);
    let (a, b, c) = (ids[0], ids[1], ids[2]);
    grid.make_ref(a, b);
    grid.make_ref(b, c);
    grid.make_ref(c, b);
    (a, vec![b, c])
}

/// Fig. 6: a 4-cycle `a → b → c → a` with `e` inside the closure
/// (`c → e`, `e → a`) and a **busy** `d` referencing `a`. Returns
/// `(cycle = [a, b, c, e], d)`. While `d` is busy the cycle must
/// survive; removing edges mid-consensus must not break safety (the
/// "loss of a referenced" clock bump).
pub fn fig6(grid: &mut Grid, procs: u32) -> (Vec<AoId>, AoId) {
    let ids = spawn_inert(grid, 4, procs);
    let (a, b, c, e) = (ids[0], ids[1], ids[2], ids[3]);
    let d = grid.spawn(ProcId(0), Box::new(Spinner));
    grid.make_ref(a, b);
    grid.make_ref(b, c);
    grid.make_ref(c, a);
    grid.make_ref(c, e);
    grid.make_ref(e, a);
    grid.make_ref(d, a);
    (vec![a, b, c, e], d)
}

/// Fig. 7's compound cycle: two rings sharing one activity, with an
/// optional busy blocker referencing into the compound. Returns
/// `(members, blocker)`.
pub fn fig7_compound(grid: &mut Grid, procs: u32, with_blocker: bool) -> (Vec<AoId>, Option<AoId>) {
    // Ring 1: a → b → c → a;  Ring 2: c → d → e → c (c shared).
    let ids = spawn_inert(grid, 5, procs);
    let (a, b, c, d, e) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
    for (x, y) in [(a, b), (b, c), (c, a), (c, d), (d, e), (e, c)] {
        grid.make_ref(x, y);
    }
    let blocker = if with_blocker {
        let blocker = grid.spawn(ProcId(0), Box::new(Spinner));
        grid.make_ref(blocker, a);
        Some(blocker)
    } else {
        None
    };
    (ids, blocker)
}

/// A random digraph: `n` activities, each with out-degree `degree`
/// toward uniformly random distinct targets.
pub fn random_graph(grid: &mut Grid, n: usize, procs: u32, degree: usize, seed: u64) -> Vec<AoId> {
    use dgc_simnet::rng::SimRng;
    let mut rng = SimRng::from_seed(seed);
    let ids = spawn_inert(grid, n, procs);
    for i in 0..n {
        for _ in 0..degree {
            let j = rng.below(n as u64) as usize;
            if j != i {
                grid.make_ref(ids[i], ids[j]);
            }
        }
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_activeobj::collector::CollectorKind;
    use dgc_activeobj::runtime::GridConfig;
    use dgc_core::config::DgcConfig;
    use dgc_core::units::Dur;
    use dgc_simnet::time::SimDuration;
    use dgc_simnet::topology::Topology;

    fn grid() -> Grid {
        let cfg = DgcConfig::builder()
            .ttb(Dur::from_secs(30))
            .tta(Dur::from_secs(61))
            .max_comm(Dur::from_millis(500))
            .build();
        Grid::new(
            GridConfig::new(Topology::single_site(4, SimDuration::from_millis(1)))
                .collector(CollectorKind::Complete(cfg))
                .seed(11),
        )
    }

    #[test]
    fn ring_is_collected() {
        let mut g = grid();
        let ids = ring(&mut g, 6, 4);
        g.run_for(SimDuration::from_secs(900));
        assert!(ids.iter().all(|id| !g.is_alive(*id)));
        assert!(g.violations().is_empty());
    }

    #[test]
    fn chain_is_collected_head_first() {
        let mut g = grid();
        let ids = chain(&mut g, 5, 4);
        g.run_for(SimDuration::from_secs(800));
        assert!(ids.iter().all(|id| !g.is_alive(*id)));
        assert!(g.violations().is_empty());
        // The head (no referencers) must fall before the tail.
        let when = |id: AoId| {
            g.collected()
                .iter()
                .find(|c| c.ao == id)
                .expect("collected")
                .at
        };
        assert!(when(ids[0]) <= when(ids[4]));
    }

    #[test]
    fn fig3_blob_is_collected() {
        let mut g = grid();
        let ids = fig3(&mut g, 4);
        g.run_for(SimDuration::from_secs(900));
        assert!(ids.iter().all(|id| !g.is_alive(*id)));
        assert!(g.violations().is_empty());
    }

    #[test]
    fn fig4_oriented_cycles() {
        // C2's tail stays busy; C1 must still be collected.
        let mut g = grid();
        let (c1, c2) = fig4(&mut g, 4);
        // Make one member of C2 permanently busy by replacing it… easier:
        // keep C2 alive via a root referencer.
        let root = g.spawn_root(ProcId(0), Box::new(Inert));
        g.make_ref(root, c2[0]);
        g.run_for(SimDuration::from_secs(900));
        assert!(!g.is_alive(c1[0]) && !g.is_alive(c1[1]), "C1 is garbage");
        assert!(g.is_alive(c2[0]) && g.is_alive(c2[1]), "C2 is live");
        assert!(g.violations().is_empty());
    }

    #[test]
    fn fig5_referencer_loss() {
        let mut g = grid();
        let (a, cycle) = fig5(&mut g, 4);
        g.run_for(SimDuration::from_secs(1200));
        assert!(!g.is_alive(a), "a dies acyclically");
        assert!(
            cycle.iter().all(|id| !g.is_alive(*id)),
            "cycle follows via new clock"
        );
        assert!(g.violations().is_empty());
        let when = |id: AoId| {
            g.collected()
                .iter()
                .find(|c| c.ao == id)
                .expect("collected")
                .at
        };
        assert!(when(a) <= when(cycle[0]));
    }

    #[test]
    fn fig6_busy_referencer_blocks_then_releases() {
        let mut g = grid();
        let (cycle, d) = fig6(&mut g, 4);
        g.run_for(SimDuration::from_secs(600));
        assert!(
            cycle.iter().all(|id| g.is_alive(*id)),
            "d is busy: no collection"
        );
        assert!(g.violations().is_empty());
        // Drop the busy referencer's edge mid-flight: the cycle becomes
        // garbage and must be collected without wrongful early kills.
        g.drop_ref(d, cycle[0]);
        g.run_for(SimDuration::from_secs(900));
        assert!(cycle.iter().all(|id| !g.is_alive(*id)));
        assert!(g.violations().is_empty());
    }

    #[test]
    fn fig7_compound_cycle_collects_without_blocker() {
        let mut g = grid();
        let (ids, _) = fig7_compound(&mut g, 4, false);
        g.run_for(SimDuration::from_secs(900));
        assert!(ids.iter().all(|id| !g.is_alive(*id)));
        assert!(g.violations().is_empty());
    }

    #[test]
    fn fig7_blocker_prevents_collection() {
        let mut g = grid();
        let (ids, blocker) = fig7_compound(&mut g, 4, true);
        g.run_for(SimDuration::from_secs(1200));
        assert!(
            ids.iter().all(|id| g.is_alive(*id)),
            "one live object blocks all"
        );
        assert!(g.is_alive(blocker.unwrap()));
        assert!(g.violations().is_empty());
    }

    #[test]
    fn random_graph_fully_collected() {
        let mut g = grid();
        let ids = random_graph(&mut g, 30, 4, 3, 99);
        g.run_for(SimDuration::from_secs(1500));
        assert!(ids.iter().all(|id| !g.is_alive(*id)));
        assert!(g.violations().is_empty());
    }
}
