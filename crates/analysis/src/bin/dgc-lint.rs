//! CLI entry: run the full lint pass over the workspace and print
//! findings. Exits nonzero when there are unsuppressed findings, so it
//! can gate CI directly (`cargo run -p dgc-analysis --bin dgc-lint`).

fn main() {
    let report = dgc_analysis::analyze_workspace();
    println!("{report}");
    if !report.is_clean() {
        std::process::exit(1);
    }
}
