//! Findings, allow directives, and the suppression pass.
//!
//! Every finding is keyed `file:line` so it is one click away in an
//! editor. Intentional violations are silenced *in the source they
//! occur in* with an inline escape hatch:
//!
//! ```text
//! // dgc-analysis: allow(wall-clock): reconnect backoff is wall-time by design
//! ```
//!
//! A directive covers the line it ends on and the line immediately
//! after it (so it can trail the offending expression or sit on its own
//! line above). The reason is **mandatory** — an allow without one, or
//! naming an unknown rule, is itself reported (`bad-allow`) and cannot
//! be allowed away: the annotation layer stays honest.

use crate::lexer::{TokKind, Token};

/// Every rule the pass knows, in report order.
pub const RULES: &[&str] = &[
    "wall-clock",
    "unordered-iter",
    "hot-path-panic",
    "counter-completeness",
    "lock-across-send",
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`RULES`], or `bad-allow`).
    pub rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What and why.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A parsed `dgc-analysis: allow(...)` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the directive's comment ends on; it suppresses findings on
    /// this line and the next.
    pub line: u32,
    /// Rules it silences.
    pub rules: Vec<String>,
}

/// Extracts allow directives from a file's comments. Malformed or
/// reason-less directives come back as `bad-allow` findings instead.
pub fn collect_allows(path: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for tok in tokens {
        if !matches!(tok.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let Some(at) = tok.text.find("dgc-analysis") else {
            continue;
        };
        let rest = &tok.text[at + "dgc-analysis".len()..];
        match parse_directive(rest) {
            Ok(rules) => allows.push(Allow {
                line: tok.end_line,
                rules,
            }),
            Err(why) => bad.push(Finding {
                rule: "bad-allow",
                path: path.to_string(),
                line: tok.end_line,
                message: why,
            }),
        }
    }
    (allows, bad)
}

/// Parses `: allow(rule[, rule…]): reason` (the text after
/// `dgc-analysis`). The reason — any non-empty text after the closing
/// paren, optionally introduced by `:`/`-`/`—` — is required.
fn parse_directive(rest: &str) -> Result<Vec<String>, String> {
    let rest = rest.trim_start_matches(':').trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "unrecognized dgc-analysis directive (expected `dgc-analysis: allow(<rule>): <reason>`): `{}`",
            rest.trim()
        ));
    };
    let Some((list, reason)) = args.split_once(')') else {
        return Err("allow directive is missing its closing paren".to_string());
    };
    let rules: Vec<String> = list
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("allow() names no rules".to_string());
    }
    for r in &rules {
        if !RULES.contains(&r.as_str()) {
            return Err(format!(
                "allow names unknown rule `{r}` (known: {})",
                RULES.join(", ")
            ));
        }
    }
    let reason = reason.trim_start_matches([':', '-', '—', ' ']).trim();
    if reason.is_empty() {
        return Err("allow directive has no reason — every escape hatch must say why".to_string());
    }
    Ok(rules)
}

/// Drops findings covered by an allow for their rule on their line or
/// the line above.
pub fn suppress(findings: Vec<Finding>, allows: &[(String, Vec<Allow>)]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            !allows.iter().any(|(path, list)| {
                *path == f.path
                    && list.iter().any(|a| {
                        (a.line == f.line || a.line + 1 == f.line)
                            && a.rules.iter().any(|r| r == f.rule)
                    })
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn directive_roundtrip() {
        let tokens =
            lex("// dgc-analysis: allow(wall-clock): reconnect pacing is wall time\nlet t = 1;");
        let (allows, bad) = collect_allows("x.rs", &tokens);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rules, ["wall-clock"]);
        assert_eq!(allows[0].line, 1);
    }

    #[test]
    fn reasonless_allow_is_reported() {
        let (allows, bad) = collect_allows("x.rs", &lex("// dgc-analysis: allow(wall-clock)\n"));
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("no reason"), "{}", bad[0].message);
    }

    #[test]
    fn unknown_rule_is_reported() {
        let (_, bad) = collect_allows("x.rs", &lex("// dgc-analysis: allow(warp-core): why"));
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("unknown rule"));
    }

    #[test]
    fn multi_rule_allow_and_line_coverage() {
        let tokens = lex("// dgc-analysis: allow(wall-clock, hot-path-panic): both intended\nx();");
        let (allows, _) = collect_allows("x.rs", &tokens);
        let f = |rule, line| Finding {
            rule,
            path: "x.rs".into(),
            line,
            message: String::new(),
        };
        let allows = vec![("x.rs".to_string(), allows)];
        // Same line and next line suppressed; two lines down not.
        assert!(suppress(vec![f("wall-clock", 1)], &allows).is_empty());
        assert!(suppress(vec![f("hot-path-panic", 2)], &allows).is_empty());
        assert_eq!(suppress(vec![f("wall-clock", 3)], &allows).len(), 1);
        assert_eq!(suppress(vec![f("unordered-iter", 2)], &allows).len(), 1);
    }
}
