//! Real piggyback — the measured ride ratio on the paper's traffic,
//! not on synthetic payloads.
//!
//! PR 4 built the egress plane and demonstrated piggybacking against
//! opaque test bytes; this bench closes the loop the ISSUE demands:
//! the app units in the frames are the §5 workload itself (CG-style
//! bulk-synchronous rounds from `dgc_workloads::bsp`, shipped through
//! `NetNode::send_app` over a membership-enabled localhost TCP
//! cluster), and the riders are the protocol's own TTB heartbeats, DGC
//! responses and membership delta digests. The acceptance floor:
//! **≥ 20% of the non-app units sent during the workload window ride
//! an app flush** (the real figure is far higher — the workload talks
//! to every peer constantly, so nearly every background unit finds a
//! ride).
//!
//! Run: `cargo bench -p dgc-bench --bench real_piggyback`

use std::time::Duration;

use dgc_core::config::DgcConfig;
use dgc_core::egress::FlushPolicy;
use dgc_core::units::{Dur, Time};
use dgc_membership::MembershipConfig;
use dgc_rt_net::{Cluster, NetConfig, NetStatsSnapshot};
use dgc_workloads::driver::ClusterTransport;
use dgc_workloads::nas::Kernel;
use dgc_workloads::run_bsp;

const NODES: u32 = 4;
const WORKERS: u32 = 8;

fn dgc() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_millis(10))
        .tta(Dur::from_millis(80))
        .max_comm(Dur::from_millis(20))
        .build()
}

fn params() -> dgc_workloads::NasParams {
    let mut p = Kernel::Cg.class_c().scaled_down(WORKERS, 50);
    p.iterations = 60;
    p
}

/// Cross-node app units the workload ships (same-node units never
/// touch a socket): RUN fan-out + per-iteration chunk exchange + DONE
/// replies, counted from the deterministic layout (master on node 0,
/// workers round-robin).
fn app_wire_units(p: &dgc_workloads::NasParams) -> u64 {
    let node_of = |i: u32| i % NODES;
    let off_master = (0..p.workers).filter(|w| node_of(*w) != 0).count() as u64;
    let mut chunk_cross = 0u64;
    for w in 0..p.workers {
        for q in 0..p.workers {
            if w != q && node_of(w) != node_of(q) {
                chunk_cross += 1;
            }
        }
    }
    off_master + p.iterations as u64 * chunk_cross + off_master
}

fn run_workload(policy: FlushPolicy) -> (NetStatsSnapshot, NetStatsSnapshot, f64) {
    let membership = MembershipConfig::scaled(Dur::from_millis(50));
    let config = NetConfig::new(dgc()).egress(policy).membership(membership);
    let cluster = Cluster::join_local(NODES, config).expect("cluster");
    // App sends to a peer whose address has not gossiped in yet fail
    // fast, so the deployment waits for discovery — exactly what a
    // real deployment does before kicking a kernel off.
    for node in 0..NODES {
        assert!(
            cluster.wait_membership_until(node, Duration::from_secs(10), |r| {
                r.len() == NODES as usize && r.iter().all(|rec| rec.addr.is_some())
            }),
            "membership must converge before the workload starts"
        );
    }
    let mut t = ClusterTransport::new(cluster, Duration::from_millis(1));
    let before = t.cluster().total_stats();
    let outcome = run_bsp(
        &mut t,
        &params(),
        &|i| Kernel::Cg.math(i),
        Time::ZERO + Dur::from_secs(120),
    );
    let after = t.cluster().total_stats();
    t.into_cluster().shutdown();
    (before, after, outcome.checksum)
}

fn main() {
    let p = params();
    let app_wire = app_wire_units(&p);
    println!(
        "real piggyback: {} workers / {NODES} nodes, {} iterations of CG-style exchange",
        p.workers, p.iterations
    );

    // Batching on: the default app-flush policy with a linger well
    // inside TTA.
    let policy = FlushPolicy {
        flush_on_app: true,
        max_delay: Dur::from_millis(40),
        max_bytes: 64 * 1024,
        max_items: 4096,
    };
    let (before, after, checksum) = run_workload(policy);
    assert!(checksum.is_finite());
    let items = after.items_sent - before.items_sent;
    let frames = after.frames_sent - before.frames_sent;
    let piggybacked = after.piggybacked - before.piggybacked;
    assert!(
        items >= app_wire,
        "workload window must contain the workload: {items} items vs {app_wire} app units"
    );
    let non_app = items - app_wire;
    let ratio = piggybacked as f64 / non_app.max(1) as f64;

    // Baseline: the immediate policy on the same workload — every unit
    // its own frame, nothing ever rides.
    let (ib, ia, _) = run_workload(FlushPolicy::immediate());
    let imm_frames = ia.frames_sent - ib.frames_sent;
    let imm_piggy = ia.piggybacked - ib.piggybacked;

    println!(
        "  batched:   {items:>6} units in {frames:>6} frames; {piggybacked:>5} of {non_app} \
         non-app units rode app flushes ({:.1}%)",
        ratio * 100.0
    );
    println!(
        "  immediate: {:>6} units in {imm_frames:>6} frames; {imm_piggy:>5} rode",
        ia.items_sent - ib.items_sent
    );
    assert_eq!(imm_piggy, 0, "the immediate policy never piggybacks");
    assert!(
        ratio >= 0.20,
        "acceptance: >=20% of non-app units must ride real workload frames, got {:.1}%",
        ratio * 100.0
    );
    println!(
        "  acceptance floor 20% met: {:.1}% of the protocol's own units rode the paper's traffic",
        ratio * 100.0
    );
    dgc_bench::record(
        "real_piggyback",
        &[
            ("ride_ratio_pct", ratio * 100.0),
            ("units_sent", items as f64),
            ("frames_sent", frames as f64),
            ("units_piggybacked", piggybacked as f64),
            ("immediate_frames_sent", imm_frames as f64),
        ],
    );
}
