//! # dgc-activeobj — active-object middleware over the simulated grid
//!
//! The ProActive-style substrate of the reproduction (§2, §4.1 of the
//! paper): activities with request queues and transparent futures,
//! stub-based remote references obeying the **no-sharing** property, a
//! simulated local collector detecting dead stub tags, a registry, and a
//! deterministic grid runtime that drives the pluggable distributed
//! collectors (`dgc-core`'s complete DGC, `dgc-rmi`'s lease baseline, or
//! none).
//!
//! * [`activity`] — [`activity::Behavior`] (application logic),
//!   [`activity::AoCtx`] (effects), idleness rules;
//! * [`request`] — asynchronous requests, replies, futures;
//! * [`localgc`] — per-activity stub tables and sweeps (§2.2 tags);
//! * [`collector`] — the pluggable collector endpoint;
//! * [`runtime`] — [`runtime::Grid`]: the deterministic driver;
//! * [`oracle`] — ground-truth liveness (equation (1)) for safety and
//!   liveness assertions;
//! * [`process_mode`] — the §4.1 process-graph coarse-grained driver.
//!
//! ## Example
//!
//! ```
//! use dgc_activeobj::activity::Inert;
//! use dgc_activeobj::collector::CollectorKind;
//! use dgc_activeobj::runtime::{Grid, GridConfig};
//! use dgc_core::config::DgcConfig;
//! use dgc_core::units::Dur;
//! use dgc_simnet::time::SimDuration;
//! use dgc_simnet::topology::{ProcId, Topology};
//!
//! let cfg = DgcConfig::builder()
//!     .ttb(Dur::from_secs(30))
//!     .tta(Dur::from_secs(61))
//!     .build();
//! let topo = Topology::single_site(2, SimDuration::from_millis(1));
//! let mut grid = Grid::new(GridConfig::new(topo).collector(CollectorKind::Complete(cfg)));
//! let a = grid.spawn(ProcId(0), Box::new(Inert));
//! let b = grid.spawn(ProcId(1), Box::new(Inert));
//! grid.make_ref(a, b);
//! grid.make_ref(b, a); // an idle distributed cycle: garbage
//! grid.run_for(SimDuration::from_secs(600));
//! assert_eq!(grid.alive_count(), 0);
//! assert!(grid.violations().is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activity;
pub mod collector;
pub mod localgc;
pub mod oracle;
pub mod process_mode;
pub mod request;
pub mod runtime;

pub use activity::{Activity, AoCtx, Behavior, Inert, SpawnAlloc};
pub use collector::{Collector, CollectorKind};
pub use dgc_plane::{AuthKey, Pipeline, TenantCounters, TenantId};
pub use oracle::{garbage_set, live_set, InflightMessage, SafetyViolation, Snapshot};
pub use request::{FutureId, Reply, Request};
pub use runtime::{AppDelivered, CollectedRecord, Grid, GridConfig, Sample};
