//! Multi-node test/demo driver: a whole DGC deployment on localhost.
//!
//! Spawns N [`NetNode`]s on ephemeral `127.0.0.1` ports and exposes the
//! same driver surface as `dgc_rt_thread::ThreadGrid` — create
//! activities, flip idleness, wire reference edges, watch terminations
//! — except every DGC message and response now crosses a real TCP
//! socket in a length-prefixed batched frame.
//!
//! Two topologies:
//!
//! * [`Cluster::listen_local`] — **static registration**: every node is
//!   handed every other node's address up front (the pre-membership
//!   wiring, kept for focused transport tests);
//! * [`Cluster::join_local`] / [`Cluster::join_local_seeded`] — **seed
//!   bootstrap**: only the seed nodes' addresses are known (node 0, or
//!   nodes `0..seeds`); every other node joins through them — retrying
//!   across all of them — and discovers the rest via `dgc-membership`
//!   gossip. With several seeds a crashed or restarted seed no longer
//!   strands rejoins: dialers fall through to the surviving seeds, and
//!   a restarted seed's fresh address replaces its stale entry. Join
//!   clusters support *churn*: [`Cluster::crash_node`] /
//!   [`Cluster::restart_node`] kill and resurrect whole nodes (fresh
//!   incarnation, fresh port, fresh activity-id range), and
//!   [`Cluster::schedule_churn`] scripts them from a [`FaultProfile`]'s
//!   `NodeCrash` primitives.
//!
//! Clean shutdown is **graceful**: dropping a membership cluster (or
//! calling [`Cluster::leave_node`] on one node) drives the engine's
//! `leave()` first, so peers learn the departure from a `Left` verdict
//! instead of a suspicion timeout.

use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use std::time::{Duration, Instant};

use dgc_core::faults::FaultProfile;
use dgc_core::id::AoId;
use dgc_membership::{MembershipEvent, NodeRecord};

use crate::chaos::{ChaosProxy, ChaosStatsSnapshot};
use crate::config::NetConfig;
use crate::node::{Event, NetNode, Terminated};
use crate::stats::NetStatsSnapshot;

/// One node position: the running node (if up) plus the bookkeeping a
/// restart needs.
struct Slot {
    node: Option<NetNode>,
    /// First activity index a restarted node may allocate (crash-era
    /// ids are never reused).
    next_first_index: u32,
    /// Highest incarnation this position has lived.
    incarnation: u64,
}

type SharedSlot = Arc<Mutex<Slot>>;

/// The seed directory: node id → current listen address, shared with
/// churn timers so a restarted seed can refresh its entry (the old
/// ephemeral port died with the old process).
type SeedMap = Arc<Mutex<Vec<(u32, SocketAddr)>>>;

fn lock(slot: &SharedSlot) -> parking_lot::MutexGuard<'_, Slot> {
    slot.lock()
}

/// Current seed addresses to bootstrap `joiner` through (its own entry
/// excluded: dialing yourself is not a bootstrap).
fn seed_addrs_for(seeds: &SeedMap, joiner: u32) -> Vec<SocketAddr> {
    seeds
        .lock()
        .iter()
        .filter(|(id, _)| *id != joiner)
        .map(|(_, addr)| *addr)
        .collect()
}

/// Kills the node in `slot` (if any): collector terminations it
/// recorded are preserved in `graveyard`, its id allocation high-water
/// mark is kept for the restart, and the node is shut down.
fn crash_slot(slot: &SharedSlot, graveyard: &Mutex<Vec<Terminated>>) {
    let mut s = lock(slot);
    if let Some(node) = s.node.take() {
        s.next_first_index = node.allocated();
        graveyard.lock().extend(node.terminated());
        node.shutdown();
    }
}

/// Restarts the node in `slot` under `incarnation`, rejoining through
/// `seeds`. The `closed` flag is re-checked **under the slot lock**:
/// `Cluster::drop` sets it before it locks any slot, so either this
/// restart observes it and aborts, or it finishes inserting the node
/// while still holding the lock and the teardown (blocked on that same
/// lock) takes the fresh node down like any other — a scheduled
/// restart can never resurrect a node after teardown unseen.
fn restart_slot(
    slot: &SharedSlot,
    config: NetConfig,
    seeds: &SeedMap,
    node_id: u32,
    incarnation: u64,
    closed: &AtomicBool,
) -> std::io::Result<()> {
    let mut s = lock(slot);
    if closed.load(Ordering::SeqCst) {
        return Ok(()); // cluster is gone; stay down
    }
    assert!(s.node.is_none(), "restart of a node that is up");
    assert!(
        incarnation > s.incarnation,
        "rejoin incarnation must exceed every earlier life"
    );
    let node = NetNode::bind_rejoin(node_id, config, incarnation, s.next_first_index)?;
    // dgc-analysis: allow(lock-across-send): the restart path serializes the slot on purpose; join is the fresh node's membership join
    node.join(&seed_addrs_for(seeds, node_id));
    // A restarted *seed* listens on a fresh port: refresh its entry so
    // later rejoins dial the live incarnation, not the corpse.
    let addr = node.addr();
    for entry in seeds.lock().iter_mut() {
        if entry.0 == node_id {
            entry.1 = addr;
        }
    }
    s.incarnation = incarnation;
    s.node = Some(node);
    Ok(())
}

/// A running localhost cluster of DGC nodes.
pub struct Cluster {
    slots: Vec<SharedSlot>,
    /// Collector terminations recorded by nodes that later crashed.
    graveyard: Arc<Mutex<Vec<Terminated>>>,
    /// Seed directory used by (re)joins; empty for static clusters.
    seeds: SeedMap,
    config: NetConfig,
    proxies: Vec<ChaosProxy>,
    /// Tells scheduled churn/pause timers the cluster is gone.
    closed: Arc<AtomicBool>,
    /// Scenario clock origin, when the cluster was built with chaos.
    epoch: Instant,
}

impl Cluster {
    fn from_nodes(nodes: Vec<NetNode>, config: NetConfig, epoch: Instant) -> Cluster {
        Cluster {
            slots: nodes
                .into_iter()
                .map(|node| {
                    Arc::new(Mutex::new(Slot {
                        incarnation: node.incarnation(),
                        next_first_index: 0,
                        node: Some(node),
                    }))
                })
                .collect(),
            graveyard: Arc::new(Mutex::new(Vec::new())),
            seeds: Arc::new(Mutex::new(Vec::new())),
            config,
            proxies: Vec::new(),
            closed: Arc::new(AtomicBool::new(false)),
            epoch,
        }
    }

    /// Starts `n` nodes, each with `config`, fully peered by **static
    /// registration** (every address wired up front).
    pub fn listen_local(n: u32, config: NetConfig) -> std::io::Result<Cluster> {
        let mut nodes = Vec::with_capacity(n as usize);
        for id in 0..n {
            nodes.push(NetNode::bind(id, config)?);
        }
        let addrs: Vec<(u32, SocketAddr)> =
            nodes.iter().map(|nd| (nd.node_id(), nd.addr())).collect();
        for node in &nodes {
            for (id, addr) in &addrs {
                if *id != node.node_id() {
                    node.add_peer(*id, *addr);
                }
            }
        }
        // dgc-analysis: allow(wall-clock): harness deadlines pace real sockets in wall time
        Ok(Cluster::from_nodes(nodes, config, Instant::now()))
    }

    /// Starts `n` nodes that discover each other through **seed
    /// bootstrap** with node 0 as the only seed. Shorthand for
    /// [`Cluster::join_local_seeded`]`(n, 1, config)`.
    pub fn join_local(n: u32, config: NetConfig) -> std::io::Result<Cluster> {
        Cluster::join_local_seeded(n, 1, config)
    }

    /// Starts `n` nodes that discover each other through **multi-seed
    /// bootstrap**: nodes `0..seeds` are all seeds; every node is
    /// handed every *other* seed's address and must join, gossip, and
    /// converge. Joins and rejoins retry across all seeds, so one
    /// crashed (or mid-restart) seed no longer strands them — the
    /// ROADMAP's restarted-seed gap. Requires (and asserts)
    /// `config.membership`.
    pub fn join_local_seeded(n: u32, seeds: u32, config: NetConfig) -> std::io::Result<Cluster> {
        assert!(
            config.membership.is_some(),
            "Cluster::join_local_seeded needs NetConfig::membership"
        );
        assert!(n >= 1, "a cluster needs at least one seed");
        assert!(
            (1..=n).contains(&seeds),
            "seed count must be between 1 and the cluster size"
        );
        let mut nodes = Vec::with_capacity(n as usize);
        for id in 0..n {
            nodes.push(NetNode::bind(id, config)?);
        }
        let seed_map: Vec<(u32, SocketAddr)> = nodes[..seeds as usize]
            .iter()
            .map(|nd| (nd.node_id(), nd.addr()))
            .collect();
        for node in &nodes {
            let contacts: Vec<SocketAddr> = seed_map
                .iter()
                .filter(|(id, _)| *id != node.node_id())
                .map(|(_, addr)| *addr)
                .collect();
            if !contacts.is_empty() {
                node.join(&contacts);
            }
        }
        // dgc-analysis: allow(wall-clock): harness deadlines pace real sockets in wall time
        let mut cluster = Cluster::from_nodes(nodes, config, Instant::now());
        cluster.seeds = Arc::new(Mutex::new(seed_map));
        Ok(cluster)
    }

    /// [`Cluster::join_local`] plus the profile's **churn and pauses**
    /// scheduled against the scenario clock (which starts when this
    /// returns): every [`dgc_core::faults::NodeCrash`] kills its node
    /// at `down.start` and — when a rejoin incarnation is given —
    /// restarts it at `down.end` through the seed, and every node pause
    /// stalls the event loop like `listen_local_chaos` does. Link
    /// disruptions need the chaos-proxy topology and are rejected.
    pub fn join_local_churn(
        n: u32,
        config: NetConfig,
        profile: &FaultProfile,
    ) -> std::io::Result<Cluster> {
        assert!(
            profile.link_disruptions().is_empty(),
            "link disruptions need Cluster::listen_local_chaos (proxied links)"
        );
        let cluster = Cluster::join_local(n, config)?;
        cluster.schedule_pauses(profile);
        cluster.schedule_churn(profile);
        Ok(cluster)
    }

    /// Starts `n` nodes fully peered **through chaos proxies**: every
    /// directed pair's traffic crosses a [`ChaosProxy`] replaying
    /// `profile`, and the profile's node pauses are scheduled against
    /// the node event loops. The scenario clock (the profile's
    /// [`dgc_core::units::Time`] axis) starts when this returns.
    /// Crash-restarts need a join topology (proxies pin addresses):
    /// use [`Cluster::join_local_churn`].
    pub fn listen_local_chaos(
        n: u32,
        config: NetConfig,
        profile: FaultProfile,
    ) -> std::io::Result<Cluster> {
        assert!(
            profile.node_crashes().is_empty(),
            "crash-restarts need Cluster::join_local_churn (gossiped addresses)"
        );
        let mut nodes = Vec::with_capacity(n as usize);
        for id in 0..n {
            nodes.push(NetNode::bind(id, config)?);
        }
        // dgc-analysis: allow(wall-clock): harness deadlines pace real sockets in wall time
        let epoch = Instant::now();
        let profile = Arc::new(profile);
        let mut proxies = Vec::with_capacity((n as usize) * (n as usize).saturating_sub(1));
        for node in &nodes {
            for peer in &nodes {
                if node.node_id() == peer.node_id() {
                    continue;
                }
                let proxy = ChaosProxy::spawn(
                    node.node_id(),
                    peer.node_id(),
                    peer.addr(),
                    Arc::clone(&profile),
                    epoch,
                )?;
                node.add_peer(peer.node_id(), proxy.addr());
                proxies.push(proxy);
            }
        }
        let mut cluster = Cluster::from_nodes(nodes, config, epoch);
        cluster.proxies = proxies;
        cluster.schedule_pauses(&profile);
        Ok(cluster)
    }

    /// Schedules the profile's stop-the-world pauses: one detached
    /// timer thread per pause window sends the pause into the node's
    /// event loop at the window start. A cluster that shuts down
    /// earlier just leaves the send to fail against a closed loop.
    fn schedule_pauses(&self, profile: &FaultProfile) {
        let epoch = self.epoch;
        for pause in profile.node_pauses() {
            let Some(tx) = self.with_node(pause.node, |nd| nd.event_sender()) else {
                continue;
            };
            let start = Duration::from_nanos(pause.window.start.as_nanos());
            // Absolute deadline on the scenario clock: overlapping
            // windows extend one stall to the latest end (the
            // covering-union `FaultPlan`/`pause_end` realizes) rather
            // than sleeping their widths back to back.
            let until = epoch + Duration::from_nanos(pause.window.end.as_nanos());
            let _ = std::thread::Builder::new()
                .name(format!("dgc-chaos-pause-{}", pause.node))
                .spawn(move || {
                    std::thread::sleep(start.saturating_sub(epoch.elapsed()));
                    let _ = tx.send(Event::Pause { until });
                });
        }
    }

    /// Schedules the profile's `NodeCrash`es: one detached timer thread
    /// per crash kills the node at `down.start` and, for rejoining
    /// crashes, restarts it at `down.end` under the scripted
    /// incarnation via the surviving seeds. Individual seeds may crash
    /// and rejoin (the other seeds bootstrap them, and their fresh
    /// address replaces the stale entry) — only a profile that crashes
    /// *every* seed is rejected, since nothing could bootstrap any
    /// rejoin then.
    pub fn schedule_churn(&self, profile: &FaultProfile) {
        let seed_ids: BTreeSet<u32> = self.seeds.lock().iter().map(|(id, _)| *id).collect();
        assert!(
            !seed_ids.is_empty(),
            "churn needs a join cluster (Cluster::join_local)"
        );
        if profile
            .node_crashes()
            .iter()
            .any(|c| c.rejoin_incarnation.is_some())
        {
            let crashed: BTreeSet<u32> = profile.node_crashes().iter().map(|c| c.node).collect();
            assert!(
                seed_ids.iter().any(|s| !crashed.contains(s)),
                "crashing every seed strands every rejoin"
            );
        }
        let epoch = self.epoch;
        for crash in profile.node_crashes() {
            let slot = Arc::clone(&self.slots[crash.node as usize]);
            let graveyard = Arc::clone(&self.graveyard);
            let closed = Arc::clone(&self.closed);
            let seeds = Arc::clone(&self.seeds);
            let config = self.config;
            let crash = *crash;
            let _ = std::thread::Builder::new()
                .name(format!("dgc-churn-{}", crash.node))
                .spawn(move || {
                    let sleep_until = |deadline: Duration| {
                        while epoch.elapsed() < deadline {
                            if closed.load(Ordering::SeqCst) {
                                return false;
                            }
                            let left = deadline.saturating_sub(epoch.elapsed());
                            std::thread::sleep(left.min(Duration::from_millis(20)));
                        }
                        !closed.load(Ordering::SeqCst)
                    };
                    if !sleep_until(Duration::from_nanos(crash.down.start.as_nanos())) {
                        return;
                    }
                    crash_slot(&slot, &graveyard);
                    let Some(incarnation) = crash.rejoin_incarnation else {
                        return;
                    };
                    if !sleep_until(Duration::from_nanos(crash.down.end.as_nanos())) {
                        return;
                    }
                    let _ = restart_slot(&slot, config, &seeds, crash.node, incarnation, &closed);
                });
        }
    }

    /// Kills `node` right now: its activities die with it (they are
    /// *not* recorded as collector terminations), its links go dark,
    /// and the survivors' membership layer gets to notice.
    pub fn crash_node(&self, node: u32) {
        crash_slot(&self.slots[node as usize], &self.graveyard);
    }

    /// Restarts a crashed `node` under `incarnation` (must exceed every
    /// earlier life), rejoining through the surviving seeds. Join
    /// clusters only.
    pub fn restart_node(&self, node: u32, incarnation: u64) -> std::io::Result<()> {
        assert!(
            !self.seeds.lock().is_empty(),
            "restart needs a join cluster (Cluster::join_local)"
        );
        restart_slot(
            &self.slots[node as usize],
            self.config,
            &self.seeds,
            node,
            incarnation,
            &self.closed,
        )
    }

    /// Graceful departure of one node — the clean-shutdown path: the
    /// node announces [`dgc_membership::NodeStatus::Left`], flushes the
    /// farewell digests, and only then goes down (its collector
    /// terminations are preserved like a crash's). Peers learn the
    /// departure from the `Left` verdict immediately instead of waiting
    /// out the suspicion timeout.
    pub fn leave_node(&self, node: u32) {
        self.with_node(node, |nd| nd.leave());
        crash_slot(&self.slots[node as usize], &self.graveyard);
    }

    /// True while `node` is crashed.
    pub fn is_down(&self, node: u32) -> bool {
        lock(&self.slots[node as usize]).node.is_none()
    }

    /// Runs `f` against `node` if it is up.
    fn with_node<R>(&self, node: u32, f: impl FnOnce(&NetNode) -> R) -> Option<R> {
        lock(&self.slots[node as usize]).node.as_ref().map(f)
    }

    /// Runs `f` against `node`, panicking while it is down (driver
    /// scripts must not address crashed nodes).
    fn with_live<R>(&self, node: u32, f: impl FnOnce(&NetNode) -> R) -> R {
        self.with_node(node, f)
            .unwrap_or_else(|| panic!("node {node} is down"))
    }

    /// The scenario clock origin (chaos clusters: when proxies started).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The current seed addresses of a join cluster (empty for static
    /// ones); a restarted seed appears under its fresh address.
    pub fn seed_addrs(&self) -> Vec<SocketAddr> {
        self.seeds.lock().iter().map(|(_, addr)| *addr).collect()
    }

    /// Aggregated chaos-proxy counters (all zero for a plain cluster).
    pub fn chaos_stats(&self) -> ChaosStatsSnapshot {
        let mut total = ChaosStatsSnapshot::default();
        for p in &self.proxies {
            let s = p.stats();
            total.forwarded += s.forwarded;
            total.dropped += s.dropped;
            total.delayed += s.delayed;
            total.reordered += s.reordered;
            total.severed += s.severed;
            total.corrupted += s.corrupted;
        }
        total
    }

    /// Stops this node's world for `d` (see [`NetNode::pause_for`]).
    pub fn pause_node(&self, node: u32, d: Duration) {
        self.with_live(node, |nd| nd.pause_for(d));
    }

    /// Number of nodes (up or down).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The listen address of `node` (panics while it is down).
    pub fn addr(&self, node: u32) -> SocketAddr {
        self.with_live(node, |nd| nd.addr())
    }

    /// Creates an activity on `node` (initially busy); returns its id.
    pub fn add_activity(&self, node: u32) -> AoId {
        self.with_live(node, |nd| nd.add_activity())
    }

    /// Declares `ao` idle or busy.
    pub fn set_idle(&self, ao: AoId, idle: bool) {
        self.with_live(ao.node, |nd| nd.set_idle(ao, idle));
    }

    /// Adds the reference edge `from → to` (any pair of nodes).
    pub fn add_ref(&self, from: AoId, to: AoId) {
        self.with_live(from.node, |nd| nd.add_ref(from, to));
    }

    /// Drops the reference edge `from → to`.
    pub fn drop_ref(&self, from: AoId, to: AoId) {
        self.with_live(from.node, |nd| nd.drop_ref(from, to));
    }

    /// Sends an opaque application unit (see [`NetNode::send_app`]):
    /// the egress flush trigger everything else piggybacks on.
    pub fn send_app(&self, from: AoId, to: AoId, reply: bool, payload: Vec<u8>) {
        self.with_live(from.node, |nd| nd.send_app(from, to, reply, payload));
    }

    /// Application units delivered to `node` so far, in arrival order
    /// (empty while a handler is registered — see
    /// [`Cluster::set_app_handler`]).
    pub fn app_received(&self, node: u32) -> Vec<crate::node::AppReceived> {
        self.with_node(node, |nd| nd.app_received())
            .unwrap_or_default()
    }

    /// Registers `node`'s application dispatch hook (see
    /// [`NetNode::set_app_handler`]): delivered app units run through
    /// the handler on the node's event loop instead of accumulating in
    /// the inbox, and any sends it returns are routed immediately.
    pub fn set_app_handler(
        &self,
        node: u32,
        f: impl FnMut(&crate::node::AppReceived) -> Vec<crate::node::AppSend> + Send + 'static,
    ) {
        self.with_live(node, |nd| nd.set_app_handler(f));
    }

    /// Outgoing application units `node` accepted but could not deliver
    /// (see [`NetNode::app_send_failures`]).
    pub fn app_send_failures(&self, node: u32) -> Vec<crate::node::AppReceived> {
        self.with_node(node, |nd| nd.app_send_failures())
            .unwrap_or_default()
    }

    /// Installs `node`'s envelope middleware pipeline (see
    /// [`NetNode::set_pipeline`]).
    pub fn set_pipeline(&self, node: u32, pipeline: dgc_plane::Pipeline) {
        self.with_live(node, |nd| nd.set_pipeline(pipeline));
    }

    /// Assigns `ao` to `tenant` on **every live node**: tenancy is a
    /// cluster-wide namespace, and the isolation stages consult each
    /// node's local map for both ends of an envelope — so the
    /// assignment must be visible everywhere, not just on `ao`'s host.
    pub fn set_tenant(&self, ao: AoId, tenant: dgc_plane::TenantId) {
        for node in 0..self.slots.len() as u32 {
            self.with_node(node, |nd| nd.register_tenant(ao, tenant));
        }
    }

    /// `node`'s per-tenant app-plane ledger (see
    /// [`NetNode::tenant_snapshot`]); `None` while the node is down or
    /// its event loop did not answer.
    pub fn tenant_snapshot(
        &self,
        node: u32,
    ) -> Option<Vec<(dgc_plane::TenantId, dgc_plane::TenantCounters)>> {
        self.with_node(node, |nd| nd.tenant_snapshot()).flatten()
    }

    /// `node`'s egress-plane occupancy (see [`NetNode::egress_pending`]);
    /// `None` while the node is down or its event loop did not answer.
    pub fn egress_pending(&self, node: u32) -> Option<crate::node::EgressPending> {
        self.with_node(node, |nd| nd.egress_pending()).flatten()
    }

    /// `node`'s lifetime egress counters (see [`NetNode::egress_stats`]);
    /// `None` while the node is down or its event loop did not answer.
    pub fn egress_stats(&self, node: u32) -> Option<dgc_core::egress::EgressStats> {
        self.with_node(node, |nd| nd.egress_stats()).flatten()
    }

    /// All collector terminations recorded so far, across nodes —
    /// including those a since-crashed node recorded before it died.
    /// (Activities killed *by* a crash never appear here: a crash is
    /// the environment's kill, not a collection.)
    pub fn terminated(&self) -> Vec<Terminated> {
        let mut all: Vec<Terminated> = self.graveyard.lock().clone();
        for node in 0..self.slots.len() as u32 {
            if let Some(mut t) = self.with_node(node, |nd| nd.terminated()) {
                all.append(&mut t);
            }
        }
        all.sort_by_key(|t| t.ao);
        all
    }

    /// True if `ao` has terminated (by collection, not by crash).
    pub fn is_terminated(&self, ao: AoId) -> bool {
        self.terminated().iter().any(|t| t.ao == ao)
    }

    /// Blocks until `predicate` holds over the merged termination log or
    /// the deadline passes; returns whether it held.
    pub fn wait_until(
        &self,
        deadline: Duration,
        predicate: impl Fn(&[Terminated]) -> bool,
    ) -> bool {
        crate::node::poll_until(deadline, || predicate(&self.terminated()))
    }

    /// Blocks until `predicate` holds over the per-node transport
    /// counters or the deadline passes; returns whether it held. The
    /// polling twin of [`Cluster::wait_until`] for tests that assert on
    /// traffic instead of terminations — no fixed sleeps required.
    pub fn wait_stats_until(
        &self,
        deadline: Duration,
        predicate: impl Fn(&[NetStatsSnapshot]) -> bool,
    ) -> bool {
        crate::node::poll_until(deadline, || predicate(&self.stats()))
    }

    /// Per-node transport counters (zeroed placeholders for down nodes).
    pub fn stats(&self) -> Vec<NetStatsSnapshot> {
        (0..self.slots.len() as u32)
            .map(|n| self.with_node(n, |nd| nd.stats()).unwrap_or_default())
            .collect()
    }

    /// Transport counters summed over all nodes.
    pub fn total_stats(&self) -> NetStatsSnapshot {
        let mut total = NetStatsSnapshot::default();
        for s in self.stats() {
            // An exhaustive fold (`merge` destructures the snapshot),
            // so a newly added counter can never be silently dropped
            // from the cluster total — the PR 5 `piggybacked` bug class.
            total.merge(&s);
        }
        total
    }

    /// `node`'s telemetry-plane registry (`None` while it is down).
    /// The handle stays valid after the node crashes — counters merely
    /// stop moving — but a restarted node gets a fresh registry.
    pub fn obs(&self, node: u32) -> Option<dgc_obs::Registry> {
        self.with_node(node, |nd| nd.obs().clone())
    }

    /// One fleet-wide metric snapshot: every live node's registry
    /// merged, with the chaos proxies' counters folded in under
    /// `chaos.*` so the whole deployment reads as one tree.
    pub fn obs_merged(&self) -> dgc_obs::Snapshot {
        let mut snap = dgc_obs::Snapshot::default();
        for node in 0..self.slots.len() as u32 {
            if let Some(s) = self.with_node(node, |nd| nd.obs().snapshot()) {
                snap = snap.merge(&s);
            }
        }
        let chaos = self.chaos_stats();
        if chaos != ChaosStatsSnapshot::default() {
            for (name, v) in [
                ("chaos.forwarded", chaos.forwarded),
                ("chaos.dropped", chaos.dropped),
                ("chaos.delayed", chaos.delayed),
                ("chaos.reordered", chaos.reordered),
                ("chaos.severed", chaos.severed),
                ("chaos.corrupted", chaos.corrupted),
            ] {
                snap.counters.insert(name.to_string(), v);
            }
        }
        // The lock-order detector is process-wide, so its gauges enter
        // the fleet tree exactly once (summing per-node mirrors would
        // multiply one process's pressure by the node count).
        let lockcheck = parking_lot::lockcheck::stats();
        if lockcheck != parking_lot::lockcheck::LockCheckStats::default() {
            snap.gauges
                .insert("lockcheck.edges".to_string(), lockcheck.edges as i64);
            snap.gauges.insert(
                "lockcheck.max_held_ns".to_string(),
                lockcheck.max_held_ns as i64,
            );
        }
        snap
    }

    /// `node`'s membership directory snapshot (`None` while it is down
    /// or when membership is disabled).
    pub fn member_records(&self, node: u32) -> Option<Vec<NodeRecord>> {
        self.with_node(node, |nd| nd.member_records()).flatten()
    }

    /// Membership transitions `node` has observed in its current life.
    pub fn membership_events(&self, node: u32) -> Vec<MembershipEvent> {
        self.with_node(node, |nd| nd.membership_events())
            .unwrap_or_default()
    }

    /// Blocks until `predicate` holds over `node`'s directory snapshot
    /// or the deadline passes; returns whether it held.
    pub fn wait_membership_until(
        &self,
        node: u32,
        deadline: Duration,
        predicate: impl Fn(&[NodeRecord]) -> bool,
    ) -> bool {
        crate::node::poll_until(deadline, || {
            self.member_records(node).is_some_and(|r| predicate(&r))
        })
    }

    /// Stops every node and proxy and joins their threads. Safe to call
    /// (or to skip — dropping the cluster does the same work) after a
    /// failed assertion: dead links and half-closed proxies are already
    /// tolerated by every join path.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Stop scheduled churn first: a restart racing the teardown
        // would resurrect a node nobody will ever stop.
        self.closed.store(true, Ordering::SeqCst);
        // Clean shutdown is graceful: every membership node announces
        // its departure before going down, so any peer that outlives
        // this teardown (or an observer mid-test) sees `Left` verdicts,
        // not a wall of suspicions. All leaves start concurrently; the
        // acks are then collected and one shared socket grace covers
        // the lot (not a per-node sleep).
        if self.config.membership.is_some() {
            let acks: Vec<_> = self
                .slots
                .iter()
                .filter_map(|slot| lock(slot).node.as_ref().and_then(|nd| nd.leave_begin()))
                .collect();
            let mut any = false;
            for rx in acks {
                any |= rx.recv_timeout(Duration::from_secs(1)).is_ok();
            }
            if any {
                std::thread::sleep(Duration::from_millis(25));
            }
        }
        // Nodes next: their link threads are the proxies' clients, so
        // closing them lets proxy pumps drain out on EOF instead of
        // being killed mid-frame.
        for slot in &self.slots {
            if let Some(node) = lock(slot).node.take() {
                node.shutdown();
            }
        }
        for proxy in self.proxies.drain(..) {
            proxy.shutdown();
        }
    }
}
