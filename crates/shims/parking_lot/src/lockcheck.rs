//! The opt-in lock-order race detector behind [`crate::Mutex`].
//!
//! With `DGC_LOCK_CHECK=1` in a debug build (or [`force_enable`] from a
//! test), every `lock()` records which locks the calling thread already
//! holds and feeds a process-wide **lock-order graph**: an edge `A → B`
//! means some thread acquired `B` while holding `A`. Before a blocking
//! acquisition, the detector asks whether the new edge would close a
//! cycle — the classic potential-deadlock witness: two threads that ever
//! take the same pair of locks in opposite orders can interleave into a
//! deadlock even if this run got lucky. On a cycle it panics naming
//! *both* acquisition sites (the one being attempted and the held one),
//! plus the previously recorded reverse edge, so the fix is two file:line
//! jumps away. A re-entrant `lock()` of the same mutex (guaranteed
//! self-deadlock on the non-reentrant shim) is reported the same way,
//! before the thread would hang.
//!
//! The detector also meters **hold times**: every guard drop updates a
//! process-wide `max_held_ns` high-water mark, and when a budget is set
//! (`DGC_LOCK_BUDGET_MS`, or [`set_budget_ns`] from a test) a guard held
//! past it panics with its acquisition site. [`stats`] exposes the edge
//! count and the high-water mark; `dgc-obs` mirrors them as the
//! `lockcheck.edges` / `lockcheck.max_held_ns` gauges.
//!
//! The graph is *historical*, not instantaneous: edges accumulate over
//! the whole process, so an inversion is caught even when the two orders
//! happen minutes apart on threads that never contend. All internal
//! state uses `std::sync` primitives directly — the detector must not
//! instrument itself.

use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// 0 = undecided, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Hold-time budget in nanoseconds; 0 = no budget.
static BUDGET_NS: AtomicU64 = AtomicU64::new(0);

/// Process-wide high-water mark of a single guard's hold time.
static MAX_HELD_NS: AtomicU64 = AtomicU64::new(0);

/// Distinct edges currently in the lock-order graph (mirrored cheaply so
/// [`stats`] needs no graph lock).
static EDGE_COUNT: AtomicU64 = AtomicU64::new(0);

/// Monotonic id source; id 0 means "not yet assigned".
static NEXT_ID: AtomicUsize = AtomicUsize::new(1);

/// True when the detector is tracking. Reads one atomic on the hot path;
/// the env lookup happens once. Env enablement requires a debug build
/// (release hot paths never pay for tracking by accident);
/// [`force_enable`] works in any build.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = cfg!(debug_assertions)
        && std::env::var_os("DGC_LOCK_CHECK").is_some_and(|v| !v.is_empty() && v != "0");
    if on {
        if let Some(ms) = std::env::var_os("DGC_LOCK_BUDGET_MS")
            .and_then(|v| v.into_string().ok())
            .and_then(|v| v.parse::<u64>().ok())
        {
            BUDGET_NS.store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
        }
    }
    // A concurrent force_enable must not be downgraded.
    let _ = STATE.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == 2
}

/// Turns the detector on regardless of environment or build profile
/// (test hook; enablement is process-wide and sticky).
pub fn force_enable() {
    STATE.store(2, Ordering::Relaxed);
}

/// Sets the hold-time budget in nanoseconds (`None` clears it). A guard
/// held longer than the budget panics at drop with its acquisition site.
pub fn set_budget_ns(budget: Option<u64>) {
    BUDGET_NS.store(budget.unwrap_or(0), Ordering::Relaxed);
}

/// Detector counters for telemetry mirrors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockCheckStats {
    /// Distinct ordered pairs `(A, B)` observed as "acquired B while
    /// holding A" since process start.
    pub edges: u64,
    /// Longest any single guard has been held, in nanoseconds.
    pub max_held_ns: u64,
}

/// Current detector counters (all zero while disabled).
pub fn stats() -> LockCheckStats {
    LockCheckStats {
        edges: EDGE_COUNT.load(Ordering::Relaxed),
        max_held_ns: MAX_HELD_NS.load(Ordering::Relaxed),
    }
}

/// One acquisition a thread currently holds.
struct Held {
    id: usize,
    site: &'static Location<'static>,
    since: Instant,
}

thread_local! {
    static HELD: std::cell::RefCell<Vec<Held>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Where both endpoints of a recorded edge were acquired.
#[derive(Clone, Copy)]
struct EdgeSites {
    from: &'static Location<'static>,
    to: &'static Location<'static>,
}

#[derive(Default)]
struct Graph {
    /// `(held, acquired)` → sites of the first occurrence.
    edges: HashMap<(usize, usize), EdgeSites>,
    /// Adjacency: held → every lock acquired under it.
    succ: HashMap<usize, Vec<usize>>,
}

fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(Graph::default()))
}

impl Graph {
    /// Is `to` reachable from `from` along recorded edges?
    fn reaches(&self, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            for &m in self.succ.get(&n).into_iter().flatten() {
                if !seen.contains(&m) {
                    seen.push(m);
                    stack.push(m);
                }
            }
        }
        false
    }
}

/// Assigns `slot` a process-unique lock id on first use.
pub(crate) fn lock_id(slot: &AtomicUsize) -> usize {
    let id = slot.load(Ordering::Relaxed);
    if id != 0 {
        return id;
    }
    let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(winner) => winner,
    }
}

/// Called *before* a blocking acquisition: records edges from every held
/// lock and panics if one of them closes a cycle (or if `id` itself is
/// already held — a guaranteed self-deadlock).
pub(crate) fn before_blocking_acquire(id: usize, site: &'static Location<'static>) {
    HELD.with(|held| {
        let held = held.borrow();
        for h in held.iter() {
            if h.id == id {
                panic!(
                    "dgc lockcheck: re-entrant lock of mutex #{id}: \
                     blocking acquisition at {site} while the same thread already \
                     holds it (acquired at {})",
                    h.site
                );
            }
        }
        if held.is_empty() {
            return;
        }
        let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
        for h in held.iter() {
            // Would the new edge h.id → id close a cycle? Check before
            // inserting so the offending edge is named, not absorbed.
            if g.reaches(id, h.id) {
                let earlier = first_reverse_edge(&g, id, h.id).map_or_else(
                    || "an earlier recorded chain".to_string(),
                    |(ra, rb, sites)| {
                        format!(
                            "the reverse order was recorded earlier: mutex #{rb} acquired \
                             at {} while holding mutex #{ra} (acquired at {})",
                            sites.to, sites.from
                        )
                    },
                );
                panic!(
                    "dgc lockcheck: lock-order cycle: acquiring mutex #{id} at {site} \
                     while holding mutex #{held_id} (acquired at {held_site}); {earlier}",
                    held_id = h.id,
                    held_site = h.site,
                );
            }
            if g.edges
                .insert(
                    (h.id, id),
                    EdgeSites {
                        from: h.site,
                        to: site,
                    },
                )
                .is_none()
            {
                g.succ.entry(h.id).or_default().push(id);
                EDGE_COUNT.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
}

/// First edge on the recorded `from →* to` path, with its sites — the
/// concrete earlier acquisition pair the panic message cites.
fn first_reverse_edge(g: &Graph, from: usize, to: usize) -> Option<(usize, usize, EdgeSites)> {
    for &m in g.succ.get(&from).into_iter().flatten() {
        if m == to || g.reaches(m, to) {
            let sites = *g.edges.get(&(from, m))?;
            return Some((from, m, sites));
        }
    }
    None
}

/// Called after any successful acquisition (blocking or try): pushes the
/// lock onto the thread's held stack.
pub(crate) fn on_acquired(id: usize, site: &'static Location<'static>) {
    HELD.with(|held| {
        held.borrow_mut().push(Held {
            id,
            site,
            since: Instant::now(),
        });
    });
}

/// Called from guard drop: pops the lock (guards may drop out of LIFO
/// order, so pop the *latest* matching entry), updates the hold-time
/// high-water mark, and enforces the budget.
pub(crate) fn on_released(id: usize) {
    let popped = HELD.with(|held| {
        let mut held = held.borrow_mut();
        let at = held.iter().rposition(|h| h.id == id)?;
        Some(held.remove(at))
    });
    let Some(h) = popped else { return };
    let held_ns = h.since.elapsed().as_nanos() as u64;
    MAX_HELD_NS.fetch_max(held_ns, Ordering::Relaxed);
    let budget = BUDGET_NS.load(Ordering::Relaxed);
    if budget != 0 && held_ns > budget && !std::thread::panicking() {
        panic!(
            "dgc lockcheck: mutex #{id} held {held_ns} ns, over the {budget} ns budget \
             (acquired at {})",
            h.site
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mutex as ShimMutex;

    /// The lockcheck tests mutate process-wide detector state (the
    /// budget, the shared graph), so they serialize on this.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn catch(f: impl FnOnce()) -> String {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
            .expect_err("expected a lockcheck panic");
        std::panic::set_hook(prev);
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn two_lock_inversion_names_both_sites() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        force_enable();
        let a = ShimMutex::new(());
        let b = ShimMutex::new(());
        // Establish the order a → b...
        {
            let _ga = a.lock(); // line: SITE_A_FIRST
            let _gb = b.lock();
        }
        // ...then invert it. The detector must refuse before blocking.
        let msg = catch(|| {
            let _gb = b.lock();
            let _ga = a.lock(); // closes the cycle
        });
        assert!(msg.contains("lock-order cycle"), "got: {msg}");
        // Both acquisition sites of the inversion are named, and so is
        // the earlier reverse edge — four file:line sites in total, all
        // in this file.
        assert_eq!(
            msg.matches("lockcheck.rs").count(),
            4,
            "expected all four acquisition sites, got: {msg}"
        );
        assert!(msg.contains("reverse order was recorded earlier"));
    }

    #[test]
    fn reentrant_lock_is_reported_not_hung() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        force_enable();
        let m = ShimMutex::new(7);
        let msg = catch(|| {
            let _g1 = m.lock();
            let _g2 = m.lock();
        });
        assert!(msg.contains("re-entrant lock"), "got: {msg}");
        assert_eq!(msg.matches("lockcheck.rs").count(), 2, "got: {msg}");
    }

    #[test]
    fn consistent_order_accumulates_edges_without_panic() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        force_enable();
        let before = stats().edges;
        let a = ShimMutex::new(());
        let b = ShimMutex::new(());
        let c = ShimMutex::new(());
        for _ in 0..3 {
            let _ga = a.lock();
            let _gb = b.lock();
            let _gc = c.lock();
        }
        // a→b, a→c, b→c: three distinct edges, counted once each.
        assert_eq!(stats().edges - before, 3);
    }

    #[test]
    fn hold_budget_violation_names_the_acquisition_site() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        force_enable();
        set_budget_ns(Some(1_000_000)); // 1 ms
        let m = ShimMutex::new(());
        let msg = catch(|| {
            let _g = m.lock();
            std::thread::sleep(std::time::Duration::from_millis(10));
        });
        set_budget_ns(None);
        assert!(msg.contains("over the 1000000 ns budget"), "got: {msg}");
        assert!(msg.contains("lockcheck.rs"), "got: {msg}");
        assert!(stats().max_held_ns >= 10_000_000);
    }

    #[test]
    fn cross_thread_inversion_is_caught_without_contention() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        force_enable();
        let a = std::sync::Arc::new(ShimMutex::new(()));
        let b = std::sync::Arc::new(ShimMutex::new(()));
        // Thread 1 takes a → b and finishes entirely before thread 2
        // starts: no real-time overlap, so this run cannot deadlock —
        // but the schedule where both hold their first lock can, and the
        // historical graph remembers it.
        {
            let (a, b) = (std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
            std::thread::spawn(move || {
                let _ga = a.lock();
                let _gb = b.lock();
            })
            .join()
            .unwrap();
        }
        let msg = catch(|| {
            let _gb = b.lock();
            let _ga = a.lock();
        });
        assert!(msg.contains("lock-order cycle"), "got: {msg}");
    }

    #[test]
    fn guards_may_drop_out_of_order() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        force_enable();
        let a = ShimMutex::new(1);
        let b = ShimMutex::new(2);
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // non-LIFO release
        drop(gb);
        // And the stack is clean: a fresh consistent pair still works.
        let _ga = a.lock();
        let _gb = b.lock();
    }
}
