//! Binary codec for membership records and gossip digests.
//!
//! Shares [`dgc_core::wire`]'s conventions (big-endian, tag bytes,
//! self-delimiting units, [`DecodeError`]) so the socket runtime can
//! embed digests in the same length-prefixed frames that carry DGC
//! units — gossip piggybacks on traffic that was flowing anyway — and
//! so the simulator charges the same byte counts to its meters.
//!
//! Layout:
//!
//! ```text
//! digest := version(8) ack(8) flags(1) count(2) record*
//! flags  := bit0 = full sync (records are the whole directory)
//! record := node(4) incarnation(8) status(1) addr
//! addr   := 0x00                                -- none
//!         | 0x04 ip(4) port(2)                  -- IPv4
//!         | 0x06 ip(16) port(2)                 -- IPv6
//! status := 0 alive | 1 suspect | 2 left | 3 dead
//! ```
//!
//! `version`/`ack` are the delta-gossip bookkeeping (see
//! [`crate::engine::Digest`]): a steady-state heartbeat digest is the
//! 19-byte header with `count = 0`, which is the whole point.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

#[cfg(test)]
use bytes::BytesMut;
use bytes::{Buf, BufMut, Bytes};

use dgc_core::wire::DecodeError;

use crate::directory::{NodeRecord, NodeStatus};
use crate::engine::Digest;

const STATUS_ALIVE: u8 = 0;
const STATUS_SUSPECT: u8 = 1;
const STATUS_LEFT: u8 = 2;
const STATUS_DEAD: u8 = 3;

const ADDR_NONE: u8 = 0x00;
const ADDR_V4: u8 = 0x04;
const ADDR_V6: u8 = 0x06;

/// Hard cap on records per digest; anything larger is corrupt (the
/// directory of a cluster this repository can drive is orders of
/// magnitude smaller).
pub const MAX_DIGEST_RECORDS: usize = 4096;

fn status_byte(s: NodeStatus) -> u8 {
    match s {
        NodeStatus::Alive => STATUS_ALIVE,
        NodeStatus::Suspect => STATUS_SUSPECT,
        NodeStatus::Left => STATUS_LEFT,
        NodeStatus::Dead => STATUS_DEAD,
    }
}

fn status_of(b: u8) -> Result<NodeStatus, DecodeError> {
    match b {
        STATUS_ALIVE => Ok(NodeStatus::Alive),
        STATUS_SUSPECT => Ok(NodeStatus::Suspect),
        STATUS_LEFT => Ok(NodeStatus::Left),
        STATUS_DEAD => Ok(NodeStatus::Dead),
        other => Err(DecodeError::BadTag(other)),
    }
}

/// Appends one record (self-delimiting).
pub fn put_record(buf: &mut impl BufMut, rec: &NodeRecord) {
    buf.put_u32(rec.node);
    buf.put_u64(rec.incarnation);
    buf.put_u8(status_byte(rec.status));
    match rec.addr {
        None => buf.put_u8(ADDR_NONE),
        Some(SocketAddr::V4(a)) => {
            buf.put_u8(ADDR_V4);
            buf.put_slice(&a.ip().octets());
            buf.put_u16(a.port());
        }
        Some(SocketAddr::V6(a)) => {
            buf.put_u8(ADDR_V6);
            buf.put_slice(&a.ip().octets());
            buf.put_u16(a.port());
        }
    }
}

/// Reads one record from the front of `buf`.
pub fn get_record(buf: &mut Bytes) -> Result<NodeRecord, DecodeError> {
    if buf.remaining() < 4 + 8 + 1 + 1 {
        return Err(DecodeError::Truncated);
    }
    let node = buf.get_u32();
    let incarnation = buf.get_u64();
    let status = status_of(buf.get_u8())?;
    let addr = match buf.get_u8() {
        ADDR_NONE => None,
        ADDR_V4 => {
            if buf.remaining() < 4 + 2 {
                return Err(DecodeError::Truncated);
            }
            let ip = Ipv4Addr::from(buf.get_u32());
            let port = buf.get_u16();
            Some(SocketAddr::new(IpAddr::V4(ip), port))
        }
        ADDR_V6 => {
            if buf.remaining() < 16 + 2 {
                return Err(DecodeError::Truncated);
            }
            let mut octets = [0u8; 16];
            buf.copy_to_slice(&mut octets);
            let port = buf.get_u16();
            Some(SocketAddr::new(IpAddr::V6(Ipv6Addr::from(octets)), port))
        }
        other => return Err(DecodeError::BadTag(other)),
    };
    Ok(NodeRecord {
        node,
        incarnation,
        status,
        addr,
    })
}

const FLAG_FULL: u8 = 0b0000_0001;

/// Appends a whole digest (versioned header + count-prefixed records).
///
/// # Panics
///
/// Panics if the digest exceeds [`MAX_DIGEST_RECORDS`].
pub fn put_digest(buf: &mut impl BufMut, digest: &Digest) {
    assert!(
        digest.records.len() <= MAX_DIGEST_RECORDS,
        "digest of {} records exceeds MAX_DIGEST_RECORDS",
        digest.records.len()
    );
    buf.put_u64(digest.version);
    buf.put_u64(digest.ack);
    buf.put_u8(if digest.full { FLAG_FULL } else { 0 });
    buf.put_u16(digest.records.len() as u16);
    for rec in &digest.records {
        put_record(buf, rec);
    }
}

/// Reads a digest written by [`put_digest`] from the front of `buf`.
pub fn get_digest(buf: &mut Bytes) -> Result<Digest, DecodeError> {
    if buf.remaining() < 8 + 8 + 1 + 2 {
        return Err(DecodeError::Truncated);
    }
    let version = buf.get_u64();
    let ack = buf.get_u64();
    let flags = buf.get_u8();
    if flags & !FLAG_FULL != 0 {
        return Err(DecodeError::BadTag(flags));
    }
    let count = buf.get_u16() as usize;
    if count > MAX_DIGEST_RECORDS {
        return Err(DecodeError::BadTag(0));
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        records.push(get_record(buf)?);
    }
    Ok(Digest {
        version,
        ack,
        full: flags & FLAG_FULL != 0,
        records,
    })
}

/// Encoded size of one record, in bytes (what the simulator's traffic
/// meters charge per gossiped record).
pub fn record_wire_size(rec: &NodeRecord) -> u64 {
    let addr = match rec.addr {
        None => 1,
        Some(SocketAddr::V4(_)) => 1 + 4 + 2,
        Some(SocketAddr::V6(_)) => 1 + 16 + 2,
    };
    4 + 8 + 1 + addr
}

/// Encoded size of a whole digest (header + records).
pub fn digest_wire_size(digest: &Digest) -> u64 {
    8 + 8 + 1 + 2 + digest.records.iter().map(record_wire_size).sum::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Digest {
        Digest {
            version: 42,
            ack: 17,
            full: false,
            records: sample_records(),
        }
    }

    fn sample_records() -> Vec<NodeRecord> {
        vec![
            NodeRecord {
                node: 0,
                incarnation: 1,
                status: NodeStatus::Alive,
                addr: Some("127.0.0.1:45017".parse().unwrap()),
            },
            NodeRecord {
                node: 1,
                incarnation: 3,
                status: NodeStatus::Suspect,
                addr: Some("[2001:db8::7]:9000".parse().unwrap()),
            },
            NodeRecord {
                node: 2,
                incarnation: u64::MAX,
                status: NodeStatus::Dead,
                addr: None,
            },
            NodeRecord {
                node: u32::MAX,
                incarnation: 0,
                status: NodeStatus::Left,
                addr: None,
            },
        ]
    }

    #[test]
    fn digest_round_trips() {
        let digest = sample();
        let mut buf = BytesMut::new();
        put_digest(&mut buf, &digest);
        assert_eq!(buf.len() as u64, digest_wire_size(&digest));
        let mut bytes = buf.freeze();
        assert_eq!(get_digest(&mut bytes).unwrap(), digest);
        assert_eq!(bytes.remaining(), 0, "self-delimiting");
    }

    #[test]
    fn empty_heartbeat_digest_is_a_19_byte_header() {
        let digest = Digest {
            version: u64::MAX,
            ack: u64::MAX,
            full: true,
            records: Vec::new(),
        };
        let mut buf = BytesMut::new();
        put_digest(&mut buf, &digest);
        assert_eq!(buf.len(), 19, "the steady-state gossip cost");
        assert_eq!(get_digest(&mut buf.freeze()).unwrap(), digest);
    }

    #[test]
    fn truncation_is_detected_at_every_prefix() {
        let mut buf = BytesMut::new();
        put_digest(&mut buf, &sample());
        let raw = buf.freeze();
        assert!(raw.len() > 19);
        for len in 0..raw.len() {
            let mut cut = raw.slice(0..len);
            assert!(
                get_digest(&mut cut).is_err(),
                "digest truncated to {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn bad_status_and_addr_tags_are_rejected() {
        let mut buf = BytesMut::new();
        put_record(
            &mut buf,
            &NodeRecord {
                node: 1,
                incarnation: 1,
                status: NodeStatus::Alive,
                addr: None,
            },
        );
        let good = buf.freeze().to_vec();
        let mut bad_status = good.clone();
        bad_status[12] = 9; // status byte
        assert!(get_record(&mut Bytes::from(bad_status)).is_err());
        let mut bad_addr = good;
        bad_addr[13] = 0xEE; // addr tag
        assert!(get_record(&mut Bytes::from(bad_addr)).is_err());
    }

    #[test]
    fn oversized_digest_count_is_corrupt() {
        let mut buf = BytesMut::new();
        buf.put_u64(1); // version
        buf.put_u64(0); // ack
        buf.put_u8(0); // flags
        buf.put_u16(u16::MAX);
        assert!(get_digest(&mut buf.freeze()).is_err());
    }

    #[test]
    fn unknown_digest_flags_are_corrupt() {
        let mut buf = BytesMut::new();
        put_digest(
            &mut buf,
            &Digest {
                version: 1,
                ack: 0,
                full: false,
                records: Vec::new(),
            },
        );
        let mut raw = buf.freeze().to_vec();
        raw[16] |= 0x80; // flags byte
        assert!(get_digest(&mut Bytes::from(raw)).is_err());
    }
}
