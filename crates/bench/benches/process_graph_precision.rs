//! §4.1 — process graph vs reference graph precision.
//!
//! Without the no-sharing property only the coarse graph of address
//! spaces is available (equation (2)): the same DGC runs with one
//! endpoint per process, idle iff *all* hosted activities are idle. The
//! cost is precision: a garbage cycle spanning processes that also host
//! a live activity is never collected. This bench quantifies that on a
//! cycle spread over `k` processes where one process hosts a busy
//! bystander.

use dgc_activeobj::collector::CollectorKind;
use dgc_activeobj::process_mode::ProcessModeSim;
use dgc_activeobj::runtime::{Grid, GridConfig};
use dgc_bench::{nas_dgc_config, Table};
use dgc_core::units::Dur;
use dgc_simnet::time::SimDuration;
use dgc_simnet::topology::{ProcId, Topology};

fn reference_mode(busy_bystander: bool) -> usize {
    let mut grid = Grid::new(
        GridConfig::new(Topology::single_site(4, SimDuration::from_millis(1)))
            .collector(CollectorKind::Complete(nas_dgc_config()))
            .seed(41),
    );
    let ids: Vec<_> = (0..4)
        .map(|p| grid.spawn(ProcId(p), Box::new(dgc_activeobj::activity::Inert)))
        .collect();
    for w in 0..4 {
        grid.make_ref(ids[w], ids[(w + 1) % 4]);
    }
    if busy_bystander {
        // A busy but unrelated activity on process 0.
        let _spin = grid.spawn_root(ProcId(0), Box::new(dgc_activeobj::activity::Inert));
    }
    grid.run_for(SimDuration::from_secs(2_000));
    assert!(grid.violations().is_empty());
    ids.iter().filter(|id| !grid.is_alive(**id)).count()
}

fn process_mode(busy_bystander: bool) -> usize {
    let mut sim = ProcessModeSim::new(4, nas_dgc_config(), Dur::from_millis(1));
    let ids: Vec<_> = (0..4).map(|p| sim.add_activity(p)).collect();
    for w in 0..4 {
        sim.add_edge(ids[w], ids[(w + 1) % 4]);
    }
    for id in &ids {
        sim.set_idle(*id, true);
    }
    let bystander = if busy_bystander {
        let b = sim.add_activity(0);
        sim.set_idle(b, false);
        Some(b)
    } else {
        None
    };
    let _ = bystander;
    for _ in 0..60 {
        sim.step(Dur::from_secs(30));
    }
    ids.iter().filter(|id| !sim.is_alive(**id)).count()
}

fn main() {
    println!("=== §4.1: reference graph vs process graph precision ===\n");
    println!("Workload: an idle 4-cycle spanning 4 processes; optionally one\nbusy bystander activity co-hosted on process 0.\n");
    let mut table = Table::new(vec!["Granularity", "Bystander", "Cycle collected"]);
    for bystander in [false, true] {
        let r = reference_mode(bystander);
        let p = process_mode(bystander);
        table.row(vec![
            "reference graph".to_string(),
            format!("{bystander}"),
            format!("{r}/4"),
        ]);
        table.row(vec![
            "process graph".to_string(),
            format!("{bystander}"),
            format!("{p}/4"),
        ]);
        assert_eq!(r, 4, "reference granularity always collects the idle cycle");
        if bystander {
            assert_eq!(p, 0, "process granularity must NOT collect (imprecision)");
        } else {
            assert_eq!(p, 4, "without bystanders both modes collect");
        }
    }
    table.print();
    println!(
        "\nThe paper's trade-off verbatim: the process graph needs no\n\
         no-sharing property but 'a garbage cycle spanning some processes\n\
         where some active objects are still live will not be collected'."
    );
}
