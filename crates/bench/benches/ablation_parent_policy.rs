//! Ablation — §7.2 breadth-first reverse spanning trees.
//!
//! The paper's future work: the reverse spanning tree's height drives
//! detection latency; the default first-responder parent choice yields
//! shallow-ish trees by racing, while the MinDepth extension (responses
//! carry the responder's depth; referencers switch to strictly shallower
//! parents) approaches minimal height. Deep rings with long latency
//! links make the difference visible in parent switches and tree depth.

use dgc_activeobj::collector::CollectorKind;
use dgc_activeobj::runtime::{Grid, GridConfig};
use dgc_bench::Table;
use dgc_core::config::{DgcConfig, ParentPolicy};
use dgc_core::units::Dur;
use dgc_simnet::time::{SimDuration, SimTime};
use dgc_simnet::topology::Topology;
use dgc_workloads::scenarios::clique;

fn run(policy: ParentPolicy) -> (f64, u64, u64) {
    let cfg = DgcConfig::builder()
        .ttb(Dur::from_secs(30))
        .tta(Dur::from_secs(61))
        .max_comm(Dur::from_millis(500))
        .parent_policy(policy)
        .build();
    let mut grid = Grid::new(
        GridConfig::new(Topology::single_site(8, SimDuration::from_millis(5)))
            .collector(CollectorKind::Complete(cfg))
            .seed(21),
    );
    // A clique gives every node many parent candidates: the arena where
    // parent policies differ.
    let ids = clique(&mut grid, 24, 8);
    let deadline = SimTime::from_secs(30_000);
    while grid.now() < deadline && ids.iter().any(|id| grid.is_alive(*id)) {
        grid.run_for(SimDuration::from_secs(30));
    }
    assert!(ids.iter().all(|id| !grid.is_alive(*id)));
    assert!(grid.violations().is_empty());
    let stats = grid.dgc_stats();
    let last = grid
        .collected()
        .iter()
        .map(|c| c.at.as_secs_f64())
        .fold(0.0, f64::max);
    (last, stats.parents_adopted, stats.parents_switched)
}

fn main() {
    println!("=== Ablation: parent policy (first-responder vs breadth-first) ===\n");
    let mut table = Table::new(vec![
        "Policy",
        "Collected at",
        "Parents adopted",
        "Parent switches",
    ]);
    for (name, policy) in [
        ("first-responder (paper)", ParentPolicy::FirstResponder),
        ("min-depth (§7.2)", ParentPolicy::MinDepth),
    ] {
        let (at, adopted, switched) = run(policy);
        table.row(vec![
            name.to_string(),
            format!("{at:.0} s"),
            format!("{adopted}"),
            format!("{switched}"),
        ]);
        if matches!(policy, ParentPolicy::FirstResponder) {
            assert_eq!(switched, 0, "first-responder never switches parents");
        }
    }
    table.print();
    println!(
        "\nMinDepth actively flattens the reverse spanning tree (non-zero\n\
         switches); on a clique both reach consensus in a few beats, matching\n\
         the paper's observation that racing responders already give shallow\n\
         trees — the extension matters for unlucky topologies, not the mean."
    );
}
