//! The app-plane envelope and its middleware pipeline.
//!
//! Modeled on harmony's `PipelineExecutor`: every payload crossing the
//! app plane — on sockets or in the simulator — is wrapped in a
//! protocol-agnostic [`Envelope`] and walked through one [`Pipeline`]
//! of [`Middleware`] stages, **outgoing** before it may enter the
//! egress plane and **incoming** before it may reach a handler or
//! inbox. Policy is written once; both runtimes merely traverse it.
//!
//! Stages run in declaration order in both directions (authentication
//! first, so it sees every envelope before any transform — the harmony
//! rule). A [`Verdict::Reject`] stops the walk: rejected outgoing
//! envelopes never enter the egress plane (they are accounted under
//! `rejected_out`, outside the conservation sum); rejected incoming
//! envelopes are dropped before dispatch and accounted under
//! `rejected_in`.

use dgc_core::id::AoId;

use crate::tenant::{TenantId, TenantMap};

/// One app-plane payload in flight, protocol-agnostic: both runtimes
/// build it from their native representation at the pipeline boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending activity.
    pub from: AoId,
    /// Destination activity.
    pub to: AoId,
    /// True for a reply payload.
    pub reply: bool,
    /// The tenant the envelope travels under (stamped by [`TenantTag`]
    /// on the way out; trusted-but-verified on the way in).
    pub tenant: TenantId,
    /// The opaque payload. Transform stages may rewrite it.
    pub payload: Vec<u8>,
}

/// A stage's decision about one envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Pass to the next stage (the envelope may have been mutated).
    Continue,
    /// Stop: the envelope must not proceed. The label names the policy
    /// that fired (it feeds rejection logs/metrics, not the wire).
    Reject(&'static str),
}

impl Verdict {
    /// True for [`Verdict::Continue`].
    pub fn is_continue(&self) -> bool {
        matches!(self, Verdict::Continue)
    }
}

/// What a stage may consult besides the envelope: link- and node-level
/// facts owned by the runtime's event loop.
#[derive(Debug, Clone, Copy)]
pub struct MiddlewareCtx<'a> {
    /// Whether the link the envelope arrived on (or will leave on)
    /// completed the [`crate::auth`] handshake. Runtimes without auth
    /// configured report `true` (the trusted-LAN default).
    pub link_authenticated: bool,
    /// Activity → tenant assignments known to this node.
    pub tenants: &'a TenantMap,
}

/// One pipeline stage. Both directions default to pass-through, so a
/// stage implements only the side it cares about.
pub trait Middleware: Send {
    /// Stage name (debug rendering, rejection labels).
    fn name(&self) -> &'static str;

    /// Runs on envelopes leaving this node, before the egress plane.
    fn outgoing(&mut self, env: &mut Envelope, ctx: &MiddlewareCtx<'_>) -> Verdict {
        let _ = (env, ctx);
        Verdict::Continue
    }

    /// Runs on envelopes arriving at this node, before dispatch.
    fn incoming(&mut self, env: &mut Envelope, ctx: &MiddlewareCtx<'_>) -> Verdict {
        let _ = (env, ctx);
        Verdict::Continue
    }
}

/// An ordered stack of stages; the single policy object a runtime
/// traverses for every app-plane envelope.
#[derive(Default)]
pub struct Pipeline {
    stages: Vec<Box<dyn Middleware>>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.stages.iter().map(|s| s.name()))
            .finish()
    }
}

impl Pipeline {
    /// Empty pipeline: everything passes.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// The standard multi-tenant policy: [`RequireAuth`] →
    /// [`TenantTag`] → [`TenantIsolation`].
    pub fn standard() -> Pipeline {
        Pipeline::new()
            .stage(RequireAuth)
            .stage(TenantTag)
            .stage(TenantIsolation)
    }

    /// Appends a stage.
    pub fn stage(mut self, m: impl Middleware + 'static) -> Pipeline {
        self.stages.push(Box::new(m));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when no stage is installed.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Walks the outgoing side of every stage, in order, stopping at
    /// the first rejection.
    pub fn outgoing(&mut self, env: &mut Envelope, ctx: &MiddlewareCtx<'_>) -> Verdict {
        for stage in &mut self.stages {
            if let v @ Verdict::Reject(_) = stage.outgoing(env, ctx) {
                return v;
            }
        }
        Verdict::Continue
    }

    /// Walks the incoming side of every stage, in order, stopping at
    /// the first rejection.
    pub fn incoming(&mut self, env: &mut Envelope, ctx: &MiddlewareCtx<'_>) -> Verdict {
        for stage in &mut self.stages {
            if let v @ Verdict::Reject(_) = stage.incoming(env, ctx) {
                return v;
            }
        }
        Verdict::Continue
    }
}

/// Rejects incoming envelopes from unauthenticated links. On sockets
/// the transport already refuses pre-auth *frames*; this stage is the
/// defense in depth that also covers the simulator, where "the link"
/// is the pair of process keys.
#[derive(Debug, Clone, Copy)]
pub struct RequireAuth;

impl Middleware for RequireAuth {
    fn name(&self) -> &'static str {
        "require-auth"
    }

    fn incoming(&mut self, _env: &mut Envelope, ctx: &MiddlewareCtx<'_>) -> Verdict {
        if ctx.link_authenticated {
            Verdict::Continue
        } else {
            Verdict::Reject("unauthenticated")
        }
    }
}

/// Stamps outgoing envelopes with the sender's tenant. Whatever tenant
/// the caller put in the envelope is overwritten: the map is the
/// authority, so an application cannot impersonate another tenant by
/// forging the field.
#[derive(Debug, Clone, Copy)]
pub struct TenantTag;

impl Middleware for TenantTag {
    fn name(&self) -> &'static str {
        "tenant-tag"
    }

    fn outgoing(&mut self, env: &mut Envelope, ctx: &MiddlewareCtx<'_>) -> Verdict {
        env.tenant = ctx.tenants.of(env.from);
        Verdict::Continue
    }
}

/// Rejects envelopes crossing a tenant boundary, on both sides: the
/// sender refuses to emit them (its map knows the destination's tenant
/// — drivers broadcast registrations) and the receiver refuses to
/// dispatch them (its map knows its own activities), so a node that
/// skipped the outgoing check still cannot inject across the boundary.
#[derive(Debug, Clone, Copy)]
pub struct TenantIsolation;

impl Middleware for TenantIsolation {
    fn name(&self) -> &'static str {
        "tenant-isolation"
    }

    fn outgoing(&mut self, env: &mut Envelope, ctx: &MiddlewareCtx<'_>) -> Verdict {
        if ctx.tenants.of(env.to) == env.tenant {
            Verdict::Continue
        } else {
            Verdict::Reject("cross-tenant")
        }
    }

    fn incoming(&mut self, env: &mut Envelope, ctx: &MiddlewareCtx<'_>) -> Verdict {
        if ctx.tenants.of(env.to) == env.tenant {
            Verdict::Continue
        } else {
            Verdict::Reject("cross-tenant")
        }
    }
}

/// A closure-backed stage for transform/reject policies that do not
/// deserve a named type (payload caps, rewrites, test probes).
pub struct FnStage {
    name: &'static str,
    #[allow(clippy::type_complexity)]
    outgoing: Option<Box<dyn FnMut(&mut Envelope, &MiddlewareCtx<'_>) -> Verdict + Send>>,
    #[allow(clippy::type_complexity)]
    incoming: Option<Box<dyn FnMut(&mut Envelope, &MiddlewareCtx<'_>) -> Verdict + Send>>,
}

impl FnStage {
    /// A stage with no behavior (attach sides with
    /// [`FnStage::on_outgoing`] / [`FnStage::on_incoming`]).
    pub fn named(name: &'static str) -> FnStage {
        FnStage {
            name,
            outgoing: None,
            incoming: None,
        }
    }

    /// Sets the outgoing side.
    pub fn on_outgoing(
        mut self,
        f: impl FnMut(&mut Envelope, &MiddlewareCtx<'_>) -> Verdict + Send + 'static,
    ) -> FnStage {
        self.outgoing = Some(Box::new(f));
        self
    }

    /// Sets the incoming side.
    pub fn on_incoming(
        mut self,
        f: impl FnMut(&mut Envelope, &MiddlewareCtx<'_>) -> Verdict + Send + 'static,
    ) -> FnStage {
        self.incoming = Some(Box::new(f));
        self
    }
}

impl Middleware for FnStage {
    fn name(&self) -> &'static str {
        self.name
    }

    fn outgoing(&mut self, env: &mut Envelope, ctx: &MiddlewareCtx<'_>) -> Verdict {
        match &mut self.outgoing {
            Some(f) => f(env, ctx),
            None => Verdict::Continue,
        }
    }

    fn incoming(&mut self, env: &mut Envelope, ctx: &MiddlewareCtx<'_>) -> Verdict {
        match &mut self.incoming {
            Some(f) => f(env, ctx),
            None => Verdict::Continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(from: AoId, to: AoId) -> Envelope {
        Envelope {
            from,
            to,
            reply: false,
            tenant: TenantId::DEFAULT,
            payload: b"hi".to_vec(),
        }
    }

    #[test]
    fn standard_pipeline_stamps_and_isolates() {
        let mut tenants = TenantMap::new();
        let (a1, a2, b1) = (AoId::new(0, 1), AoId::new(1, 1), AoId::new(1, 2));
        tenants.register(a1, TenantId(1));
        tenants.register(a2, TenantId(1));
        tenants.register(b1, TenantId(2));
        let ctx = MiddlewareCtx {
            link_authenticated: true,
            tenants: &tenants,
        };
        let mut p = Pipeline::standard();
        // Same tenant: stamped and passed.
        let mut e = env(a1, a2);
        assert!(p.outgoing(&mut e, &ctx).is_continue());
        assert_eq!(e.tenant, TenantId(1));
        assert!(p.incoming(&mut e, &ctx).is_continue());
        // Cross tenant: rejected on the way out — even with a forged
        // tenant field, since TenantTag overwrites it from the map.
        let mut x = env(a1, b1);
        x.tenant = TenantId(2);
        assert_eq!(p.outgoing(&mut x, &ctx), Verdict::Reject("cross-tenant"));
        assert_eq!(x.tenant, TenantId(1), "stamp happened before the check");
        // Cross tenant on the way in (a peer that skipped the check).
        let mut forged = env(a1, b1);
        forged.tenant = TenantId(1);
        assert_eq!(
            p.incoming(&mut forged, &ctx),
            Verdict::Reject("cross-tenant")
        );
    }

    #[test]
    fn unauthenticated_links_are_rejected_first() {
        let tenants = TenantMap::new();
        let ctx = MiddlewareCtx {
            link_authenticated: false,
            tenants: &tenants,
        };
        let mut p = Pipeline::standard();
        let mut e = env(AoId::new(0, 1), AoId::new(1, 1));
        assert_eq!(p.incoming(&mut e, &ctx), Verdict::Reject("unauthenticated"));
        // Outgoing still passes: auth gates the *link*, not the intent
        // to send (the transport refuses to use unauthenticated links).
        assert!(p.outgoing(&mut e, &ctx).is_continue());
    }

    #[test]
    fn fn_stage_transforms_and_rejects() {
        let tenants = TenantMap::new();
        let ctx = MiddlewareCtx {
            link_authenticated: true,
            tenants: &tenants,
        };
        let mut p = Pipeline::new()
            .stage(FnStage::named("frame-cap").on_outgoing(|e, _| {
                if e.payload.len() > 4 {
                    Verdict::Reject("oversize")
                } else {
                    Verdict::Continue
                }
            }))
            .stage(FnStage::named("uppercase").on_outgoing(|e, _| {
                e.payload.make_ascii_uppercase();
                Verdict::Continue
            }));
        assert_eq!(format!("{p:?}"), r#"["frame-cap", "uppercase"]"#);
        let mut small = env(AoId::new(0, 1), AoId::new(1, 1));
        assert!(p.outgoing(&mut small, &ctx).is_continue());
        assert_eq!(small.payload, b"HI");
        let mut big = small.clone();
        big.payload = vec![b'x'; 10];
        assert_eq!(p.outgoing(&mut big, &ctx), Verdict::Reject("oversize"));
        assert_eq!(big.payload.len(), 10, "rejection stopped the walk");
        assert!(p.incoming(&mut big, &ctx).is_continue());
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }
}
