//! Batched, optionally sharded TTB sweeps.
//!
//! A node hosting many activities drives every due [`DgcState`] once
//! per beat. The naive loop materializes a fresh `Vec<Action>` per
//! activity plus two table-sized `Vec`s inside `on_tick` — at hundreds
//! of thousands of activities that is the sweep's dominant cost. This
//! module is the zero-allocation replacement shared by every runtime:
//!
//! * [`ActionSink`] — where [`DgcState::on_tick_into`] emits its
//!   actions instead of returning a `Vec`; an `Outbox`-feeding sink
//!   makes the sweep one pass from table walk to egress queue.
//! * [`SweepScratch`] — the reusable per-sweep buffers behind
//!   `expire_silent` / `broadcast_targets`.
//! * [`sweep_sharded`] — chunks a due list by activity-id range over N
//!   workers (scoped threads), each filling its own [`SweepUnit`]
//!   buffer; draining the buffers in shard order reproduces the exact
//!   unit order of the unsharded sweep, so determinism — and the
//!   conformance verdicts that hang off it — is preserved by
//!   construction.
//!
//! [`DgcState`]: crate::protocol::DgcState
//! [`DgcState::on_tick_into`]: crate::protocol::DgcState::on_tick_into

use crate::id::AoId;
use crate::message::Action;

/// Receives the actions of a sweep as they are produced.
///
/// `from` names the activity that produced the action — the routing
/// key a batched sweep needs once actions of many activities share one
/// buffer.
pub trait ActionSink {
    /// Accepts one action emitted by `from`.
    fn emit(&mut self, from: AoId, action: Action);
}

/// The compatibility sink: collects actions, drops the origin (the
/// caller already knows it).
impl ActionSink for Vec<Action> {
    #[inline]
    fn emit(&mut self, _from: AoId, action: Action) {
        self.push(action);
    }
}

/// One action of a batched sweep, tagged with its origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepUnit {
    /// The activity that emitted the action.
    pub from: AoId,
    /// The action itself.
    pub action: Action,
}

/// The batching sink: many activities' actions in one reused buffer.
impl ActionSink for Vec<SweepUnit> {
    #[inline]
    fn emit(&mut self, from: AoId, action: Action) {
        self.push(SweepUnit { from, action });
    }
}

/// Reusable scratch buffers for one sweep worker. All buffers are
/// cleared (not shrunk) between activities, so a warm sweep allocates
/// nothing.
#[derive(Debug, Default)]
pub struct SweepScratch {
    /// Referencers expired this tick.
    pub(crate) expired: Vec<AoId>,
    /// Broadcast targets of this tick.
    pub(crate) targets: Vec<AoId>,
    /// Referenced edges dropped after honouring `must_send_once`.
    pub(crate) dropped: Vec<AoId>,
}

impl SweepScratch {
    /// Fresh (cold) scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-shard `(scratch, unit buffer)` pairs, reused across sweeps so
/// the steady state allocates nothing.
#[derive(Debug, Default)]
pub struct SweepPools {
    shards: Vec<(SweepScratch, Vec<SweepUnit>)>,
}

impl SweepPools {
    /// Empty pool; shards materialize on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        while self.shards.len() < n {
            self.shards.push((SweepScratch::new(), Vec::new()));
        }
    }

    /// Drains every buffered unit in shard order — the exact order the
    /// unsharded sweep would have produced.
    pub fn drain_units(&mut self) -> impl Iterator<Item = SweepUnit> + '_ {
        self.shards.iter_mut().flat_map(|(_, buf)| buf.drain(..))
    }

    /// Units currently buffered (all shards).
    pub fn buffered(&self) -> usize {
        self.shards.iter().map(|(_, buf)| buf.len()).sum()
    }
}

/// Sweeps `due` with up to `shards` parallel workers.
///
/// `due` must already be in the deterministic order the caller wants
/// units emitted in (runtimes pass activity-id order); it is split into
/// contiguous chunks — id *ranges* — one per worker. Each worker runs
/// `tick` over its chunk with a private [`SweepScratch`] and
/// [`SweepUnit`] buffer from `pools`; afterwards
/// [`SweepPools::drain_units`] yields all units in shard order, which
/// equals the sequential order. With `shards <= 1` (or a single due
/// entry) no thread is spawned and the sweep runs inline.
pub fn sweep_sharded<E, F>(due: &mut [E], shards: usize, pools: &mut SweepPools, tick: F)
where
    E: Send,
    F: Fn(&mut E, &mut SweepScratch, &mut Vec<SweepUnit>) + Sync,
{
    let shards = shards.clamp(1, due.len().max(1));
    pools.ensure(shards);
    if shards == 1 {
        // dgc-analysis: allow(hot-path-panic): pools.ensure(shards) sized the vec one line up
        let (scratch, buf) = &mut pools.shards[0];
        for e in due.iter_mut() {
            tick(e, scratch, buf);
        }
        return;
    }
    let chunk = due.len().div_ceil(shards);
    std::thread::scope(|s| {
        for (slot, es) in pools.shards.iter_mut().zip(due.chunks_mut(chunk)) {
            let tick = &tick;
            s.spawn(move || {
                let (scratch, buf) = slot;
                for e in es.iter_mut() {
                    tick(e, scratch, buf);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::TerminateReason;

    fn ao(i: u32) -> AoId {
        AoId::new(0, i)
    }

    fn terminate() -> Action {
        Action::Terminate {
            reason: TerminateReason::Acyclic,
        }
    }

    #[test]
    fn vec_action_sink_collects() {
        let mut v: Vec<Action> = Vec::new();
        v.emit(ao(1), terminate());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn sharded_order_matches_sequential() {
        // 25 "activities" each emitting its own id; any shard count must
        // reproduce the sequential emission order.
        let mut seq: Vec<u32> = Vec::new();
        for shards in [1usize, 2, 3, 7, 25, 64] {
            let mut due: Vec<u32> = (0..25).collect();
            let mut pools = SweepPools::new();
            sweep_sharded(&mut due, shards, &mut pools, |e, _scratch, buf| {
                buf.emit(ao(*e), terminate());
                // Mark the entry so we know every chunk was visited.
                *e += 100;
            });
            let got: Vec<u32> = pools.drain_units().map(|u| u.from.index).collect();
            assert!(due.iter().all(|e| *e >= 100), "shards={shards}");
            if shards == 1 {
                seq = got.clone();
            }
            assert_eq!(got, seq, "shards={shards}");
            assert_eq!(pools.buffered(), 0, "drained clean");
        }
    }

    #[test]
    fn empty_due_list_is_fine() {
        let mut due: Vec<u32> = Vec::new();
        let mut pools = SweepPools::new();
        sweep_sharded(&mut due, 4, &mut pools, |_, _, _| unreachable!());
        assert_eq!(pools.drain_units().count(), 0);
    }
}
