//! dgc-analysis — the project's correctness-analysis plane.
//!
//! A self-contained lint pass (no external parser, no proc macros)
//! that walks the workspace source and enforces the invariants the
//! compiler can't see:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `wall-clock` | all time flows through the `TimeSource` seam |
//! | `unordered-iter` | no hash-order nondeterminism in protocol/oracle code |
//! | `hot-path-panic` | no panic sites in the PR 9 hot-path modules |
//! | `counter-completeness` | every `net.*`/`tenant.*` key is mirrored |
//! | `lock-across-send` | no shim-mutex guard held across a blocking call |
//!
//! Intentional violations carry an inline
//! `// dgc-analysis: allow(<rule>): <reason>` (see [`report`]); the
//! workspace gate (`tests/workspace_clean.rs`) requires zero
//! unannotated findings. The runtime half of the plane — the
//! lock-order cycle detector — lives in the vendored `parking_lot`
//! shim (`parking_lot::lockcheck`), enabled with `DGC_LOCK_CHECK=1`.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use report::{Finding, RULES};

/// Result of an analysis pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings (including `bad-allow`), sorted by
    /// path, line, rule.
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(f, "{} finding(s)", self.findings.len())
    }
}

/// Runs every rule over in-memory sources: `(repo-relative path,
/// contents)` pairs. This is the engine behind both the golden tests
/// and the workspace pass.
pub fn analyze_sources(sources: &[(String, String)]) -> Report {
    let files: Vec<rules::SourceFile> = sources
        .iter()
        .map(|(path, src)| rules::SourceFile::new(path, src))
        .collect();

    let mut findings = Vec::new();
    let mut allows = Vec::new();
    for f in &files {
        findings.extend(rules::per_file_rules(f));
        // The analysis crate documents the directive syntax in prose;
        // no rule fires there, so don't parse its comments as
        // directives.
        if f.path.starts_with("crates/analysis/") {
            continue;
        }
        let (file_allows, bad) = report::collect_allows(&f.path, &f.tokens);
        findings.extend(bad);
        allows.push((f.path.clone(), file_allows));
    }
    findings.extend(rules::counter_completeness(&files));

    let mut findings = report::suppress(findings, &allows);
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings.dedup();
    Report { findings }
}

/// Walks the repo from this crate's manifest location and runs the
/// full pass. Used by the workspace gate test and by
/// `cargo run -p dgc-analysis --bin dgc-lint` locally.
pub fn analyze_workspace() -> Report {
    let root = workspace::repo_root();
    let sources = workspace::collect_sources(&root);
    analyze_sources(&sources)
}
