//! A network node: one address space of the DGC, listening on a real
//! TCP socket and hosting many activities.
//!
//! Mirrors the structure proven by `dgc-rt-thread` — a single event
//! loop owns every hosted [`DgcState`] and wall-clock tick — but the
//! mailbox is fed by sockets instead of in-process channels:
//!
//! ```text
//!            ┌────────────── NetNode (handle) ───────────────┐
//!  control → │ event loop: endpoints, ticks, routing         │
//!            │   ├─ outbound links (peer.rs): msgs out       │
//!            │   └─ reply senders: responses/failures back   │
//!            │ acceptor ─ reader thread per inbound conn     │
//!            └───────────────────────────────────────────────┘
//! ```
//!
//! Routing discipline (paper §2.2): DGC **messages** and application
//! **requests** go over the link this node *initiates* toward the
//! referenced node; **responses**, reply payloads and send-failure
//! notifications go back over whichever socket the peer opened to us.
//! A node behind a NAT that can open connections but not accept them
//! still collects correctly.
//!
//! Every outgoing unit crosses the node's **egress plane**
//! ([`dgc_core::egress::Outbox`]): one per-destination outbox whose
//! flush policy coalesces heartbeats, gossip digests and application
//! payloads into shared frames — an app send flushes its destination
//! immediately and carries the queued background units for free, while
//! pure background traffic lingers at most the policy's `max_delay`.
//! The link writers in [`crate::peer`] just write what the outbox
//! flushes: one flush, one frame.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;

use parking_lot::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dgc_core::egress::{EgressObs, Flush, FlushReason, Outbox};
use dgc_core::id::AoId;
use dgc_core::message::{Action, TerminateReason};
use dgc_core::protocol::DgcState;
use dgc_core::sweep::{sweep_sharded, SweepPools, SweepUnit};
use dgc_core::telemetry::DgcObs;
use dgc_core::units::Time;
use dgc_membership::{
    Digest, Membership, MembershipEvent, MembershipObs, NodeRecord, NodeStatus, Transition,
};
use dgc_obs::{Registry, TimeSource, TraceLevel, Tracer};
use dgc_plane::{
    AuthKey, AuthMsg, Authenticator, Envelope, MiddlewareCtx, Pipeline, Step, TenantCounters,
    TenantId, TenantLedger, TenantMap, Verdict,
};

use crate::config::{IoEngine, NetConfig};
use crate::frame::{encode_frame, Frame, FrameDecoder, Item, GOSSIP_ANYCAST, PROTOCOL_VERSION};
use crate::peer::{spawn_reply_writer, OutboundLink};
use crate::reactor::{Notice, Reactor};
use crate::stats::{NetStats, NetStatsSnapshot};

/// Polls `check` every couple of milliseconds until it holds or
/// `deadline` passes; shared by the node- and cluster-level
/// `wait_until` drivers.
pub(crate) fn poll_until(deadline: Duration, check: impl Fn() -> bool) -> bool {
    // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
    let start = Instant::now();
    loop {
        if check() {
            return true;
        }
        if start.elapsed() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The event loop's ingress handle: the mpsc sender every producer
/// feeds, plus — reactor engine only — the poller waker that interrupts
/// a loop parked in [`Reactor::poll`] rather than on the channel. With
/// the threaded engine the waker is `None` and this is a plain sender.
#[derive(Clone)]
pub(crate) struct LoopSender {
    tx: mpsc::Sender<Event>,
    waker: Option<Arc<polling::Waker>>,
}

impl LoopSender {
    pub(crate) fn new(tx: mpsc::Sender<Event>, waker: Option<Arc<polling::Waker>>) -> LoopSender {
        LoopSender { tx, waker }
    }

    /// Enqueues `event` and nudges the loop awake. Fails exactly when
    /// the underlying channel does (the loop is gone).
    pub(crate) fn send(&self, event: Event) -> Result<(), mpsc::SendError<Event>> {
        self.tx.send(event)?;
        if let Some(w) = &self.waker {
            w.wake();
        }
        Ok(())
    }
}

/// Joins the transport's helper threads — socket readers, reply
/// writers, join dialers — at node shutdown. They used to be detached
/// ("they exit on EOF anyway"), which was true but unaccounted: under
/// crash/rejoin churn the exited-but-unjoined carcasses and any reader
/// wedged on a half-dead socket accumulated real OS threads. Every
/// helper registers here; [`ThreadReaper::join_all`] reaps them after
/// the sockets are shut down.
#[derive(Default)]
pub(crate) struct ThreadReaper {
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl ThreadReaper {
    /// Tracks `handle` for shutdown, dropping already-finished entries
    /// so a long-lived node's list stays proportional to *live*
    /// helpers, not historical churn.
    pub(crate) fn register(&self, handle: JoinHandle<()>) {
        let mut handles = self.handles.lock();
        handles.retain(|h| !h.is_finished());
        handles.push(handle);
    }

    /// Joins every tracked thread, looping until the list stays empty
    /// (a reader being joined may have just registered the reply writer
    /// it spawned). Callers must have unblocked the threads first —
    /// sockets shut down, channels closed.
    pub(crate) fn join_all(&self) {
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut handles = self.handles.lock();
                std::mem::take(&mut *handles)
            };
            if drained.is_empty() {
                return;
            }
            for h in drained {
                let _ = h.join();
            }
        }
    }
}

/// Bounded exponential backoff for transient `accept` errors (EMFILE,
/// ECONNABORTED, ENFILE): both engines' accept paths count the error
/// and wait this out instead of spinning — or worse, treating it as
/// fatal and going silently deaf to inbound connections.
pub(crate) struct AcceptBackoff {
    consecutive: u32,
}

impl AcceptBackoff {
    const BASE: Duration = Duration::from_millis(10);
    const CAP: Duration = Duration::from_millis(500);

    pub(crate) fn new() -> AcceptBackoff {
        AcceptBackoff { consecutive: 0 }
    }

    /// A successful accept ends the episode.
    pub(crate) fn on_success(&mut self) {
        self.consecutive = 0;
    }

    /// Records one failed accept (the `net.accept_errors` counter) and
    /// returns how long to back off: 10ms doubling to a 500ms cap, so
    /// a descriptor-exhaustion episode retries promptly but a
    /// persistent failure cannot busy-loop the acceptor.
    pub(crate) fn on_error(&mut self, stats: &NetStats) -> Duration {
        stats.on_accept_error();
        let wait = Self::BASE
            .saturating_mul(1u32 << self.consecutive.min(6))
            .min(Self::CAP);
        self.consecutive = self.consecutive.saturating_add(1);
        wait
    }
}

/// A recorded termination, visible to drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Terminated {
    /// Which activity ended.
    pub ao: AoId,
    /// Why.
    pub reason: TerminateReason,
}

/// One application unit delivered to this node, in arrival order —
/// what the piggyback/FIFO tests assert over. Also the shape of a
/// **failed** outgoing unit in [`NetNode::app_send_failures`]: an app
/// payload the transport accepted but could not deliver (departed
/// peer, dead link with no reply path) is handed back, not dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppReceived {
    /// Sending activity.
    pub from: AoId,
    /// Destination activity (hosted here).
    pub to: AoId,
    /// True for a reply payload.
    pub reply: bool,
    /// The opaque payload.
    pub payload: Vec<u8>,
}

/// An outgoing application unit produced by an [`AppHandler`]; routed
/// through the egress plane exactly like [`NetNode::send_app`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppSend {
    /// Sending activity (hosted on the handling node).
    pub from: AoId,
    /// Destination activity.
    pub to: AoId,
    /// True for a reply payload.
    pub reply: bool,
    /// The opaque payload.
    pub payload: Vec<u8>,
}

/// The boxed dispatch function inside an [`AppHandler`].
type AppHandlerFn = Box<dyn FnMut(&AppReceived) -> Vec<AppSend> + Send>;

/// An application dispatch hook, run **on the node's event loop** for
/// every delivered [`Item::App`]. The units it returns are routed
/// through the egress plane in the same sweep — a server answering a
/// request therefore gets its reply into the very frame window the
/// request's piggybacked heartbeats rode in on. While a handler is
/// registered the test inbox ([`NetNode::app_received`]) is bypassed.
pub struct AppHandler(AppHandlerFn);

impl AppHandler {
    /// Wraps a dispatch function.
    pub fn new(f: impl FnMut(&AppReceived) -> Vec<AppSend> + Send + 'static) -> AppHandler {
        AppHandler(Box::new(f))
    }
}

impl std::fmt::Debug for AppHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AppHandler")
    }
}

/// Point-in-time occupancy of a node's egress plane, for tests and
/// diagnostics (see [`NetNode::egress_pending`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EgressPending {
    /// Units queued across all destinations.
    pub items: usize,
    /// Payload bytes queued across all destinations.
    pub bytes: u64,
    /// The earliest scheduled flush deadline, if anything is queued.
    pub next_deadline: Option<Time>,
}

/// Everything the event loop can be asked to process.
#[derive(Debug)]
pub enum Event {
    /// A protocol unit, from a socket or the local loopback.
    Item(Item),
    /// An outgoing protocol unit from the driver (application sends):
    /// routed through the egress plane like everything else.
    Send {
        /// The unit to route.
        item: Item,
    },
    /// Graceful departure: announce [`NodeStatus::Left`], flush every
    /// farewell digest, stop gossiping, and acknowledge.
    Leave {
        /// Signalled once the farewells reached the link writers.
        ack: mpsc::Sender<()>,
    },
    /// An accepted connection finished its hello; responses for `node`
    /// now have a reply path.
    PeerLink {
        /// The remote node id.
        node: u32,
        /// Queue of the reply writer bound to that socket.
        tx: mpsc::Sender<Vec<Item>>,
    },
    /// Registers the listen address of a remote node.
    AddPeer {
        /// Remote node id.
        node: u32,
        /// Its listen address.
        addr: SocketAddr,
    },
    /// Hosts a new activity.
    AddActivity {
        /// Its id (allocated by the handle).
        id: AoId,
    },
    /// Marks an activity idle or busy.
    SetIdle {
        /// The activity.
        ao: AoId,
        /// New idleness.
        idle: bool,
    },
    /// The application serialized a reference `from → to`.
    AddRef {
        /// Referencer (hosted here).
        from: AoId,
        /// Referenced activity (anywhere).
        to: AoId,
    },
    /// The application dropped the reference `from → to`.
    DropRef {
        /// Referencer (hosted here).
        from: AoId,
        /// Referenced activity.
        to: AoId,
    },
    /// Stops the world: the event loop sleeps until the deadline,
    /// processing nothing and ticking nobody (models a long local-GC
    /// pause, the §4.2 hazard; deliveries queue up and land in a burst
    /// when the pause ends, exactly like the simulator's deferred
    /// events). An *absolute* deadline, not a span: a pause that
    /// queues behind another only extends the stall to the later end —
    /// the covering-union semantics of `FaultProfile::pause_end` —
    /// instead of serializing the full widths back to back.
    Pause {
        /// When the world resumes (already-past deadlines are no-ops).
        until: Instant,
    },
    /// An outbound link burned through `fail_after_attempts`: the peer
    /// is unreachable until further notice. With membership enabled
    /// this is a transport-level suspicion (the dead verdict still
    /// waits out the refutation window); without it, it is the
    /// *terminal* send failure — every hosted collector treats the
    /// node's activities as departed instead of retrying forever.
    PeerUnreachable {
        /// The unreachable node.
        node: u32,
        /// Everything the dead writer still had queued, handed back so
        /// the event loop can reroute it over the peer's reply socket
        /// (the forward direction failing says nothing about the
        /// reverse one) or surface it as send failures — never drop it.
        unsent: Vec<Item>,
    },
    /// A link writer could not ship these units and cannot retry them:
    /// stragglers caught in the window between a terminal conviction
    /// and the node dropping the link (rerouted over the peer's reply
    /// socket if one is live), or units lost to a backlogged queue's
    /// overflow shedding / a dying reply socket (failed outright — the
    /// peer may still be fine, so no reroute that could reorder or
    /// duplicate what the live path will deliver).
    Undeliverable {
        /// The peer the units were bound for.
        node: u32,
        /// The units.
        items: Vec<Item>,
        /// Try the reply path before surfacing failures.
        reroute: bool,
    },
    /// A join-probe dialer opened this socket and already wrote the
    /// hello and probe digest; the transport reads the seed's gossip
    /// replies off it (a detached reader thread on the threaded
    /// engine, an adopted reactor connection otherwise).
    AdoptSocket {
        /// The probe connection, handshake already sent.
        stream: TcpStream,
    },
    /// Installs (or replaces) the application dispatch hook.
    SetAppHandler {
        /// The hook; delivered app units stop landing in the inbox.
        handler: AppHandler,
    },
    /// Installs (or replaces) the node's envelope middleware pipeline:
    /// every application payload — outgoing and incoming — traverses
    /// its stages on the event loop.
    SetPipeline {
        /// The stage chain (not `Copy`, hence an event, not config).
        pipeline: Pipeline,
    },
    /// Assigns a hosted (or remote) activity to a tenant namespace.
    RegisterTenant {
        /// The activity.
        ao: AoId,
        /// Its tenant ([`TenantId::DEFAULT`] unregisters).
        tenant: TenantId,
    },
    /// Reports the per-tenant app-plane traffic ledger (tests,
    /// conservation checks).
    QueryTenants {
        /// Where to send the snapshot.
        reply: mpsc::Sender<Vec<(TenantId, TenantCounters)>>,
    },
    /// Reports the egress plane's current occupancy (tests).
    QueryEgress {
        /// Where to send the snapshot.
        reply: mpsc::Sender<EgressPending>,
    },
    /// Reports the egress plane's lifetime counters (tests,
    /// conservation checks against the telemetry registry).
    QueryEgressStats {
        /// Where to send the counters.
        reply: mpsc::Sender<dgc_core::egress::EgressStats>,
    },
    /// Stops the event loop.
    Shutdown,
}

struct Endpoint {
    state: DgcState,
    idle: bool,
    next_tick: Instant,
}

/// Registry of every live socket a node's reader threads are blocked
/// on, so shutdown can unblock them all with `Shutdown::Both`. Entries
/// remove themselves when their reader exits (no fd accumulation on
/// flapping links).
#[derive(Debug, Default)]
pub(crate) struct SocketTracker {
    sockets: Mutex<HashMap<u64, TcpStream>>,
    next: AtomicU64,
}

impl SocketTracker {
    /// Registers a clone of `stream`; the returned guard unregisters it
    /// when dropped.
    pub(crate) fn register(self: &Arc<Self>, stream: &TcpStream) -> Option<TrackedSocket> {
        let clone = stream.try_clone().ok()?;
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.sockets.lock().insert(id, clone);
        Some(TrackedSocket {
            tracker: Arc::clone(self),
            id,
        })
    }

    /// Shuts down every registered socket, unblocking its reader.
    pub(crate) fn shutdown_all(&self) {
        for s in self.sockets.lock().values() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

pub(crate) struct TrackedSocket {
    tracker: Arc<SocketTracker>,
    id: u64,
}

impl Drop for TrackedSocket {
    fn drop(&mut self) {
        self.tracker.sockets.lock().remove(&self.id);
    }
}

/// A running DGC node bound to a TCP listener.
pub struct NetNode {
    node_id: u32,
    addr: SocketAddr,
    config: NetConfig,
    incarnation: u64,
    tx: LoopSender,
    next_index: AtomicU32,
    stats: Arc<NetStats>,
    obs: Registry,
    terminated: Arc<Mutex<Vec<Terminated>>>,
    app_log: Arc<Mutex<Vec<AppReceived>>>,
    app_failures: Arc<Mutex<Vec<AppReceived>>>,
    member_events: Arc<Mutex<Vec<MembershipEvent>>>,
    member_snapshot: Arc<Mutex<Option<Vec<NodeRecord>>>>,
    shutting_down: Arc<AtomicBool>,
    tracker: Arc<SocketTracker>,
    reaper: Arc<ThreadReaper>,
    loop_handle: Option<JoinHandle<()>>,
    acceptor_handle: Option<JoinHandle<()>>,
}

impl NetNode {
    /// Binds `node_id` to a fresh ephemeral port on `127.0.0.1` and
    /// starts its event loop and acceptor. First lives run as
    /// incarnation 1; see [`NetNode::bind_rejoin`] for crash-restarts.
    ///
    /// # Panics
    ///
    /// Panics if `config.dgc` violates the TTA safety formula.
    pub fn bind(node_id: u32, config: NetConfig) -> std::io::Result<NetNode> {
        NetNode::bind_rejoin(node_id, config, 1, 0)
    }

    /// Binds a **restarted** node: announces itself under
    /// `incarnation` (must exceed every incarnation this node id lived
    /// before, so its membership record supersedes its own corpse) and
    /// allocates activity indices from `first_index` (so rejoin-era
    /// activities never reuse the ids that died in the crash).
    pub fn bind_rejoin(
        node_id: u32,
        config: NetConfig,
        incarnation: u64,
        first_index: u32,
    ) -> std::io::Result<NetNode> {
        config.dgc.validate().expect("unsafe TTB/TTA configuration");
        assert_eq!(
            config.reactor_shards, 1,
            "multi-shard reactor loops are a roadmap follow-on; reactor_shards must be 1"
        );
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        // The telemetry plane: one registry per node, timestamps
        // anchored at the worker's epoch so traces and histograms read
        // in nanoseconds-since-boot, same shape as the grid's virtual
        // clock.
        // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
        let epoch = Instant::now();
        let obs = Registry::with_tracer(
            TimeSource::wall_since(epoch),
            Tracer::new(config.trace, dgc_obs::trace::DEFAULT_CAPACITY),
        );
        let stats = NetStats::shared_with_obs(&obs);
        let terminated = Arc::new(Mutex::new(Vec::new()));
        let app_log = Arc::new(Mutex::new(Vec::new()));
        let app_failures = Arc::new(Mutex::new(Vec::new()));
        let member_events = Arc::new(Mutex::new(Vec::new()));
        let shutting_down = Arc::new(AtomicBool::new(false));
        let tracker = Arc::new(SocketTracker::default());
        let reaper = Arc::new(ThreadReaper::default());

        // Engine selection. The reactor takes the listener onto its
        // readiness loop (no acceptor thread at all) and hands out the
        // waker that lets event senders interrupt a parked poll; the
        // threaded engine keeps the listener for its blocking acceptor.
        let mut listener = Some(listener);
        let (links, waker) = match config.engine {
            IoEngine::Reactor => {
                let reactor = Reactor::new(
                    node_id,
                    listener.take().expect("listener is present"),
                    config,
                    Arc::clone(&stats),
                )?;
                let waker = reactor.waker();
                (Links::Reactor(Box::new(reactor)), Some(waker))
            }
            IoEngine::Threaded => (
                Links::Threaded {
                    outbound: HashMap::new(),
                    reply: HashMap::new(),
                },
                None,
            ),
        };
        let (raw_tx, rx) = mpsc::channel();
        let tx = LoopSender::new(raw_tx, waker);

        let membership = config.membership.map(|m| {
            let mut engine = Membership::new(node_id, Some(addr), incarnation, Time::ZERO, m);
            engine.set_obs(MembershipObs::new(&obs));
            engine
        });
        let member_snapshot = Arc::new(Mutex::new(membership.as_ref().map(|m| m.records())));
        // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
        let next_member_tick = membership.as_ref().map(|_| Instant::now());
        let mut outbox = Outbox::new(config.egress);
        outbox.set_obs(EgressObs::new(&obs));
        let mut ledger = TenantLedger::new();
        ledger.set_obs(obs.clone());
        let worker = Worker {
            node_id,
            config,
            rx,
            loopback: tx.clone(),
            endpoints: BTreeMap::new(),
            peer_addrs: HashMap::new(),
            links,
            outbox,
            sweep_pools: SweepPools::new(),
            msg_units: Vec::new(),
            pipeline: Pipeline::new(),
            tenants: TenantMap::default(),
            ledger,
            obs: obs.clone(),
            epoch,
            membership,
            next_member_tick,
            member_events: Arc::clone(&member_events),
            member_snapshot: Arc::clone(&member_snapshot),
            stats: Arc::clone(&stats),
            terminated: Arc::clone(&terminated),
            app_log: Arc::clone(&app_log),
            app_failures: Arc::clone(&app_failures),
            app_handler: None,
            shutting_down: Arc::clone(&shutting_down),
            tracker: Arc::clone(&tracker),
            reaper: Arc::clone(&reaper),
        };
        let loop_handle = std::thread::Builder::new()
            .name(format!("dgc-net-node-{node_id}"))
            .spawn(move || worker.run())
            .expect("spawn node event loop");

        // Threaded engine only: the reactor (which consumed the
        // listener above) serves accepts from its own loop.
        let acceptor_handle = listener.map(|listener| {
            let acceptor = Acceptor {
                ctx: ReaderCtx {
                    node_id,
                    events: tx.clone(),
                    stats: Arc::clone(&stats),
                    tracker: Arc::clone(&tracker),
                    reaper: Arc::clone(&reaper),
                    max_link_pending: config.max_link_pending,
                    auth: config.auth,
                    handshake_timeout: config.handshake_timeout,
                },
                shutting_down: Arc::clone(&shutting_down),
            };
            std::thread::Builder::new()
                .name(format!("dgc-net-accept-{node_id}"))
                .spawn(move || acceptor.run_with(move || listener.accept().map(|(s, _)| s)))
                .expect("spawn acceptor")
        });

        Ok(NetNode {
            node_id,
            addr,
            config,
            incarnation,
            tx,
            next_index: AtomicU32::new(first_index),
            stats,
            obs,
            terminated,
            app_log,
            app_failures,
            member_events,
            member_snapshot,
            shutting_down,
            tracker,
            reaper,
            loop_handle: Some(loop_handle),
            acceptor_handle,
        })
    }

    /// This node's id (the `AoId::node` namespace it allocates from).
    pub fn node_id(&self) -> u32 {
        self.node_id
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers a remote node's listen address; links are established
    /// lazily on first routed message.
    pub fn add_peer(&self, node: u32, addr: SocketAddr) {
        let _ = self.tx.send(Event::AddPeer { node, addr });
    }

    /// The incarnation this node announces (1 for first lives).
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// How many activity indices this node has handed out; a restart
    /// passes this as `first_index` so ids are never reused.
    pub fn allocated(&self) -> u32 {
        self.next_index.load(Ordering::Relaxed)
    }

    /// Bootstraps membership from `seeds` — listen addresses of any
    /// already-running nodes (typically one). Replaces static
    /// registration: a detached dialer per seed sends a join probe
    /// (hello + a one-record anycast gossip digest); the seed learns
    /// `{node id, address}` from the record, replies with its full
    /// directory over the same socket, and anti-entropy spreads the
    /// join. Dialers retry until the directory shows a peer, the node
    /// shuts down, or the attempts run out.
    ///
    /// # Panics
    ///
    /// Panics if the node was bound without `config.membership`.
    pub fn join(&self, seeds: &[SocketAddr]) {
        assert!(
            self.config.membership.is_some(),
            "NetNode::join needs membership enabled in NetConfig"
        );
        let record = NodeRecord {
            node: self.node_id,
            incarnation: self.incarnation,
            status: NodeStatus::Alive,
            addr: Some(self.addr),
        };
        let auth = self.config.auth;
        let handshake_timeout = self.config.handshake_timeout;
        for seed in seeds {
            let seed = *seed;
            let probe_hello = encode_frame(&Frame::Hello {
                node: self.node_id,
                version: PROTOCOL_VERSION,
            });
            // Version 0 is safely below any live engine's counter, so
            // the seed treats the probe as "nothing applied yet" and
            // replies with a full sync.
            let probe_digest = encode_frame(&Frame::Batch(vec![Item::Gossip {
                from: self.node_id,
                to: GOSSIP_ANYCAST,
                digest: Digest {
                    version: 0,
                    ack: 0,
                    full: false,
                    records: vec![record],
                },
            }]));
            let node_id = self.node_id;
            let events = self.tx.clone();
            let stats = Arc::clone(&self.stats);
            let shutting_down = Arc::clone(&self.shutting_down);
            let snapshot = Arc::clone(&self.member_snapshot);
            let handle = std::thread::Builder::new()
                .name(format!("dgc-net-join-{node_id}"))
                .spawn(move || {
                    for _ in 0..40 {
                        if shutting_down.load(Ordering::SeqCst) {
                            return;
                        }
                        let introduced = snapshot
                            .lock()
                            .as_ref()
                            .is_some_and(|records| records.len() > 1);
                        if introduced {
                            return; // some seed already answered
                        }
                        if let Ok(mut stream) =
                            TcpStream::connect_timeout(&seed, Duration::from_millis(500))
                        {
                            let _ = stream.set_nodelay(true);
                            // With auth on, the seed accepts nothing —
                            // the probe digest included — until the
                            // challenge/response after our hello
                            // succeeds. Adopted sockets are therefore
                            // always pre-authenticated.
                            let introduced_ok = stream.write_all(&probe_hello).is_ok()
                                && match auth {
                                    Some(key) => client_auth_handshake(
                                        &mut stream,
                                        key,
                                        handshake_timeout,
                                        &stats,
                                    ),
                                    None => true,
                                };
                            if introduced_ok && stream.write_all(&probe_digest).is_ok() {
                                stats.on_frame_sent(
                                    1,
                                    (probe_hello.len() + probe_digest.len()) as u64,
                                );
                                // The seed replies over this same socket
                                // (its reply path binds to our hello), so
                                // hand it to the transport to read — the
                                // event loop picks the engine-appropriate
                                // way (detached reader or adopted
                                // reactor connection).
                                if events.send(Event::AdoptSocket { stream }).is_err() {
                                    return;
                                }
                            }
                        }
                        // Sliced, so shutdown never waits out the retry.
                        // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
                        let deadline = Instant::now() + Duration::from_millis(250);
                        // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
                        while Instant::now() < deadline {
                            if shutting_down.load(Ordering::SeqCst) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(25));
                        }
                    }
                });
            if let Ok(handle) = handle {
                self.reaper.register(handle);
            }
        }
    }

    /// Membership transitions observed so far (join/suspect/dead/...).
    pub fn membership_events(&self) -> Vec<MembershipEvent> {
        self.member_events.lock().clone()
    }

    /// Snapshot of the membership directory; `None` when the layer is
    /// disabled.
    pub fn member_records(&self) -> Option<Vec<NodeRecord>> {
        self.member_snapshot.lock().clone()
    }

    /// Blocks until `predicate` holds over the membership directory or
    /// the deadline passes; returns whether it held.
    pub fn wait_membership_until(
        &self,
        deadline: Duration,
        predicate: impl Fn(&[NodeRecord]) -> bool,
    ) -> bool {
        poll_until(deadline, || {
            self.member_records().is_some_and(|r| predicate(&r))
        })
    }

    /// Creates an activity on this node (initially busy); returns its id.
    pub fn add_activity(&self) -> AoId {
        let index = self.next_index.fetch_add(1, Ordering::Relaxed);
        let id = AoId::new(self.node_id, index);
        let _ = self.tx.send(Event::AddActivity { id });
        id
    }

    /// Declares `ao` (hosted here) idle or busy.
    pub fn set_idle(&self, ao: AoId, idle: bool) {
        let _ = self.tx.send(Event::SetIdle { ao, idle });
    }

    /// Adds the reference edge `from → to`; `from` must be hosted here.
    pub fn add_ref(&self, from: AoId, to: AoId) {
        let _ = self.tx.send(Event::AddRef { from, to });
    }

    /// Drops the reference edge `from → to`; `from` must be hosted here.
    pub fn drop_ref(&self, from: AoId, to: AoId) {
        let _ = self.tx.send(Event::DropRef { from, to });
    }

    /// Sends an opaque application unit from `from` (hosted here) to
    /// `to`. Application sends are the egress plane's flush trigger:
    /// the destination's queued heartbeats and gossip digests ride the
    /// same frame (`reply = true` payloads travel back over the socket
    /// the peer opened, like DGC responses).
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`crate::frame::MAX_APP_PAYLOAD`] —
    /// rejected here, on the caller's thread, so an oversized payload
    /// can never reach (and kill) a link writer mid-frame.
    pub fn send_app(&self, from: AoId, to: AoId, reply: bool, payload: Vec<u8>) {
        assert!(
            payload.len() <= crate::frame::MAX_APP_PAYLOAD,
            "app payload of {} bytes exceeds MAX_APP_PAYLOAD ({}); \
             stream bulk data on its own connection",
            payload.len(),
            crate::frame::MAX_APP_PAYLOAD
        );
        let _ = self.tx.send(Event::Send {
            item: Item::App {
                from,
                to,
                reply,
                // The worker's tenant map is the authority; the wire
                // field is stamped by the outgoing pipeline.
                tenant: TenantId::DEFAULT.0,
                payload: payload.into(),
            },
        });
    }

    /// Application units delivered to this node so far, in arrival
    /// order. Empty while an [`AppHandler`] is registered — dispatch
    /// replaces the inbox.
    pub fn app_received(&self) -> Vec<AppReceived> {
        self.app_log.lock().clone()
    }

    /// Registers the application dispatch hook: every delivered app
    /// unit runs through `f` on the event loop instead of landing in
    /// the [`NetNode::app_received`] inbox, and the sends `f` returns
    /// are routed through the egress plane immediately.
    pub fn set_app_handler(&self, f: impl FnMut(&AppReceived) -> Vec<AppSend> + Send + 'static) {
        let _ = self.tx.send(Event::SetAppHandler {
            handler: AppHandler::new(f),
        });
    }

    /// Installs the node's envelope middleware pipeline: every app
    /// payload, outgoing and incoming, traverses its stages on the
    /// event loop ([`dgc_plane::Pipeline::standard`] gives the
    /// authenticated, tenant-isolating default).
    pub fn set_pipeline(&self, pipeline: Pipeline) {
        let _ = self.tx.send(Event::SetPipeline { pipeline });
    }

    /// Assigns `ao` to `tenant`'s namespace. Tenancy is a node-local
    /// map over activity ids, so remote activities can (and in a
    /// multi-tenant cluster should) be registered too — the
    /// [`dgc_plane::TenantIsolation`] stage consults it for both ends
    /// of every envelope. [`TenantId::DEFAULT`] unregisters.
    pub fn register_tenant(&self, ao: AoId, tenant: TenantId) {
        let _ = self.tx.send(Event::RegisterTenant { ao, tenant });
    }

    /// The per-tenant app-plane traffic ledger, answered through the
    /// event loop like [`NetNode::egress_stats`]. Each tenant's
    /// counters obey `enqueued = flushed + returned + pending`; `None`
    /// means the event loop did not answer.
    pub fn tenant_snapshot(&self) -> Option<Vec<(TenantId, TenantCounters)>> {
        let (reply, rx) = mpsc::channel();
        self.tx.send(Event::QueryTenants { reply }).ok()?;
        rx.recv_timeout(Duration::from_secs(2)).ok()
    }

    /// Outgoing application units the transport accepted but could not
    /// deliver (departed peer, terminal link without a reply path) —
    /// the send-failure surface of the app plane, in failure order.
    pub fn app_send_failures(&self) -> Vec<AppReceived> {
        self.app_failures.lock().clone()
    }

    /// The egress plane's current occupancy: queued units, queued
    /// bytes, and the earliest flush deadline. Answers through the
    /// event loop, so the snapshot is ordered after everything sent
    /// before the call. Tests use it to assert a departed peer's queue
    /// (and its wakeup) are actually reclaimed; `None` means the event
    /// loop did not answer (gone or wedged) — deliberately *not* an
    /// empty snapshot, so a reclamation test can never pass vacuously
    /// against a dead loop.
    pub fn egress_pending(&self) -> Option<EgressPending> {
        let (reply, rx) = mpsc::channel();
        self.tx.send(Event::QueryEgress { reply }).ok()?;
        rx.recv_timeout(Duration::from_secs(2)).ok()
    }

    /// The egress plane's lifetime counters ([`EgressStats`]), answered
    /// through the event loop like [`NetNode::egress_pending`]. The
    /// conservation tests compare these legacy counters against the
    /// node registry's `egress.*` mirrors; `None` means the event loop
    /// did not answer.
    pub fn egress_stats(&self) -> Option<dgc_core::egress::EgressStats> {
        let (reply, rx) = mpsc::channel();
        self.tx.send(Event::QueryEgressStats { reply }).ok()?;
        rx.recv_timeout(Duration::from_secs(2)).ok()
    }

    /// Graceful departure (no-op without membership): announces
    /// [`NodeStatus::Left`], flushes the farewell digests to every
    /// present peer and stops gossiping. Returns once the farewells
    /// reached the link writers (plus a short grace for the sockets),
    /// so a [`NetNode::shutdown`] right after does not sever them
    /// mid-write. Peers treat the `Left` verdict like a dead one for
    /// collection purposes — the node's referencers are gone — but
    /// without the suspicion delay.
    pub fn leave(&self) -> bool {
        let acked = self
            .leave_begin()
            .is_some_and(|rx| rx.recv_timeout(Duration::from_secs(1)).is_ok());
        if acked {
            // The writers own the sockets; give them a beat to push the
            // farewell frames out before any teardown severs them.
            std::thread::sleep(Duration::from_millis(25));
        }
        acked
    }

    /// The non-blocking half of [`NetNode::leave`]: queues the
    /// departure and returns the ack channel (`None` if the event loop
    /// is already gone). A caller tearing several nodes down — e.g.
    /// `Cluster`'s drop — starts every leave first, then waits the
    /// acks and one shared socket grace, instead of paying the grace
    /// per node.
    pub(crate) fn leave_begin(&self) -> Option<mpsc::Receiver<()>> {
        let (ack, ack_rx) = mpsc::channel();
        self.tx.send(Event::Leave { ack }).ok()?;
        Some(ack_rx)
    }

    /// Stops this node's world until `now + d`: no TTB ticks fire and
    /// no deliveries are processed until the pause ends (the §4.2
    /// local-GC-pause hazard, injectable on demand). The deadline is
    /// anchored *here*, at request time — a busy event loop that
    /// dequeues the request late stalls correspondingly less, it does
    /// not overshoot.
    pub fn pause_for(&self, d: Duration) {
        let _ = self.tx.send(Event::Pause {
            // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
            until: Instant::now() + d,
        });
    }

    /// Clone of the event-loop sender, for in-crate fault schedulers.
    pub(crate) fn event_sender(&self) -> LoopSender {
        self.tx.clone()
    }

    /// Snapshot of terminations recorded on this node.
    pub fn terminated(&self) -> Vec<Terminated> {
        self.terminated.lock().clone()
    }

    /// Transport counters for this node.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.stats.snapshot()
    }

    /// This node's telemetry plane: the registry every layer records
    /// into (`net.*` transport mirrors, `egress.*` flush metrics,
    /// `dgc.*` collection latencies, `member.*` verdict transitions)
    /// plus the tracer ring behind `config.trace`.
    pub fn obs(&self) -> &Registry {
        &self.obs
    }

    /// Blocks until `predicate` holds over this node's termination log
    /// or the deadline passes; returns whether it held.
    pub fn wait_until(
        &self,
        deadline: Duration,
        predicate: impl Fn(&[Terminated]) -> bool,
    ) -> bool {
        poll_until(deadline, || predicate(&self.terminated()))
    }

    /// Stops the event loop, acceptor and link threads and joins them.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        let _ = self.tx.send(Event::Shutdown);
        // Shut every live socket down *before* joining: the event loop
        // join transitively joins writer threads, and a writer blocked
        // in `write_all` against a peer that stopped reading can only
        // be unblocked by killing its connection (each connection's
        // reader registered a clone covering the whole socket).
        self.tracker.shutdown_all();
        if let Some(h) = self.loop_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.acceptor_handle.take() {
            // Wake the blocking accept with a throwaway connection
            // (reactor nodes have no acceptor thread to wake).
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
            let _ = h.join();
        }
        // Again, for connections established during the join window.
        self.tracker.shutdown_all();
        // Everything is unblocked (sockets severed, channels closed):
        // reap the reader/reply/dialer threads so churn leaves nothing.
        self.reaper.join_all();
    }
}

impl Drop for NetNode {
    fn drop(&mut self) {
        if self.loop_handle.is_some() || self.acceptor_handle.is_some() {
            self.stop();
        }
    }
}

/// Everything a socket-side helper (acceptor, reader, reply writer,
/// outbound link) needs from its node: identity, the event-loop
/// ingress, counters, the shutdown socket registry, the thread reaper,
/// and the per-link buffering bound.
#[derive(Clone)]
pub(crate) struct ReaderCtx {
    pub(crate) node_id: u32,
    pub(crate) events: LoopSender,
    pub(crate) stats: Arc<NetStats>,
    pub(crate) tracker: Arc<SocketTracker>,
    pub(crate) reaper: Arc<ThreadReaper>,
    pub(crate) max_link_pending: usize,
    /// When set, accepted connections must complete the `dgc-plane`
    /// challenge/response after their hello before any item passes.
    pub(crate) auth: Option<AuthKey>,
    /// Bound on how long an accepted connection may idle before its
    /// hello (and auth handshake, if any) completes.
    pub(crate) handshake_timeout: Duration,
}

/// The threaded engine's accept loop (the reactor serves accepts from
/// its readiness loop instead).
struct Acceptor {
    ctx: ReaderCtx,
    shutting_down: Arc<AtomicBool>,
}

impl Acceptor {
    /// Runs the accept loop with its accept source injected, so tests
    /// can feed it transient errors without exhausting real
    /// descriptors. Production passes `listener.accept()`.
    ///
    /// A failed accept backs off ([`AcceptBackoff`]) instead of either
    /// busy-looping or — the bug this replaces — ending inbound
    /// connectivity forever while the node looks healthy. The wait is
    /// sliced so shutdown never waits out a backoff.
    fn run_with(self, mut accept: impl FnMut() -> std::io::Result<TcpStream>) {
        let mut backoff = AcceptBackoff::new();
        loop {
            let stream = match accept() {
                Ok(stream) => stream,
                Err(_) => {
                    if self.shutting_down.load(Ordering::SeqCst) {
                        return;
                    }
                    // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
                    let deadline = Instant::now() + backoff.on_error(&self.ctx.stats);
                    // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
                    while Instant::now() < deadline {
                        if self.shutting_down.load(Ordering::SeqCst) {
                            return;
                        }
                        // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
                        let left = deadline.saturating_duration_since(Instant::now());
                        std::thread::sleep(left.min(Duration::from_millis(10)));
                    }
                    continue;
                }
            };
            backoff.on_success();
            if self.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            // Readers exit on EOF/error, which `NetNode::stop` forces
            // via the tracker's `Shutdown::Both`; the reaper joins them.
            spawn_socket_reader(self.ctx.clone(), stream, true);
        }
    }
}

/// Spawns a thread decoding frames off `stream` into the event loop
/// (registered with the node's reaper). Used for both sides of the
/// link topology: accepted connections (`accept_hello = true`,
/// registering a reply path on the peer's hello) and the read half of
/// connections this node *initiated*, which is where the peer's
/// responses and failure notifications arrive.
///
/// Accepted connections are held to `ctx.handshake_timeout`: until the
/// hello — and, with `ctx.auth` set, the challenge/response that
/// follows it — completes, the socket reads under a deadline, and
/// expiry reclaims the slot (`net.handshake_timeouts`) instead of
/// parking a reader thread on a silent peer forever. With auth on, the
/// reply path is registered and items are accepted only *after* the
/// peer proves key possession; a batch before that, a bad MAC, or an
/// out-of-order handshake frame rejects the connection
/// (`net.auth_rejects`) — a link is authenticated or dead, never
/// half-trusted.
pub(crate) fn spawn_socket_reader(ctx: ReaderCtx, stream: TcpStream, accept_hello: bool) {
    let reaper = Arc::clone(&ctx.reaper);
    let handle = std::thread::Builder::new()
        .name(format!("dgc-net-read-{}", ctx.node_id))
        .spawn(move || {
            let mut stream = stream;
            // Registered for the reader's lifetime: node shutdown can
            // unblock this thread, and the entry leaves with it.
            let _tracked = ctx.tracker.register(&stream);
            let mut decoder = FrameDecoder::new();
            let mut chunk = [0u8; 16 * 1024];
            let mut peer: Option<u32> = None;
            // Initiated connections authenticated synchronously before
            // this reader existed (`client_auth_handshake`); accepted
            // ones must still earn it when a key is configured.
            let mut authenticated = !(accept_hello && ctx.auth.is_some());
            let mut responder: Option<Authenticator> = None;
            // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
            let mut deadline = accept_hello.then(|| Instant::now() + ctx.handshake_timeout);
            loop {
                if let Some(d) = deadline {
                    // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        ctx.stats.on_handshake_timeout();
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                    let _ = stream.set_read_timeout(Some(left));
                }
                let n = match stream.read(&mut chunk) {
                    Ok(0) => return,
                    Ok(n) => n,
                    Err(e)
                        if deadline.is_some()
                            && matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                    {
                        ctx.stats.on_handshake_timeout();
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                    Err(_) => return,
                };
                ctx.stats.on_raw_received(n as u64);
                decoder.push(&chunk[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(None) => break,
                        Ok(Some(Frame::Hello { node, version })) => {
                            if version != PROTOCOL_VERSION {
                                ctx.stats.on_decode_error();
                                let _ = stream.shutdown(Shutdown::Both);
                                return;
                            }
                            ctx.stats.on_frame_received(0);
                            if accept_hello && peer.is_none() {
                                peer = Some(node);
                                match ctx.auth {
                                    // The hello names the peer, but the
                                    // reply path waits for its proof.
                                    Some(key) => {
                                        responder =
                                            Some(Authenticator::responder(key, fresh_nonce()));
                                    }
                                    None => {
                                        // Give the event loop a reply
                                        // path over this same socket
                                        // (firewall-transparent).
                                        if let Ok(w) = stream.try_clone() {
                                            let (tx, h) = spawn_reply_writer(&ctx, node, w);
                                            ctx.reaper.register(h);
                                            let _ = ctx.events.send(Event::PeerLink { node, tx });
                                        }
                                        deadline = None;
                                        let _ = stream.set_read_timeout(None);
                                    }
                                }
                            }
                        }
                        Ok(Some(
                            frame @ (Frame::AuthInit { .. }
                            | Frame::AuthChallenge { .. }
                            | Frame::AuthProof { .. }),
                        )) => {
                            ctx.stats.on_frame_received(0);
                            let msg = frame_to_auth(&frame)
                                .expect("auth frames convert to auth messages");
                            // Handshake frames are meaningful exactly
                            // once: on an accepted, hello'd, not yet
                            // authenticated connection of an auth-enabled
                            // node. Anywhere else they are an attack or
                            // a confused peer — same verdict.
                            let Some(machine) = responder.as_mut().filter(|_| !authenticated)
                            else {
                                ctx.stats.on_auth_reject();
                                let _ = stream.shutdown(Shutdown::Both);
                                return;
                            };
                            match machine.on_msg(&msg) {
                                Ok(Step::Send(reply) | Step::SendAndDone(reply)) => {
                                    let bytes = encode_frame(&auth_frame(&reply));
                                    if stream.write_all(&bytes).is_err() {
                                        return;
                                    }
                                    ctx.stats.on_frame_sent(0, bytes.len() as u64);
                                }
                                Ok(Step::Done) => {
                                    authenticated = true;
                                    ctx.stats.on_auth_ok();
                                    let node = peer.expect("hello preceded the handshake");
                                    if let Ok(w) = stream.try_clone() {
                                        let (tx, h) = spawn_reply_writer(&ctx, node, w);
                                        ctx.reaper.register(h);
                                        let _ = ctx.events.send(Event::PeerLink { node, tx });
                                    }
                                    deadline = None;
                                    let _ = stream.set_read_timeout(None);
                                }
                                Err(_) => {
                                    ctx.stats.on_auth_reject();
                                    let _ = stream.shutdown(Shutdown::Both);
                                    return;
                                }
                            }
                        }
                        Ok(Some(Frame::Batch(items))) => {
                            if !authenticated {
                                // No frame item is ever processed from
                                // a peer that has not proven the key.
                                ctx.stats.on_auth_reject();
                                let _ = stream.shutdown(Shutdown::Both);
                                return;
                            }
                            ctx.stats.on_frame_received(items.len() as u64);
                            for item in items {
                                if ctx.events.send(Event::Item(item)).is_err() {
                                    return; // node is shutting down
                                }
                            }
                        }
                        Err(_) => {
                            ctx.stats.on_decode_error();
                            let _ = stream.shutdown(Shutdown::Both);
                            return;
                        }
                    }
                }
            }
        });
    if let Ok(handle) = handle {
        reaper.register(handle);
    }
}

/// A `dgc-plane` handshake message as its wire frame.
pub(crate) fn auth_frame(msg: &AuthMsg) -> Frame {
    match *msg {
        AuthMsg::Init { nonce } => Frame::AuthInit { nonce },
        AuthMsg::Challenge { nonce, mac } => Frame::AuthChallenge { nonce, mac },
        AuthMsg::Proof { mac } => Frame::AuthProof { mac },
    }
}

/// The inverse of [`auth_frame`]; `None` for non-handshake frames.
pub(crate) fn frame_to_auth(frame: &Frame) -> Option<AuthMsg> {
    match *frame {
        Frame::AuthInit { nonce } => Some(AuthMsg::Init { nonce }),
        Frame::AuthChallenge { nonce, mac } => Some(AuthMsg::Challenge { nonce, mac }),
        Frame::AuthProof { mac } => Some(AuthMsg::Proof { mac }),
        _ => None,
    }
}

/// A fresh handshake nonce. Uniqueness is the whole requirement — the
/// MACs cover both sides' nonces, so an attacker without the key gains
/// nothing from predicting one — and a process-wide counter folded
/// through SHA-256 with the wall clock and pid guarantees it without
/// a randomness dependency.
pub(crate) fn fresh_nonce() -> [u8; dgc_plane::NONCE_LEN] {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut seed = [0u8; 24];
    seed[..8].copy_from_slice(&COUNTER.fetch_add(1, Ordering::Relaxed).to_le_bytes());
    // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    seed[8..16].copy_from_slice(&nanos.to_le_bytes());
    seed[16..24].copy_from_slice(&u64::from(std::process::id()).to_le_bytes());
    let digest = hmac::sha256(&seed);
    let mut nonce = [0u8; dgc_plane::NONCE_LEN];
    nonce.copy_from_slice(&digest[..dgc_plane::NONCE_LEN]);
    nonce
}

/// The initiator half of the link handshake, run synchronously on a
/// freshly connected socket right after the hello: `AuthInit` out,
/// `AuthChallenge` in (the responder's MAC verified), `AuthProof` out.
/// Returns whether the link authenticated; every failure mode lands on
/// exactly one counter — `net.handshake_timeouts` for a silent peer,
/// `net.auth_rejects` for a wrong MAC or out-of-protocol frame,
/// `net.decode_errors` for wire garbage — and the caller treats
/// `false` like a failed connect.
pub(crate) fn client_auth_handshake(
    stream: &mut TcpStream,
    key: AuthKey,
    timeout: Duration,
    stats: &NetStats,
) -> bool {
    // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
    let deadline = Instant::now() + timeout;
    let (mut machine, init) = Authenticator::initiator(key, fresh_nonce());
    let init_bytes = encode_frame(&auth_frame(&init));
    if stream.write_all(&init_bytes).is_err() {
        return false;
    }
    stats.on_frame_sent(0, init_bytes.len() as u64);
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 1024];
    loop {
        // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            stats.on_handshake_timeout();
            return false;
        }
        if stream.set_read_timeout(Some(left)).is_err() {
            return false;
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                stats.on_handshake_timeout();
                return false;
            }
            Err(_) => return false,
        };
        stats.on_raw_received(n as u64);
        decoder.push(&chunk[..n]);
        match decoder.next_frame() {
            Ok(None) => continue,
            Ok(Some(frame)) => {
                let Some(msg) = frame_to_auth(&frame) else {
                    // The responder spoke out of protocol (a batch or
                    // hello where its challenge belongs).
                    stats.on_auth_reject();
                    return false;
                };
                match machine.on_msg(&msg) {
                    Ok(Step::SendAndDone(proof)) => {
                        if decoder.pending_bytes() != 0 {
                            // The responder must not say anything more
                            // until it has our proof.
                            stats.on_auth_reject();
                            return false;
                        }
                        let bytes = encode_frame(&auth_frame(&proof));
                        if stream.write_all(&bytes).is_err() {
                            return false;
                        }
                        stats.on_frame_sent(0, bytes.len() as u64);
                        let _ = stream.set_read_timeout(None);
                        stats.on_auth_ok();
                        return true;
                    }
                    _ => {
                        stats.on_auth_reject();
                        return false;
                    }
                }
            }
            Err(_) => {
                stats.on_decode_error();
                return false;
            }
        }
    }
}

/// The worker's link layer: which I/O engine carries its traffic.
enum Links {
    /// Thread-per-link: a writer thread per outbound peer, a reply
    /// channel per inbound connection (plus their detached readers).
    Threaded {
        outbound: HashMap<u32, OutboundLink>,
        reply: HashMap<u32, mpsc::Sender<Vec<Item>>>,
    },
    /// Every socket on the worker's own readiness loop: O(1) threads
    /// regardless of peer count.
    Reactor(Box<Reactor>),
}

struct Worker {
    node_id: u32,
    config: NetConfig,
    rx: mpsc::Receiver<Event>,
    loopback: LoopSender,
    endpoints: BTreeMap<u32, Endpoint>,
    peer_addrs: HashMap<u32, SocketAddr>,
    links: Links,
    /// The egress plane: every outgoing unit queues here; the flush
    /// policy decides when a destination's queue becomes a frame.
    outbox: Outbox<Item>,
    /// Per-shard scratch and unit buffers the TTB sweep reuses tick
    /// after tick (`config.sweep_shards` controls the fan-out), plus
    /// the one-message buffer `handle_item` drains per DGC unit — the
    /// event loop's steady state allocates nothing per activity.
    sweep_pools: SweepPools,
    msg_units: Vec<SweepUnit>,
    /// The envelope middleware pipeline every app payload traverses —
    /// outgoing before the egress plane, incoming before delivery.
    /// Empty by default (pass-through); [`Event::SetPipeline`] installs
    /// stages.
    pipeline: Pipeline,
    /// Activity → tenant assignments: the authority the pipeline's
    /// tenant stages consult, and the namespace the DGC reference
    /// graph is partitioned by.
    tenants: TenantMap,
    /// Per-tenant app-plane traffic accounting
    /// (`enqueued = flushed + returned + pending`, per tenant).
    ledger: TenantLedger,
    /// The node's telemetry plane (shared with the handle and, through
    /// `stats`, with every link thread).
    obs: Registry,
    epoch: Instant,
    membership: Option<Membership>,
    next_member_tick: Option<Instant>,
    member_events: Arc<Mutex<Vec<MembershipEvent>>>,
    member_snapshot: Arc<Mutex<Option<Vec<NodeRecord>>>>,
    stats: Arc<NetStats>,
    terminated: Arc<Mutex<Vec<Terminated>>>,
    app_log: Arc<Mutex<Vec<AppReceived>>>,
    app_failures: Arc<Mutex<Vec<AppReceived>>>,
    app_handler: Option<AppHandler>,
    shutting_down: Arc<AtomicBool>,
    tracker: Arc<SocketTracker>,
    reaper: Arc<ThreadReaper>,
}

impl Worker {
    /// The plumbing bundle handed to every socket-side helper the
    /// threaded engine spawns (link writers, readers, reply writers).
    fn reader_ctx(&self) -> ReaderCtx {
        ReaderCtx {
            node_id: self.node_id,
            events: self.loopback.clone(),
            stats: Arc::clone(&self.stats),
            tracker: Arc::clone(&self.tracker),
            reaper: Arc::clone(&self.reaper),
            max_link_pending: self.config.max_link_pending,
            auth: self.config.auth,
            handshake_timeout: self.config.handshake_timeout,
        }
    }

    /// Whether a forward (initiated) link toward `dest` exists.
    fn has_forward_link(&self, dest: u32) -> bool {
        match &self.links {
            Links::Threaded { outbound, .. } => outbound.contains_key(&dest),
            Links::Reactor(r) => r.has_link(dest),
        }
    }

    /// Drops `dest`'s forward link (address change, terminal verdict);
    /// the next routed send re-dials lazily.
    fn drop_forward_link(&mut self, dest: u32) {
        match &mut self.links {
            Links::Threaded { outbound, .. } => {
                outbound.remove(&dest);
            }
            Links::Reactor(r) => r.drop_link(dest),
        }
    }

    /// Severs every path to a departed peer: the forward link and the
    /// reply route of whatever socket it had opened toward us.
    fn drop_peer_links(&mut self, dest: u32) {
        match &mut self.links {
            Links::Threaded { outbound, reply } => {
                outbound.remove(&dest);
                reply.remove(&dest);
            }
            Links::Reactor(r) => r.drop_peer(dest),
        }
    }
    fn now(&self) -> Time {
        Time::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Records a trace event; the detail closure only runs when the
    /// level passes the filter, so disabled tracing allocates nothing.
    fn trace(&self, level: TraceLevel, tag: &'static str, detail: impl FnOnce() -> String) {
        if self.obs.tracer().enabled(level) {
            self.obs.trace(level, tag, detail());
        }
    }

    /// Queues `item` for its destination node on the egress plane (or
    /// loops it back locally). An application unit triggers an
    /// immediate flush — the queued background units piggyback — while
    /// heartbeats, digests and control units wait out the policy's
    /// `max_delay` for company.
    fn route(&mut self, item: Item) {
        let dest = item.destination_node();
        if dest == self.node_id {
            let _ = self.loopback.send(Event::Item(item));
            return;
        }
        let now = self.now();
        let class = item.class();
        let size = item.wire_size();
        if let Some(flush) = self.outbox.enqueue(now, dest, class, size, item) {
            self.deliver_flush(flush);
        }
    }

    /// Routes one outgoing application payload through the envelope
    /// pipeline and, if it passes, the egress plane. The worker's
    /// tenant map — not the caller, not the wire — decides the
    /// envelope's tenant stamp; rejections (cross-tenant sends, policy
    /// stages) land on the per-tenant ledger, never silently.
    fn route_app(&mut self, from: AoId, to: AoId, reply: bool, payload: Vec<u8>) {
        let mut env = Envelope {
            from,
            to,
            reply,
            tenant: self.tenants.of(from),
            payload,
        };
        let ctx = MiddlewareCtx {
            // Link authentication gates connection setup below this
            // plane: by the time an envelope is routed, its path is
            // authenticated (or the node runs trusted-LAN, auth off).
            link_authenticated: true,
            tenants: &self.tenants,
        };
        match self.pipeline.outgoing(&mut env, &ctx) {
            Verdict::Reject(why) => {
                self.ledger.on_rejected_outgoing(self.tenants.of(env.from));
                self.trace(TraceLevel::Info, "app-reject", || {
                    format!("outgoing {} -> {}: {why}", env.from, env.to)
                });
            }
            Verdict::Continue => {
                self.ledger.on_enqueued(env.tenant);
                if env.to.node == self.node_id {
                    // Loopback payloads never enter the outbox: they
                    // count as flushed the moment they are accepted,
                    // keeping the tenant's conservation law exact.
                    self.ledger.on_flushed(env.tenant);
                }
                self.route(Item::App {
                    from: env.from,
                    to: env.to,
                    reply: env.reply,
                    tenant: env.tenant.0,
                    payload: env.payload.into(),
                });
            }
        }
    }

    /// Flushes every destination whose max-delay expired.
    fn flush_due(&mut self) {
        let now = self.now();
        for flush in self.outbox.poll(now) {
            self.deliver_flush(flush);
        }
    }

    /// Turns one egress flush into link frames, preserving the §2.2
    /// routing discipline per unit: DGC messages and app requests
    /// prefer the forward (initiated) link; responses, reply payloads,
    /// gossip and failure notifications prefer the reply path of the
    /// socket the peer opened to us (the join-probe reply *must* ride
    /// it: the joiner's listen addr may not have merged yet). Units of
    /// one class always take the same path, so per-class FIFO survives
    /// the split.
    fn deliver_flush(&mut self, flush: Flush<Item>) {
        self.trace(TraceLevel::Debug, "flush", || {
            format!(
                "dest {} reason {:?} items {}",
                flush.dest,
                flush.reason,
                flush.items.len()
            )
        });
        if flush.reason == FlushReason::AppSend {
            let riders = flush.items.iter().filter(|i| !i.class.is_app()).count() as u64;
            self.stats.on_piggybacked(riders);
        }
        let dest = flush.dest;
        let mut forward: Vec<Item> = Vec::new();
        let mut back: Vec<Item> = Vec::new();
        for qi in flush.items {
            if let Item::App { tenant, .. } = &qi.item {
                // The unit leaves the egress plane: per-tenant
                // `flushed`. Whatever the link does to it afterwards
                // is a send failure, not a return — the ledger's
                // conservation law counts outbox custody only.
                self.ledger.on_flushed(TenantId(*tenant));
            }
            match &qi.item {
                Item::Dgc { .. } | Item::App { reply: false, .. } => forward.push(qi.item),
                Item::Resp { .. }
                | Item::SendFailure { .. }
                | Item::Gossip { .. }
                | Item::App { reply: true, .. } => back.push(qi.item),
            }
        }
        if !back.is_empty() {
            self.send_batch_reply(dest, back);
        }
        if !forward.is_empty() {
            self.send_batch_forward(dest, forward);
        }
    }

    /// Hands `batch` to the reply writer bound to the socket `dest`
    /// opened toward us; a missing or dead writer (its channel closed)
    /// returns the batch and evicts the stale entry.
    fn try_reply(&mut self, dest: u32, batch: Vec<Item>) -> Result<(), Vec<Item>> {
        match &mut self.links {
            Links::Threaded { reply, .. } => {
                let Some(tx) = reply.get(&dest) else {
                    return Err(batch);
                };
                match tx.send(batch) {
                    Ok(()) => Ok(()),
                    Err(mpsc::SendError(batch)) => {
                        reply.remove(&dest);
                        Err(batch)
                    }
                }
            }
            Links::Reactor(r) => r.queue_reply(dest, batch),
        }
    }

    fn send_batch_reply(&mut self, dest: u32, batch: Vec<Item>) {
        // No live inbound socket from that node: fall back to a
        // forward link if we can reach it at all.
        if let Err(batch) = self.try_reply(dest, batch) {
            self.send_batch_forward(dest, batch);
        }
    }

    fn send_batch_forward(&mut self, dest: u32, batch: Vec<Item>) {
        if !self.has_forward_link(dest) {
            let Some(addr) = self.peer_addrs.get(&dest).copied() else {
                // Whether a missing address condemns the edges depends
                // on the wiring. Static registration: unknown means
                // never — fail the sends so the referencers drop them.
                // Membership: the address may simply not have gossiped
                // in yet, so only a dead/left verdict convicts;
                // otherwise drop the heartbeats silently — the next TTB
                // regenerates them once discovery converges (TTA
                // budgets for far more than a gossip round-trip).
                // Application payloads are never regenerated by the
                // protocol, so they surface as send failures either
                // way instead of silently vanishing.
                let condemned = match &self.membership {
                    Some(engine) => matches!(
                        engine.directory().status_of(dest),
                        Some(s) if !s.is_present()
                    ),
                    None => true,
                };
                let failed: Vec<Item> = batch
                    .into_iter()
                    .filter(|item| {
                        matches!(item, Item::App { .. })
                            || (condemned && matches!(item, Item::Dgc { .. }))
                    })
                    .collect();
                self.fail_items(failed);
                return;
            };
            self.trace(TraceLevel::Info, "link-open", || {
                format!("dial node {dest} at {addr}")
            });
            let ctx = self.reader_ctx();
            match &mut self.links {
                Links::Threaded { outbound, .. } => {
                    outbound.insert(dest, OutboundLink::spawn(dest, addr, self.config, ctx));
                }
                Links::Reactor(r) => r.open_link(dest, addr),
            }
        }
        let result = match &mut self.links {
            Links::Threaded { outbound, .. } => outbound
                .get(&dest)
                .expect("link just ensured")
                .send_batch(batch),
            Links::Reactor(r) => r.queue_forward(dest, batch),
        };
        if let Err(batch) = result {
            // The writer went terminal and exited: its channel is a
            // dead letterbox, not a link. Requests used to vanish into
            // it here — fall back to the socket the peer opened to us
            // (the reverse direction may be perfectly healthy), or
            // fail fast so the caller learns.
            self.drop_forward_link(dest);
            self.reroute_or_fail(dest, batch);
        }
    }

    /// Last-resort delivery for a batch whose forward link is dead:
    /// the peer's reply socket if one is live, the send-failure path
    /// otherwise. Never tries the forward direction again — that is
    /// what just failed.
    fn reroute_or_fail(&mut self, dest: u32, batch: Vec<Item>) {
        if let Err(batch) = self.try_reply(dest, batch) {
            self.fail_items(batch);
        }
    }

    /// Surfaces undeliverable units as send failures. DGC messages
    /// notify the local referencer (it must drop the dead edge), app
    /// payloads land in the [`NetNode::app_send_failures`] log; every
    /// lost unit is counted, none vanishes unrecorded.
    fn fail_items(&mut self, items: Vec<Item>) {
        for item in items {
            match item {
                Item::Dgc { from, to, .. } => {
                    let _ = self.loopback.send(Event::Item(Item::SendFailure {
                        holder: from,
                        target: to,
                    }));
                    self.stats.on_send_failures(1);
                }
                Item::App {
                    from,
                    to,
                    reply,
                    payload,
                    ..
                } => {
                    self.app_failures.lock().push(AppReceived {
                        from,
                        to,
                        reply,
                        payload: payload.into_vec(),
                    });
                    self.stats.on_send_failures(1);
                }
                // Responses, digests and relayed failure notifications
                // have no local caller to notify; the loss still counts
                // so a degraded link shows in the stats.
                Item::Resp { .. } | Item::SendFailure { .. } | Item::Gossip { .. } => {
                    self.stats.on_send_failures(1);
                }
            }
        }
    }

    /// Reclaims the egress queue of a **departed** peer (dead/left
    /// verdict, terminal transport conviction): the queue, its bytes
    /// and its flush deadline are dropped in one motion, and whatever
    /// was waiting surfaces as send failures. Without this, the outbox
    /// entry of every peer that ever left would live as long as the
    /// node — the Birrell lease-list mistake, reproduced in the plane
    /// built to measure it.
    fn reclaim_egress(&mut self, dest: u32) {
        let stranded: Vec<Item> = self
            .outbox
            .drop_dest(dest)
            .into_iter()
            .map(|qi| qi.item)
            .collect();
        for item in &stranded {
            if let Item::App { tenant, .. } = item {
                // Reclaimed while still in outbox custody: the unit is
                // handed back (`returned`), balancing its `enqueued`.
                self.ledger.on_returned(TenantId(*tenant));
            }
        }
        self.fail_items(stranded);
    }

    /// A link burned through `fail_after_attempts`: stop feeding it
    /// (membership, or a fresh address announcement, decides if it ever
    /// comes back), try the peer's reply socket for whatever the dead
    /// writer handed back — the *forward* direction is what failed, and
    /// asymmetric failures are §2.2's normal case — then let membership
    /// adjudicate, or treat the verdict as terminal without it.
    fn on_peer_unreachable(&mut self, node: u32, unsent: Vec<Item>) {
        self.trace(TraceLevel::Info, "link-terminal", || {
            format!("node {node} unreachable, {} unsent", unsent.len())
        });
        self.drop_forward_link(node);
        if !unsent.is_empty() {
            self.reroute_or_fail(node, unsent);
        }
        let now = self.now();
        match &mut self.membership {
            Some(engine) => {
                engine.on_peer_unreachable(now, node);
                self.drain_member_events();
            }
            None => {
                // No membership layer to adjudicate: the transport's
                // verdict is terminal, not an endless retry — so the
                // peer's egress queue is reclaimed here too, not just
                // its link.
                self.reclaim_egress(node);
                for ep in self.endpoints.values_mut() {
                    ep.state.on_node_dead(node);
                }
            }
        }
    }

    fn apply_actions(&mut self, who: AoId, actions: Vec<Action>) {
        for action in actions {
            self.apply_action(who, action);
        }
    }

    fn apply_action(&mut self, who: AoId, action: Action) {
        match action {
            Action::SendMessage { to, message } => self.route(Item::Dgc {
                from: who,
                to,
                message,
            }),
            Action::SendResponse { to, response } => self.route(Item::Resp {
                from: who,
                to,
                response,
            }),
            Action::Terminate { reason } => {
                self.endpoints.remove(&who.index);
                self.trace(TraceLevel::Info, "terminate", || {
                    format!("ao {who} ({reason:?})")
                });
                self.terminated.lock().push(Terminated { ao: who, reason });
            }
            _ => {}
        }
    }

    fn handle_item(&mut self, item: Item) {
        // A unit addressed to a different node must never be applied
        // here: endpoints are keyed by index, so a misrouted item from
        // a buggy or hostile peer would otherwise mutate an unrelated
        // local activity. Answer misaddressed messages with a send
        // failure (the protocol's self-healing path) and drop the rest.
        // The one legitimate exception is an *anycast* gossip digest: a
        // join probe dialed our address before knowing our node id.
        let anycast_probe = matches!(item, Item::Gossip { to, .. } if to == GOSSIP_ANYCAST);
        if !anycast_probe && item.destination_node() != self.node_id {
            self.stats.on_decode_error();
            if let Item::Dgc { from, to, .. } = item {
                self.route(Item::SendFailure {
                    holder: from,
                    target: to,
                });
            }
            return;
        }
        let now = self.now();
        match item {
            Item::Dgc { from, to, message } => match self.endpoints.get_mut(&to.index) {
                Some(ep) => {
                    let mut units = std::mem::take(&mut self.msg_units);
                    ep.state.on_message_into(now, &message, &mut units);
                    for unit in units.drain(..) {
                        self.apply_action(unit.from, unit.action);
                    }
                    self.msg_units = units;
                }
                None => {
                    // Target is gone: tell the sending node.
                    self.route(Item::SendFailure {
                        holder: from,
                        target: to,
                    });
                }
            },
            Item::Resp { from, to, response } => {
                if let Some(ep) = self.endpoints.get_mut(&to.index) {
                    let idle = ep.idle;
                    let actions = ep.state.on_response(now, from, &response, idle);
                    self.apply_actions(to, actions);
                }
            }
            Item::SendFailure { holder, target } => {
                if let Some(ep) = self.endpoints.get_mut(&holder.index) {
                    ep.state.on_send_failure(target);
                }
            }
            Item::Gossip { from, digest, .. } => self.handle_gossip(from, digest),
            Item::App {
                from,
                to,
                reply,
                tenant,
                payload,
            } => {
                let mut env = Envelope {
                    from,
                    to,
                    reply,
                    tenant: TenantId(tenant),
                    payload: payload.into_vec(),
                };
                let ctx = MiddlewareCtx {
                    // Unauthenticated sockets never get this far: with
                    // auth configured the transport rejects their
                    // frames before any item reaches the loop.
                    link_authenticated: true,
                    tenants: &self.tenants,
                };
                if let Verdict::Reject(why) = self.pipeline.incoming(&mut env, &ctx) {
                    self.ledger.on_rejected_incoming(env.tenant);
                    self.trace(TraceLevel::Info, "app-reject", || {
                        format!("incoming {} -> {}: {why}", env.from, env.to)
                    });
                    return;
                }
                let received = AppReceived {
                    from: env.from,
                    to: env.to,
                    reply: env.reply,
                    payload: env.payload,
                };
                // Registered handlers replace the test inbox: the unit
                // is dispatched on this loop and any sends it produces
                // are routed straight back through the egress plane
                // (taken out for the call so the handler can never
                // observe a half-borrowed worker).
                match self.app_handler.take() {
                    Some(mut handler) => {
                        let outs = (handler.0)(&received);
                        self.app_handler = Some(handler);
                        for out in outs {
                            // Handler sends cross the outgoing pipeline
                            // like any application send would.
                            self.route_app(out.from, out.to, out.reply, out.payload);
                        }
                    }
                    None => {
                        self.app_log.lock().push(received);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    /// Applies one received digest and pushes out whatever the engine
    /// wants answered (introductions, refutations, verdict replies).
    fn handle_gossip(&mut self, from: u32, digest: Digest) {
        let now = self.now();
        let outs = match &mut self.membership {
            Some(engine) => engine.on_digest(now, from, &digest),
            // Static cluster (membership disabled): digests are noise.
            None => return,
        };
        self.flush_gossip(outs);
    }

    /// Converts engine output into wire items from this node.
    fn gossip_item(&self, out: dgc_membership::GossipOut) -> Item {
        Item::Gossip {
            from: self.node_id,
            to: out.to,
            digest: out.digest,
        }
    }

    /// Runs the engine's periodic driver when due (failure detection +
    /// anti-entropy), at half the gossip interval.
    fn membership_due(&mut self) {
        let Some(next) = self.next_member_tick else {
            return;
        };
        // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
        if Instant::now() < next {
            return;
        }
        let now = self.now();
        let (outs, interval) = match (&mut self.membership, self.config.membership) {
            (Some(engine), Some(m)) => (engine.on_tick(now), m.gossip_interval),
            _ => return,
        };
        let half = Duration::from_nanos((interval.as_nanos() / 2).max(1_000_000));
        // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
        self.next_member_tick = Some(Instant::now() + half);
        self.flush_gossip(outs);
    }

    /// Routes outgoing digests and applies the engine's side effects:
    /// learned addresses (re)wire peer links, dead verdicts feed every
    /// hosted collector's send-failure path, and the handle-visible
    /// snapshot/event log are refreshed.
    fn flush_gossip(&mut self, outs: Vec<dgc_membership::GossipOut>) {
        // Address learning first: an out-digest may target a peer whose
        // (new) address only this merge round discovered.
        self.sync_member_addrs();
        for out in outs {
            let item = self.gossip_item(out);
            self.route(item);
        }
        self.drain_member_events();
    }

    /// Learns peers' listen addresses from the directory. An address
    /// change — a rejoined node listens on a fresh port — invalidates
    /// the old outbound link so the next send dials the new address.
    fn sync_member_addrs(&mut self) {
        let Some(engine) = &self.membership else {
            return;
        };
        let mut changed: Vec<(u32, SocketAddr)> = Vec::new();
        for rec in engine.directory().iter() {
            if rec.node == self.node_id {
                continue;
            }
            let Some(addr) = rec.addr else { continue };
            if self.peer_addrs.get(&rec.node) != Some(&addr) {
                changed.push((rec.node, addr));
            }
        }
        for (node, addr) in changed {
            self.peer_addrs.insert(node, addr);
            self.drop_forward_link(node);
        }
    }

    fn drain_member_events(&mut self) {
        let (events, snapshot) = match &mut self.membership {
            Some(engine) => (engine.poll_events(), engine.records()),
            None => return,
        };
        for ev in &events {
            self.trace(TraceLevel::Info, "member", || {
                format!("node {} -> {:?}", ev.node, ev.transition)
            });
            let departed = matches!(ev.transition, Transition::Dead | Transition::Left)
                && ev.node != self.node_id;
            if departed {
                // A dead verdict — or an announced graceful leave,
                // which is the same departure without the suspicion
                // delay — is the terminal send failure, in bulk: every
                // hosted collector treats the node's activities as
                // departed, and its links are torn down (a rejoin
                // re-announces a fresh address).
                for ep in self.endpoints.values_mut() {
                    ep.state.on_node_dead(ev.node);
                }
                self.drop_peer_links(ev.node);
                // And its egress queue goes with it: items, bytes and
                // the flush deadline — queued app units surface as
                // send failures rather than rotting against a corpse.
                self.reclaim_egress(ev.node);
            }
        }
        *self.member_snapshot.lock() = Some(snapshot);
        if !events.is_empty() {
            self.member_events.lock().extend(events);
        }
    }

    fn handle(&mut self, event: Event) -> bool {
        match event {
            Event::Shutdown => {
                // Hand whatever still lingers on the egress plane to
                // the writers; they flush before exiting.
                let flushes = self.outbox.flush_all();
                for flush in flushes {
                    self.deliver_flush(flush);
                }
                return false;
            }
            Event::Send { item } => match item {
                // App payloads cross the envelope pipeline; the wire
                // tenant field is advisory (the node's map decides).
                Item::App {
                    from,
                    to,
                    reply,
                    payload,
                    ..
                } => self.route_app(from, to, reply, payload.into_vec()),
                item => self.route(item),
            },
            Event::Leave { ack } => {
                let now = self.now();
                if let Some(engine) = &mut self.membership {
                    let outs = engine.leave(now);
                    self.flush_gossip(outs);
                    // Farewells must not wait out the egress delay: the
                    // node is about to go.
                    let flushes = self.outbox.flush_all();
                    for flush in flushes {
                        self.deliver_flush(flush);
                    }
                    // Threaded writers flush from their own threads;
                    // the reactor's farewells only *queued* on its
                    // sockets — push them out before acknowledging.
                    if let Links::Reactor(r) = &mut self.links {
                        r.drain(Duration::from_millis(100));
                    }
                    // The engine said goodbye; stop gossiping.
                    self.next_member_tick = None;
                }
                let _ = ack.send(());
            }
            Event::Pause { until } => {
                // A real stop-the-world: this thread owns every endpoint
                // and every tick, so sleeping here stops the protocol on
                // this node while sockets keep queueing into the channel.
                // Sliced so node shutdown (e.g. a test unwinding out of
                // a failed assertion) never waits out a long pause.
                // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
                while Instant::now() < until {
                    if self.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
                    let left = until.saturating_duration_since(Instant::now());
                    std::thread::sleep(left.min(Duration::from_millis(20)));
                }
            }
            Event::Item(item) => self.handle_item(item),
            Event::PeerLink { node, tx } => {
                self.trace(TraceLevel::Info, "reply-link", || {
                    format!("node {node} opened a connection")
                });
                // Reactor nodes track reply routes inside the engine;
                // this event only arrives from threaded-engine readers.
                if let Links::Threaded { reply, .. } = &mut self.links {
                    reply.insert(node, tx);
                }
            }
            Event::PeerUnreachable { node, unsent } => self.on_peer_unreachable(node, unsent),
            Event::AdoptSocket { stream } => {
                if let Links::Reactor(r) = &mut self.links {
                    r.adopt(stream);
                } else {
                    let ctx = self.reader_ctx();
                    spawn_socket_reader(ctx, stream, false);
                }
            }
            Event::Undeliverable {
                node,
                items,
                reroute,
            } => {
                if reroute {
                    self.reroute_or_fail(node, items);
                } else {
                    self.fail_items(items);
                }
            }
            Event::SetAppHandler { handler } => {
                self.app_handler = Some(handler);
            }
            Event::SetPipeline { pipeline } => {
                self.pipeline = pipeline;
            }
            Event::RegisterTenant { ao, tenant } => {
                self.tenants.register(ao, tenant);
            }
            Event::QueryTenants { reply } => {
                let _ = reply.send(self.ledger.snapshot());
            }
            Event::QueryEgress { reply } => {
                let _ = reply.send(EgressPending {
                    items: self.outbox.pending_items(),
                    bytes: self.outbox.pending_bytes(),
                    next_deadline: self.outbox.next_deadline(),
                });
            }
            Event::QueryEgressStats { reply } => {
                let _ = reply.send(self.outbox.stats());
            }
            Event::AddPeer { node, addr } => {
                self.peer_addrs.insert(node, addr);
            }
            Event::AddActivity { id } => {
                let now = self.now();
                self.trace(TraceLevel::Debug, "spawn", || format!("ao {id}"));
                let mut state = DgcState::new(id, now, self.config.dgc);
                state.set_obs(DgcObs::new(&self.obs));
                self.endpoints.insert(
                    id.index,
                    Endpoint {
                        state,
                        idle: false,
                        // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
                        next_tick: Instant::now()
                            + Duration::from_nanos(self.config.dgc.ttb.as_nanos()),
                    },
                );
            }
            Event::SetIdle { ao, idle } => {
                let now = self.now();
                if let Some(ep) = self.endpoints.get_mut(&ao.index) {
                    if idle && !ep.idle {
                        ep.state.on_became_idle(now);
                    }
                    ep.idle = idle;
                }
            }
            Event::AddRef { from, to } => {
                // Tenant isolation extends to the DGC graph itself: a
                // reference edge crossing tenants is refused before any
                // collector learns it, so a tenant's heartbeats, TTB
                // sweeps and verdicts never observe another tenant's
                // activities.
                if self.tenants.of(from) != self.tenants.of(to) {
                    self.ledger.on_rejected_outgoing(self.tenants.of(from));
                    self.trace(TraceLevel::Info, "ref-reject", || {
                        format!("cross-tenant ref {from} -> {to}")
                    });
                } else if let Some(ep) = self.endpoints.get_mut(&from.index) {
                    ep.state.on_stub_deserialized(to);
                }
            }
            Event::DropRef { from, to } => {
                if let Some(ep) = self.endpoints.get_mut(&from.index) {
                    ep.state.on_stubs_collected(to);
                }
            }
        }
        true
    }

    /// Runs every endpoint whose TTB tick is due, as **one batched
    /// sweep**: due endpoints are collected in ascending activity-id
    /// order, ticked through `on_tick_into` (fanning out across
    /// `config.sweep_shards` threads when configured), and every
    /// emitted unit drains into routing afterwards — in exactly the
    /// order a sequential sweep would have produced. All messages
    /// emitted in one sweep are queued before any link flushes, which
    /// is what lets the per-peer writers coalesce a whole sweep into
    /// one frame; the reused scratch buffers are what keep the sweep
    /// allocation-free however many activities are hosted.
    fn tick_due(&mut self) {
        // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
        let now_i = Instant::now();
        let now = self.now();
        let mut due: Vec<(u32, &mut Endpoint)> = self
            .endpoints
            .iter_mut()
            .filter(|(_, ep)| ep.next_tick <= now_i)
            .map(|(idx, ep)| (*idx, ep))
            .collect();
        if due.is_empty() {
            return;
        }
        let mut pools = std::mem::take(&mut self.sweep_pools);
        sweep_sharded(
            &mut due,
            self.config.sweep_shards,
            &mut pools,
            |(_, ep), scratch, units| {
                ep.state.on_tick_into(now, ep.idle, scratch, units);
                ep.next_tick = now_i + Duration::from_nanos(ep.state.current_ttb().as_nanos());
            },
        );
        drop(due);
        for unit in pools.drain_units() {
            self.apply_action(unit.from, unit.action);
        }
        self.sweep_pools = pools;
    }

    /// The earliest instant the worker's own timers need it awake: TTB
    /// ticks, membership gossip, egress flush deadlines.
    fn next_wake(&self) -> Instant {
        let mut next_wake = self
            .endpoints
            .values()
            .map(|e| e.next_tick)
            .min()
            // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
            .unwrap_or_else(|| Instant::now() + Duration::from_millis(50));
        if let Some(t) = self.next_member_tick {
            next_wake = next_wake.min(t);
        }
        if let Some(deadline) = self.outbox.next_deadline() {
            // Egress deadlines live on the scenario clock; convert
            // back to the wall clock the loop sleeps on.
            next_wake = next_wake.min(self.epoch + Duration::from_nanos(deadline.as_nanos()));
        }
        next_wake
    }

    /// The engine's link layer as a reactor, or panics: only the
    /// reactor loop calls this.
    fn reactor_mut(&mut self) -> &mut Reactor {
        match &mut self.links {
            Links::Reactor(r) => r,
            Links::Threaded { .. } => unreachable!("reactor loop over threaded links"),
        }
    }

    fn reactor_deadline(&self) -> Option<Instant> {
        match &self.links {
            Links::Reactor(r) => r.next_deadline(),
            Links::Threaded { .. } => None,
        }
    }

    fn run(mut self) {
        if matches!(self.links, Links::Reactor(_)) {
            self.run_reactor()
        } else {
            self.run_threaded()
        }
    }

    /// The threaded engine's loop turn: park on the event channel (the
    /// link threads do their own I/O) until an event or a timer.
    fn run_threaded(&mut self) {
        loop {
            // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
            let timeout = self.next_wake().saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(timeout) {
                Ok(event) => {
                    if !self.handle(event) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
            self.tick_due();
            self.membership_due();
            self.flush_due();
        }
    }

    /// The reactor engine's loop turn: park in [`Reactor::poll`] —
    /// socket readiness, reactor timers and (via the waker inside
    /// [`LoopSender`]) channel sends all interrupt it — translate the
    /// engine's notices, then drain the channel without blocking.
    fn run_reactor(&mut self) {
        let mut notices: Vec<Notice> = Vec::new();
        loop {
            let mut next_wake = self.next_wake();
            if let Some(d) = self.reactor_deadline() {
                next_wake = next_wake.min(d);
            }
            // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
            let timeout = next_wake.saturating_duration_since(Instant::now());
            self.reactor_mut().poll(timeout, &mut notices);
            for notice in notices.drain(..) {
                match notice {
                    Notice::Item(item) => self.handle_item(item),
                    Notice::PeerUnreachable { node, unsent } => {
                        self.on_peer_unreachable(node, unsent)
                    }
                    Notice::Undeliverable {
                        node,
                        items,
                        reroute,
                    } => {
                        if reroute {
                            self.reroute_or_fail(node, items);
                        } else {
                            self.fail_items(items);
                        }
                    }
                }
            }
            loop {
                match self.rx.try_recv() {
                    Ok(event) => {
                        if !self.handle(event) {
                            // Shutdown flushed the egress plane into the
                            // reactor's queues; give the sockets a
                            // bounded grace to carry it out.
                            self.reactor_mut().drain(Duration::from_millis(300));
                            return;
                        }
                    }
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        self.reactor_mut().drain(Duration::from_millis(300));
                        return;
                    }
                }
            }
            self.tick_due();
            self.membership_due();
            self.flush_due();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::atomic::AtomicUsize;

    /// Transient `accept` errors (the EMFILE / ECONNABORTED family)
    /// must not kill the acceptor: three injected failures precede a
    /// real connection, and the link must still come up — with every
    /// failure landing on the `accept_errors` counter instead of
    /// vanishing.
    #[test]
    fn acceptor_survives_transient_accept_errors() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = mpsc::channel();
        let stats = NetStats::shared();
        let tracker = Arc::new(SocketTracker::default());
        let reaper = Arc::new(ThreadReaper::default());
        let shutting_down = Arc::new(AtomicBool::new(false));
        let acceptor = Acceptor {
            ctx: ReaderCtx {
                node_id: 7,
                events: LoopSender::new(tx, None),
                stats: Arc::clone(&stats),
                tracker: Arc::clone(&tracker),
                reaper: Arc::clone(&reaper),
                max_link_pending: 1024,
                auth: None,
                handshake_timeout: Duration::from_secs(2),
            },
            shutting_down: Arc::clone(&shutting_down),
        };
        let handle = std::thread::spawn(move || {
            let attempts = AtomicUsize::new(0);
            acceptor.run_with(move || {
                if attempts.fetch_add(1, Ordering::SeqCst) < 3 {
                    Err(std::io::Error::other("injected descriptor exhaustion"))
                } else {
                    listener.accept().map(|(s, _)| s)
                }
            })
        });

        // The injected failures cost 10+20+40ms of backoff; the fourth
        // attempt must take the real connection and register a reply
        // path off its hello.
        let client = TcpStream::connect(addr).unwrap();
        (&client)
            .write_all(&encode_frame(&Frame::Hello {
                node: 3,
                version: PROTOCOL_VERSION,
            }))
            .unwrap();
        match rx.recv_timeout(Duration::from_secs(5)) {
            Ok(Event::PeerLink { node, .. }) => assert_eq!(node, 3),
            other => panic!("expected a PeerLink after recovery, got {other:?}"),
        }
        assert_eq!(
            stats.snapshot().accept_errors,
            3,
            "each injected failure must be counted"
        );

        // Teardown: flag shutdown, poke the blocking accept, then
        // unblock and reap the reader/reply-writer pair.
        shutting_down.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
        handle.join().unwrap();
        drop(client);
        drop(rx);
        tracker.shutdown_all();
        reaper.join_all();
    }
}
