//! # dgc-core — a complete distributed garbage collector for activities
//!
//! Sans-io implementation of the DGC of *"Garbage Collecting the Grid: A
//! Complete DGC for Activities"* (Caromel, Chazarain, Henrio — Middleware
//! 2007): a distributed garbage collector for active objects that collects
//! **both acyclic and cyclic** garbage with the per-edge cost profile of
//! the Java/RMI collector.
//!
//! ## The algorithm in one paragraph
//!
//! An activity `x` is garbage iff every activity in the reflexive
//! transitive closure of its *referencers* is idle (equation (1)).
//! Acyclic garbage is found by **reference listing with heartbeats**:
//! referencers send a DGC message every TTB; an idle activity without a
//! message for TTA terminates (§3.1). Cyclic garbage is found by a
//! **consensus on a named Lamport "final activity clock"** carried by
//! those same heartbeats: responses propose the candidate, a reverse
//! spanning tree (children point to parents, respecting firewalls/NATs)
//! funnels the referencers' agreement back to the clock's owner, and the
//! owner — idle, with every recursive referencer agreeing — terminates
//! the cycle (§3.2). The clock is bumped whenever an activity becomes
//! idle, loses a referencer, or loses a referenced edge, which serialises
//! the race between collection and the mutating application.
//!
//! ## Crate layout
//!
//! * [`protocol::DgcState`] — the state machine (Algorithms 1–4);
//! * [`clock::NamedClock`] — the named Lamport clock;
//! * [`message`] — DGC messages/responses and the [`message::Action`]s a
//!   runtime executes;
//! * [`wire`] — the binary codec whose byte counts feed the bandwidth
//!   benchmarks;
//! * [`config::DgcConfig`] — TTB/TTA (safety: `TTA > 2·TTB + MaxComm`),
//!   the §4.3 consensus-propagation optimization, and the paper's §7
//!   extensions (adaptive timing, breadth-first spanning trees);
//! * [`egress`] — the one egress plane: a per-destination outbox that
//!   coalesces heartbeats, gossip digests and application traffic into
//!   shared frames under a flush policy (flush-on-app-send, max-delay,
//!   max-bytes), realized by both runtimes;
//! * [`faults`] — runtime-neutral fault profiles (delay / drop /
//!   partition / pause) that both the simulator and the socket runtime's
//!   chaos proxy replay, so one scenario exercises the §4.2 bound
//!   everywhere;
//! * [`referencers`] / [`referenced`] — the two §2.2 tables;
//! * [`process_graph`] — the §4.1 coarse-grained fallback;
//! * [`harness`] — an in-memory multi-endpoint driver for tests.
//!
//! ## Example: a two-activity garbage cycle
//!
//! ```
//! use dgc_core::config::DgcConfig;
//! use dgc_core::harness::Harness;
//! use dgc_core::units::Dur;
//!
//! let cfg = DgcConfig::builder()
//!     .ttb(Dur::from_secs(30))
//!     .tta(Dur::from_secs(61))
//!     .build();
//! let mut h = Harness::new(Dur::from_millis(10));
//! let a = h.add(cfg);
//! let b = h.add(cfg);
//! h.add_ref(a, b);
//! h.add_ref(b, a);       // a ⇄ b: a distributed cycle
//! h.set_idle(a, true);
//! h.set_idle(b, true);   // … of idle activities: garbage
//! h.run_for(Dur::from_secs(600));
//! assert!(!h.alive(a) && !h.alive(b));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod config;
pub mod egress;
pub mod faults;
pub mod harness;
pub mod id;
#[doc(hidden)]
pub mod legacy;
pub mod message;
pub mod process_graph;
pub mod protocol;
pub mod referenced;
pub mod referencers;
pub mod stats;
pub mod sweep;
pub mod telemetry;
pub mod units;
pub mod wire;

pub use clock::NamedClock;
pub use config::{DgcConfig, DgcConfigBuilder, ParentPolicy, TimingMode};
pub use egress::{EgressClass, EgressObs, EgressStats, Flush, FlushPolicy, FlushReason, Outbox};
pub use faults::{FaultKind, FaultProfile, LinkDisruption, NodeCrash, NodePause, Window};
pub use id::{AoId, AoIdAllocator};
pub use message::{Action, DgcMessage, DgcResponse, TerminateReason};
pub use process_graph::ProcessGraph;
pub use protocol::{DgcState, Phase};
pub use stats::{ClockBumpReason, DgcStats};
pub use sweep::{sweep_sharded, ActionSink, SweepPools, SweepScratch, SweepUnit};
pub use telemetry::DgcObs;
pub use units::{Dur, Time};
