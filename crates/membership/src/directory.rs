//! The membership directory: what one node believes about every node.
//!
//! A [`Directory`] is a conflict-free replicated map of
//! [`NodeRecord`]s. Convergence rests on one total order, the record
//! [`NodeRecord::precedence`]: the pair `(incarnation, status rank)`
//! compared lexicographically. Any two replicas that have seen the same
//! set of records hold the same directory, regardless of delivery order
//! or duplication — which is exactly what lets the deterministic
//! simulator and the socket runtime share this type verbatim.
//!
//! The incarnation number is the anti-zombie device (SWIM's): only the
//! node itself ever *raises* its incarnation. A suspicion or death
//! verdict is pinned to the incarnation it observed, so the accused can
//! always outbid it by re-announcing itself one incarnation higher, and
//! a node that crashes and rejoins under a fresh incarnation cleanly
//! supersedes its own corpse.

use std::collections::BTreeMap;
use std::net::SocketAddr;

/// Liveness verdict carried by a [`NodeRecord`].
///
/// The derived order **is** the merge precedence *within one
/// incarnation*: a death verdict beats a graceful leave beats a
/// suspicion beats plain liveness. Across incarnations the incarnation
/// decides first (see [`NodeRecord::precedence`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeStatus {
    /// Heard from recently (or announced by itself).
    Alive,
    /// Silent past the suspicion timeout; may still refute.
    Suspect,
    /// Announced its own departure (graceful shutdown).
    Left,
    /// Declared dead: silent past the death timeout, or its transport
    /// links failed terminally.
    Dead,
}

impl NodeStatus {
    /// Precedence rank inside one incarnation.
    pub fn rank(self) -> u8 {
        match self {
            NodeStatus::Alive => 0,
            NodeStatus::Suspect => 1,
            NodeStatus::Left => 2,
            NodeStatus::Dead => 3,
        }
    }

    /// True for statuses that still participate in gossip exchanges
    /// (alive or merely suspected).
    pub fn is_present(self) -> bool {
        matches!(self, NodeStatus::Alive | NodeStatus::Suspect)
    }
}

/// One node's entry in the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRecord {
    /// The node id (the `AoId::node` namespace it hosts).
    pub node: u32,
    /// Incarnation the verdict is pinned to; only the node itself may
    /// raise it.
    pub incarnation: u64,
    /// The verdict.
    pub status: NodeStatus,
    /// The node's listen address, when the runtime has one (the socket
    /// runtime gossips real addresses so peers can dial newly
    /// discovered or rejoined nodes; the simulator leaves this `None`).
    pub addr: Option<SocketAddr>,
}

impl NodeRecord {
    /// A fresh alive record.
    pub fn alive(node: u32, incarnation: u64, addr: Option<SocketAddr>) -> NodeRecord {
        NodeRecord {
            node,
            incarnation,
            status: NodeStatus::Alive,
            addr,
        }
    }

    /// The merge order: `(incarnation, status rank)`, lexicographic.
    /// Strictly greater precedence wins a merge; equal precedence is a
    /// duplicate.
    pub fn precedence(&self) -> (u64, u8) {
        (self.incarnation, self.status.rank())
    }
}

/// The effective change a merged record caused, reported as a
/// membership transition (the `MembershipEvent` payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// A node not in the directory before appeared alive.
    Joined,
    /// A known node transitioned (back) to alive: a refuted suspicion
    /// or a crash-rejoin under a higher incarnation.
    Alive,
    /// A node was suspected.
    Suspected,
    /// A node announced a graceful leave.
    Left,
    /// A node was declared dead.
    Dead,
}

fn transition_of(status: NodeStatus, newly_known: bool) -> Transition {
    match status {
        NodeStatus::Alive => {
            if newly_known {
                Transition::Joined
            } else {
                Transition::Alive
            }
        }
        NodeStatus::Suspect => Transition::Suspected,
        NodeStatus::Left => Transition::Left,
        NodeStatus::Dead => Transition::Dead,
    }
}

/// A replicated map of [`NodeRecord`]s with last-writer-wins merge on
/// [`NodeRecord::precedence`]. `BTreeMap` keeps iteration deterministic
/// (the simulator's reproducibility depends on it).
///
/// The directory additionally keeps a **local version counter**, bumped
/// on every effective change, and stamps each record with the version
/// at which it last changed. That is what delta gossip is built on:
/// [`Directory::changed_since`] yields exactly the records a peer that
/// acknowledged version `v` has not seen yet, so a steady-state gossip
/// round carries O(churn) records instead of O(cluster). Versions are
/// local bookkeeping — they never leave the node inside records, and
/// two replicas holding the same records are [equal](PartialEq) whatever
/// their counters say.
#[derive(Debug, Clone, Default, Eq)]
pub struct Directory {
    records: BTreeMap<u32, NodeRecord>,
    /// Bumped on every effective change (new record, precedence win,
    /// or a contributed address).
    version: u64,
    /// Per-node version at which the record last changed.
    stamps: BTreeMap<u32, u64>,
}

impl PartialEq for Directory {
    /// Replica equality is about the *records*: version counters are
    /// local delta-gossip bookkeeping and differ by merge order even
    /// between converged replicas.
    fn eq(&self, other: &Directory) -> bool {
        self.records == other.records
    }
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Merges `rec`, returning the [`Transition`] it caused — `None`
    /// when the record lost (stale) or changed nothing visible.
    ///
    /// Address handling is orthogonal to the verdict: a winning record
    /// without an address keeps the one already known, and a record
    /// that ties on precedence may still contribute an address we lack
    /// (the simulator gossips address-free records; the socket runtime
    /// must never *lose* an address to them).
    pub fn merge(&mut self, rec: &NodeRecord) -> Option<Transition> {
        let (changed, transition) = match self.records.get_mut(&rec.node) {
            None => {
                self.records.insert(rec.node, *rec);
                (true, Some(transition_of(rec.status, true)))
            }
            Some(cur) => {
                if rec.precedence() > cur.precedence() {
                    let status_changed = rec.status != cur.status;
                    let addr = rec.addr.or(cur.addr);
                    *cur = NodeRecord { addr, ..*rec };
                    (
                        true,
                        status_changed.then(|| transition_of(rec.status, false)),
                    )
                } else if rec.precedence() == cur.precedence()
                    && cur.addr.is_none()
                    && rec.addr.is_some()
                {
                    // An address contribution is a visible change too:
                    // peers behind this version still need to learn it.
                    cur.addr = rec.addr;
                    (true, None)
                } else {
                    (false, None)
                }
            }
        };
        if changed {
            self.version += 1;
            self.stamps.insert(rec.node, self.version);
        }
        transition
    }

    /// The local version counter: how many effective changes this
    /// replica has applied.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The records that changed after local version `since`, in node-id
    /// order — the payload of a delta digest toward a peer that
    /// acknowledged `since`. `changed_since(0)` is the full directory.
    pub fn changed_since(&self, since: u64) -> Vec<NodeRecord> {
        self.records
            .iter()
            .filter(|(node, _)| self.stamps.get(node).copied().unwrap_or(0) > since)
            .map(|(_, rec)| *rec)
            .collect()
    }

    /// The record for `node`, if any.
    pub fn get(&self, node: u32) -> Option<&NodeRecord> {
        self.records.get(&node)
    }

    /// True if `node` has a record.
    pub fn contains(&self, node: u32) -> bool {
        self.records.contains_key(&node)
    }

    /// The known listen address of `node`.
    pub fn addr_of(&self, node: u32) -> Option<SocketAddr> {
        self.records.get(&node).and_then(|r| r.addr)
    }

    /// The status of `node`, if known.
    pub fn status_of(&self, node: u32) -> Option<NodeStatus> {
        self.records.get(&node).map(|r| r.status)
    }

    /// All records, in node-id order (the gossip digest).
    pub fn records(&self) -> Vec<NodeRecord> {
        self.records.values().copied().collect()
    }

    /// Iterates records in node-id order.
    pub fn iter(&self) -> impl Iterator<Item = &NodeRecord> {
        self.records.values()
    }

    /// Number of known nodes (any status).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is known.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Ids of nodes currently believed alive.
    pub fn alive_nodes(&self) -> Vec<u32> {
        self.records
            .values()
            .filter(|r| r.status == NodeStatus::Alive)
            .map(|r| r.node)
            .collect()
    }

    /// Ids of nodes still gossip-worthy (alive or suspect).
    pub fn present_nodes(&self) -> Vec<u32> {
        self.records
            .values()
            .filter(|r| r.status.is_present())
            .map(|r| r.node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u32, inc: u64, status: NodeStatus) -> NodeRecord {
        NodeRecord {
            node,
            incarnation: inc,
            status,
            addr: None,
        }
    }

    #[test]
    fn first_record_joins() {
        let mut d = Directory::new();
        assert_eq!(
            d.merge(&rec(1, 1, NodeStatus::Alive)),
            Some(Transition::Joined)
        );
        assert_eq!(d.merge(&rec(1, 1, NodeStatus::Alive)), None, "duplicate");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn same_incarnation_orders_by_severity() {
        let mut d = Directory::new();
        d.merge(&rec(1, 1, NodeStatus::Alive));
        assert_eq!(
            d.merge(&rec(1, 1, NodeStatus::Suspect)),
            Some(Transition::Suspected)
        );
        assert_eq!(d.merge(&rec(1, 1, NodeStatus::Alive)), None, "stale alive");
        assert_eq!(
            d.merge(&rec(1, 1, NodeStatus::Dead)),
            Some(Transition::Dead)
        );
        assert_eq!(
            d.merge(&rec(1, 1, NodeStatus::Suspect)),
            None,
            "dead is final at this incarnation"
        );
    }

    #[test]
    fn higher_incarnation_refutes_and_rejoins() {
        let mut d = Directory::new();
        d.merge(&rec(1, 1, NodeStatus::Alive));
        d.merge(&rec(1, 1, NodeStatus::Suspect));
        // Refutation: the node re-announces itself one incarnation up.
        assert_eq!(
            d.merge(&rec(1, 2, NodeStatus::Alive)),
            Some(Transition::Alive)
        );
        // Death verdict at incarnation 2, then a crash-rejoin at 3.
        assert_eq!(
            d.merge(&rec(1, 2, NodeStatus::Dead)),
            Some(Transition::Dead)
        );
        assert_eq!(
            d.merge(&rec(1, 3, NodeStatus::Alive)),
            Some(Transition::Alive)
        );
        assert_eq!(d.status_of(1), Some(NodeStatus::Alive));
    }

    #[test]
    fn merge_is_order_independent() {
        let records = [
            rec(1, 1, NodeStatus::Alive),
            rec(1, 1, NodeStatus::Suspect),
            rec(1, 2, NodeStatus::Alive),
            rec(2, 5, NodeStatus::Dead),
            rec(2, 4, NodeStatus::Alive),
        ];
        let mut fwd = Directory::new();
        for r in &records {
            fwd.merge(r);
        }
        let mut rev = Directory::new();
        for r in records.iter().rev() {
            rev.merge(r);
        }
        assert_eq!(fwd, rev, "directories are CRDTs: order must not matter");
        assert_eq!(fwd.status_of(1), Some(NodeStatus::Alive));
        assert_eq!(fwd.status_of(2), Some(NodeStatus::Dead));
    }

    #[test]
    fn addresses_survive_addressless_winners_and_fill_ties() {
        let addr: SocketAddr = "127.0.0.1:4000".parse().unwrap();
        let mut d = Directory::new();
        d.merge(&NodeRecord {
            addr: Some(addr),
            ..rec(1, 1, NodeStatus::Alive)
        });
        // A simulator-style addressless suspicion must not erase it.
        d.merge(&rec(1, 1, NodeStatus::Suspect));
        assert_eq!(d.addr_of(1), Some(addr));
        // A tie on precedence may still contribute a missing address.
        let mut d2 = Directory::new();
        d2.merge(&rec(2, 1, NodeStatus::Alive));
        d2.merge(&NodeRecord {
            addr: Some(addr),
            ..rec(2, 1, NodeStatus::Alive)
        });
        assert_eq!(d2.addr_of(2), Some(addr));
    }

    #[test]
    fn version_counts_effective_changes_and_deltas_track_them() {
        let mut d = Directory::new();
        assert_eq!(d.version(), 0);
        d.merge(&rec(1, 1, NodeStatus::Alive));
        assert_eq!(d.version(), 1);
        d.merge(&rec(1, 1, NodeStatus::Alive)); // duplicate: no change
        assert_eq!(d.version(), 1);
        d.merge(&rec(2, 1, NodeStatus::Alive));
        d.merge(&rec(1, 1, NodeStatus::Suspect));
        assert_eq!(d.version(), 3);
        // A peer that acked version 2 only needs node 1's suspicion.
        let delta = d.changed_since(2);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].node, 1);
        assert_eq!(delta[0].status, NodeStatus::Suspect);
        // Version 0 means everything; current version means nothing.
        assert_eq!(d.changed_since(0).len(), 2);
        assert!(d.changed_since(d.version()).is_empty());
        // A stale record changes nothing and bumps nothing.
        d.merge(&rec(1, 1, NodeStatus::Alive));
        assert_eq!(d.version(), 3);
    }

    #[test]
    fn address_contribution_bumps_the_version() {
        let addr: SocketAddr = "127.0.0.1:4000".parse().unwrap();
        let mut d = Directory::new();
        d.merge(&rec(1, 1, NodeStatus::Alive));
        let v = d.version();
        // Same precedence, but now with an address: peers must relearn.
        d.merge(&NodeRecord {
            addr: Some(addr),
            ..rec(1, 1, NodeStatus::Alive)
        });
        assert_eq!(d.version(), v + 1);
        assert_eq!(d.changed_since(v)[0].addr, Some(addr));
        // An addressless tie afterwards is a no-op again.
        d.merge(&rec(1, 1, NodeStatus::Alive));
        assert_eq!(d.version(), v + 1);
    }

    #[test]
    fn membership_sets_reflect_status() {
        let mut d = Directory::new();
        d.merge(&rec(0, 1, NodeStatus::Alive));
        d.merge(&rec(1, 1, NodeStatus::Suspect));
        d.merge(&rec(2, 1, NodeStatus::Dead));
        d.merge(&rec(3, 1, NodeStatus::Left));
        assert_eq!(d.alive_nodes(), vec![0]);
        assert_eq!(d.present_nodes(), vec![0, 1]);
        assert_eq!(d.len(), 4);
    }
}
