//! The **reactor** I/O engine: every socket of a node, one readiness
//! loop, zero per-peer threads.
//!
//! The threaded engine ([`crate::peer`]) spends ~3 OS threads per peer
//! (writer, reply writer, detached reader); past a few hundred peers
//! that is the transport's scaling ceiling. This module keeps the exact
//! link semantics — hello-first handshake, forward/reply routing
//! discipline (§2.2 firewall transparency), exponential backoff with
//! terminal conviction after `fail_after_attempts`, bounded per-link
//! buffering with app-item salvage — but drives all of it from the
//! node's own event-loop thread over nonblocking sockets and a
//! [`polling::Poller`] (epoll on Linux, portable emulation elsewhere).
//!
//! The worker calls [`Reactor::poll`] instead of parking on its event
//! channel; cross-thread senders nudge the loop through the poller's
//! [`polling::Waker`]. Everything the reactor cannot decide alone —
//! delivering items, convicting peers, rerouting salvage — surfaces as
//! a [`Notice`] for the worker, mirroring the events the threaded
//! engine's link threads send.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dgc_plane::{Authenticator, Step};
use polling::{Interest, PollEvent, Poller, Waker};

use crate::config::NetConfig;
use crate::frame::{
    encode_batch_frame, encode_frame, split_len, Frame, FrameDecoder, Item, PROTOCOL_VERSION,
};
use crate::node::{auth_frame, frame_to_auth, fresh_nonce, AcceptBackoff};
use crate::stats::NetStats;

/// Poller key of the listening socket.
const TOKEN_LISTENER: usize = 0;
/// Poller key of the cross-thread waker.
const TOKEN_WAKER: usize = 1;
/// First key handed to connections; keys are never reused, so a stale
/// event for a dead connection simply misses in the map.
const TOKEN_BASE: usize = 2;

/// How long an in-flight nonblocking connect may take before it counts
/// as a failed attempt (the threaded engine's `connect_timeout`).
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);
/// How long a connection may sit write-blocked with data pending before
/// it is declared dead (the threaded engine's write timeout): a peer
/// that accepts but never reads must not hoard frames forever.
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(5);
/// Read buffer per syscall, matching the threaded reader's chunk size.
const READ_CHUNK: usize = 16 * 1024;
/// Most read syscalls served per readiness event, so one firehose
/// connection cannot starve the rest of the loop (level-triggered
/// polling re-reports whatever is left).
const MAX_READS_PER_EVENT: usize = 16;

/// What the reactor needs the worker to handle — the same decisions the
/// threaded engine's link threads send as loop events.
pub(crate) enum Notice {
    /// A decoded protocol unit addressed to this node.
    Item(Item),
    /// `fail_after_attempts` consecutive failures convicted the peer;
    /// `unsent` is everything still queued for it.
    PeerUnreachable {
        /// The convicted peer.
        node: u32,
        /// Items the link never managed to write.
        unsent: Vec<Item>,
    },
    /// Items a dying or overloaded connection could not carry. With
    /// `reroute` the worker may retry them over the peer's other path;
    /// without it they fail outright (retrying could reorder around
    /// what a reconnecting peer will deliver).
    Undeliverable {
        /// The peer the items were addressed to.
        node: u32,
        /// The salvaged items.
        items: Vec<Item>,
        /// Whether rerouting over another path is safe.
        reroute: bool,
    },
}

/// Which side opened the connection — decides routing and salvage.
enum ConnKind {
    /// Accepted from the listener: carries the peer's forward traffic
    /// in, our replies out (once its hello names the peer).
    Inbound,
    /// Dialed by [`Reactor::open_link`]: carries our forward traffic
    /// out, the peer's replies in. Failure feeds the link's backoff.
    Outbound,
    /// Handed over by a join-probe dialer: read-only gossip tail.
    Adopted,
}

/// One frame mid-write: the encoded bytes, how far the socket got, and
/// the items to salvage if the connection dies before completion.
struct PendingFrame {
    bytes: Vec<u8>,
    written: usize,
    /// Item count, for `on_frame_sent` accounting (0 for hellos).
    items: u64,
    salvage: Vec<Item>,
}

/// A registered nonblocking connection and its codec state.
struct Conn {
    stream: TcpStream,
    kind: ConnKind,
    /// Peer node id: always known for outbound conns, learned from the
    /// hello on inbound ones.
    peer: Option<u32>,
    decoder: FrameDecoder,
    /// Items accepted but not yet framed.
    queue: VecDeque<Item>,
    /// Frames in flight (at most a hello plus one data frame).
    wire: VecDeque<PendingFrame>,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// A nonblocking connect is still in flight.
    connecting: bool,
    connect_deadline: Option<Instant>,
    /// Set while a write sits in `WouldBlock`; expiry kills the conn.
    stall_deadline: Option<Instant>,
    /// Whether frame items may cross this connection. `true` from
    /// birth on the trusted-LAN path (no key configured) and on
    /// adopted join-probe sockets (their dialer authenticated
    /// synchronously); earned through the challenge/response
    /// otherwise. A batch on an unearned connection kills it.
    authenticated: bool,
    /// The handshake state machine mid-flight: the responder on
    /// accepted connections, the initiator on dialed ones.
    machine: Option<Authenticator>,
    /// Accepted and freshly connected sockets must complete their
    /// hello (and handshake, with auth on) before this; expiry
    /// reclaims the slot and counts `net.handshake_timeouts`.
    handshake_deadline: Option<Instant>,
}

impl Conn {
    /// A read-only registration for an accepted or adopted socket.
    fn reader(stream: TcpStream, kind: ConnKind) -> Conn {
        Conn {
            stream,
            kind,
            peer: None,
            decoder: FrameDecoder::new(),
            queue: VecDeque::new(),
            wire: VecDeque::new(),
            interest: Interest::READ,
            connecting: false,
            connect_deadline: None,
            stall_deadline: None,
            authenticated: true,
            machine: None,
            handshake_deadline: None,
        }
    }

    /// Bytes or items still waiting to go out.
    fn has_unsent(&self) -> bool {
        !self.wire.is_empty() || !self.queue.is_empty()
    }
}

/// Connection state of an outbound link.
#[derive(Clone, Copy)]
enum LinkState {
    /// A connection exists (possibly still connecting) under `token`.
    Wired { token: usize },
    /// Waiting out a reconnect backoff; redialed at `until` if traffic
    /// is parked, or lazily on the next send.
    Backoff { until: Instant },
}

/// An outbound link: the reactor's analogue of a threaded
/// [`crate::peer::OutboundLink`], minus the thread.
struct OutLink {
    addr: SocketAddr,
    state: LinkState,
    /// Consecutive failed attempts; a fully written frame resets it.
    failed_attempts: u32,
    /// Whether the link ever completed a connect (for reconnect stats).
    ever_connected: bool,
    /// Items queued while no connection exists.
    parked: VecDeque<Item>,
}

/// The engine: owns the listener, every connection, all outbound link
/// state, and the poller that multiplexes them on one thread.
pub(crate) struct Reactor {
    node_id: u32,
    config: NetConfig,
    stats: Arc<NetStats>,
    poller: Poller,
    waker: Arc<Waker>,
    listener: TcpListener,
    /// Set while the listener is unhooked after an accept error; it is
    /// re-registered when the backoff expires.
    listener_resume: Option<Instant>,
    accept_backoff: AcceptBackoff,
    next_token: usize,
    conns: HashMap<usize, Conn>,
    links: HashMap<u32, OutLink>,
    /// peer node → token of the inbound conn its replies travel on.
    reply_routes: HashMap<u32, usize>,
    /// Reused event buffer for `Poller::wait`.
    events: Vec<PollEvent>,
    /// Notices accumulated since the worker last drained them.
    pending: Vec<Notice>,
}

fn earlier(a: Option<Instant>, b: Instant) -> Option<Instant> {
    Some(match a {
        Some(a) => a.min(b),
        None => b,
    })
}

/// Bounded buffering (`NetConfig::max_link_pending`), shared by parked
/// and wired queues: drop the oldest items, but surface shed app
/// payloads — the protocol regenerates heartbeats and digests, never
/// application units.
fn shed_overflow(queue: &mut VecDeque<Item>, max: usize, pending: &mut Vec<Notice>, node: u32) {
    if queue.len() <= max {
        return;
    }
    let mut shed_app = Vec::new();
    while queue.len() > max {
        if let Some(old) = queue.pop_front() {
            if matches!(old, Item::App { .. }) {
                shed_app.push(old);
            }
        }
    }
    if !shed_app.is_empty() {
        pending.push(Notice::Undeliverable {
            node,
            items: shed_app,
            reroute: false,
        });
    }
}

impl Reactor {
    /// Takes ownership of the node's (already bound) listener and opens
    /// the poller. The listener goes nonblocking; accepts are served
    /// from [`Reactor::poll`].
    pub(crate) fn new(
        node_id: u32,
        listener: TcpListener,
        config: NetConfig,
        stats: Arc<NetStats>,
    ) -> std::io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(&listener, TOKEN_LISTENER, Interest::READ)?;
        let waker = Arc::new(poller.waker(TOKEN_WAKER)?);
        Ok(Reactor {
            node_id,
            config,
            stats,
            poller,
            waker,
            listener,
            listener_resume: None,
            accept_backoff: AcceptBackoff::new(),
            next_token: TOKEN_BASE,
            conns: HashMap::new(),
            links: HashMap::new(),
            reply_routes: HashMap::new(),
            events: Vec::new(),
            pending: Vec::new(),
        })
    }

    /// Handle event senders use to interrupt a parked [`Reactor::poll`].
    pub(crate) fn waker(&self) -> Arc<Waker> {
        Arc::clone(&self.waker)
    }

    /// Whether an outbound link toward `dest` exists (wired or backing
    /// off) — the reactor's analogue of the threaded outbound map's
    /// `contains_key`.
    pub(crate) fn has_link(&self, dest: u32) -> bool {
        self.links.contains_key(&dest)
    }

    /// Ensures an outbound link toward `dest` at `addr`, dialing
    /// immediately. No-op if one already exists.
    pub(crate) fn open_link(&mut self, dest: u32, addr: SocketAddr) {
        if self.links.contains_key(&dest) {
            return;
        }
        self.links.insert(
            dest,
            OutLink {
                addr,
                state: LinkState::Backoff {
                    // dgc-analysis: allow(wall-clock): the reactor times out real sockets in wall time
                    until: Instant::now(),
                },
                failed_attempts: 0,
                ever_connected: false,
                parked: VecDeque::new(),
            },
        );
        self.dial(dest);
    }

    /// Queues forward items (heartbeats, requests, anycast gossip) on
    /// `dest`'s link and pushes whatever the socket will take right
    /// now. `Err` hands the batch back: no link exists (the caller
    /// reroutes or fails the items, as with a closed threaded channel).
    pub(crate) fn queue_forward(&mut self, dest: u32, batch: Vec<Item>) -> Result<(), Vec<Item>> {
        let Some(link) = self.links.get_mut(&dest) else {
            return Err(batch);
        };
        match link.state {
            LinkState::Wired { token } => {
                let conn = self
                    .conns
                    .get_mut(&token)
                    .expect("wired link state implies a live conn");
                conn.queue.extend(batch);
                shed_overflow(
                    &mut conn.queue,
                    self.config.max_link_pending,
                    &mut self.pending,
                    dest,
                );
                self.flush_token(token);
            }
            LinkState::Backoff { until } => {
                link.parked.extend(batch);
                shed_overflow(
                    &mut link.parked,
                    self.config.max_link_pending,
                    &mut self.pending,
                    dest,
                );
                // dgc-analysis: allow(wall-clock): the reactor times out real sockets in wall time
                if Instant::now() >= until {
                    self.dial(dest);
                }
            }
        }
        Ok(())
    }

    /// Queues reply items (responses, reply payloads, failure notices)
    /// on the inbound connection `dest`'s forward traffic arrived on.
    /// `Err` hands the batch back: the peer has no live reply socket.
    pub(crate) fn queue_reply(&mut self, dest: u32, batch: Vec<Item>) -> Result<(), Vec<Item>> {
        let Some(&token) = self.reply_routes.get(&dest) else {
            return Err(batch);
        };
        let Some(conn) = self.conns.get_mut(&token) else {
            self.reply_routes.remove(&dest);
            return Err(batch);
        };
        conn.queue.extend(batch);
        shed_overflow(
            &mut conn.queue,
            self.config.max_link_pending,
            &mut self.pending,
            dest,
        );
        self.flush_token(token);
        Ok(())
    }

    /// Tears down `dest`'s outbound link (address changed or peer
    /// departed); its backlog surfaces as reroutable salvage.
    pub(crate) fn drop_link(&mut self, dest: u32) {
        let Some(link) = self.links.remove(&dest) else {
            return;
        };
        let mut salvage: Vec<Item> = Vec::new();
        if let LinkState::Wired { token } = link.state {
            if let Some(conn) = self.conns.remove(&token) {
                let _ = self.poller.delete(&conn.stream, token);
                let _ = conn.stream.shutdown(Shutdown::Both);
                for f in conn.wire {
                    salvage.extend(f.salvage);
                }
                salvage.extend(conn.queue);
            }
        }
        salvage.extend(link.parked);
        if !salvage.is_empty() {
            self.pending.push(Notice::Undeliverable {
                node: dest,
                items: salvage,
                reroute: true,
            });
        }
    }

    /// Full disconnect from a departed peer: outbound link *and* the
    /// inbound reply route (after one last nonblocking flush attempt —
    /// farewell acks ride out if the socket has room).
    pub(crate) fn drop_peer(&mut self, dest: u32) {
        if let Some(&token) = self.reply_routes.get(&dest) {
            self.flush_token(token);
        }
        if let Some(token) = self.reply_routes.remove(&dest) {
            if let Some(conn) = self.conns.remove(&token) {
                let _ = self.poller.delete(&conn.stream, token);
                let _ = conn.stream.shutdown(Shutdown::Both);
                let mut leftovers: Vec<Item> = Vec::new();
                for f in conn.wire {
                    leftovers.extend(f.salvage);
                }
                leftovers.extend(conn.queue);
                if !leftovers.is_empty() {
                    self.pending.push(Notice::Undeliverable {
                        node: dest,
                        items: leftovers,
                        reroute: false,
                    });
                }
            }
        }
        self.drop_link(dest);
    }

    /// Adopts a socket a join-probe dialer opened (hello and probe
    /// digest already written, blocking): the reactor reads the seed's
    /// gossip replies from it until EOF.
    pub(crate) fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if self.poller.add(&stream, token, Interest::READ).is_err() {
            return;
        }
        self.conns
            .insert(token, Conn::reader(stream, ConnKind::Adopted));
    }

    /// The earliest instant any reactor timer fires: connect/write
    /// deadlines, backoff expiries with traffic parked, listener
    /// re-arm. The worker folds this into its `recv_timeout`.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        let mut next = self.listener_resume;
        for c in self.conns.values() {
            if let Some(d) = c.connect_deadline {
                next = earlier(next, d);
            }
            if let Some(d) = c.stall_deadline {
                next = earlier(next, d);
            }
            if let Some(d) = c.handshake_deadline {
                next = earlier(next, d);
            }
        }
        for l in self.links.values() {
            if let LinkState::Backoff { until } = l.state {
                if !l.parked.is_empty() {
                    next = earlier(next, until);
                }
            }
        }
        next
    }

    /// One loop turn: waits up to `timeout` for readiness (or a waker
    /// nudge), services every ready socket and due timer, and appends
    /// what the worker must handle to `notices`.
    pub(crate) fn poll(&mut self, timeout: Duration, notices: &mut Vec<Notice>) {
        notices.append(&mut self.pending);
        self.events.clear();
        let mut events = std::mem::take(&mut self.events);
        if self.poller.wait(&mut events, Some(timeout)).is_err() {
            // A failed wait degrades to a timeout; don't spin hot.
            std::thread::sleep(Duration::from_millis(1));
        }
        self.events = events;
        self.dispatch_io();
        self.service_timers();
        notices.append(&mut self.pending);
    }

    /// Best-effort flush of everything still queued, for up to `grace`:
    /// the reactor's shutdown/leave analogue of the threaded writers
    /// draining their channels on drop. Notices raised while draining
    /// stay pending (a leaving node surfaces them on its next poll; a
    /// stopping node discards them with the reactor).
    pub(crate) fn drain(&mut self, grace: Duration) {
        // dgc-analysis: allow(wall-clock): the reactor times out real sockets in wall time
        let deadline = Instant::now() + grace;
        loop {
            let busy: Vec<usize> = self
                .conns
                .iter()
                .filter(|(_, c)| !c.connecting && c.has_unsent())
                .map(|(&t, _)| t)
                .collect();
            for t in busy {
                self.flush_token(t);
            }
            let unsent = self.conns.values().any(|c| c.has_unsent());
            if !unsent {
                return;
            }
            // dgc-analysis: allow(wall-clock): the reactor times out real sockets in wall time
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return;
            }
            self.events.clear();
            let mut events = std::mem::take(&mut self.events);
            let _ = self
                .poller
                .wait(&mut events, Some(left.min(Duration::from_millis(10))));
            self.events = events;
            self.dispatch_io();
            self.service_timers();
        }
    }

    /// Routes every event in `self.events` to its handler.
    fn dispatch_io(&mut self) {
        let events = std::mem::take(&mut self.events);
        for ev in &events {
            match ev.key {
                TOKEN_WAKER => self.waker.clear(),
                TOKEN_LISTENER => self.accept_ready(),
                token => {
                    if ev.readable {
                        self.read_ready(token);
                    }
                    if ev.writable {
                        self.write_ready(token);
                    }
                }
            }
        }
        self.events = events;
    }

    /// Accepts everything queued on the listener. A transient error
    /// (EMFILE and friends) unhooks the listener for a bounded backoff
    /// instead of killing accepts forever — the bug the threaded
    /// acceptor shares the [`AcceptBackoff`] fix with.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff.on_success();
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.poller.add(&stream, token, Interest::READ).is_err() {
                        continue;
                    }
                    let mut conn = Conn::reader(stream, ConnKind::Inbound);
                    // Accepted sockets earn their keep before the
                    // deadline: hello, plus the proof when a key is
                    // configured — no more parking a silent peer's
                    // connection (and its slot) forever.
                    conn.authenticated = self.config.auth.is_none();
                    // dgc-analysis: allow(wall-clock): the reactor times out real sockets in wall time
                    conn.handshake_deadline = Some(Instant::now() + self.config.handshake_timeout);
                    self.conns.insert(token, conn);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    let wait = self.accept_backoff.on_error(&self.stats);
                    let _ = self.poller.delete(&self.listener, TOKEN_LISTENER);
                    // dgc-analysis: allow(wall-clock): the reactor times out real sockets in wall time
                    self.listener_resume = Some(Instant::now() + wait);
                    return;
                }
            }
        }
    }

    /// Fires every due timer: listener re-arm, connect and write-stall
    /// deadlines, backoff expiries with parked traffic.
    fn service_timers(&mut self) {
        // dgc-analysis: allow(wall-clock): the reactor times out real sockets in wall time
        let now = Instant::now();
        if self.listener_resume.is_some_and(|t| t <= now) {
            self.listener_resume = None;
            if self
                .poller
                .add(&self.listener, TOKEN_LISTENER, Interest::READ)
                .is_err()
            {
                // Couldn't re-arm: back off again rather than go deaf.
                let wait = self.accept_backoff.on_error(&self.stats);
                self.listener_resume = Some(now + wait);
            } else {
                self.accept_ready();
            }
        }
        let expired: Vec<usize> = self
            .conns
            .iter()
            .filter_map(|(&t, c)| {
                let connect_expired = c.connecting && c.connect_deadline.is_some_and(|d| d <= now);
                let stalled = c.stall_deadline.is_some_and(|d| d <= now);
                (connect_expired || stalled).then_some(t)
            })
            .collect();
        for t in expired {
            self.conn_dead(t);
        }
        // Handshakes that never completed: reclaim the slot and count
        // the timeout — a connected-but-silent peer is the leak this
        // deadline exists to bound.
        let hs_expired: Vec<usize> = self
            .conns
            .iter()
            .filter_map(|(&t, c)| c.handshake_deadline.is_some_and(|d| d <= now).then_some(t))
            .collect();
        for t in hs_expired {
            self.stats.on_handshake_timeout();
            self.conn_dead(t);
        }
        let redial: Vec<u32> = self
            .links
            .iter()
            .filter_map(|(&d, l)| match l.state {
                LinkState::Backoff { until } if until <= now && !l.parked.is_empty() => Some(d),
                _ => None,
            })
            .collect();
        for d in redial {
            self.dial(d);
        }
    }

    /// Starts a nonblocking connect for `dest`'s link, moving its
    /// parked items onto the new connection's queue. A synchronous
    /// failure takes the normal penalty path.
    fn dial(&mut self, dest: u32) {
        let Some(link) = self.links.get_mut(&dest) else {
            return;
        };
        match polling::connect_nonblocking(&link.addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let token = self.next_token;
                self.next_token += 1;
                let mut conn = Conn {
                    stream,
                    kind: ConnKind::Outbound,
                    peer: Some(dest),
                    decoder: FrameDecoder::new(),
                    queue: std::mem::take(&mut link.parked),
                    wire: VecDeque::new(),
                    interest: Interest::WRITE,
                    connecting: true,
                    // dgc-analysis: allow(wall-clock): the reactor times out real sockets in wall time
                    connect_deadline: Some(Instant::now() + CONNECT_TIMEOUT),
                    stall_deadline: None,
                    authenticated: self.config.auth.is_none(),
                    machine: None,
                    handshake_deadline: None,
                };
                if self
                    .poller
                    .add(&conn.stream, token, Interest::WRITE)
                    .is_err()
                {
                    link.parked = std::mem::take(&mut conn.queue);
                    self.penalize_link(dest, Vec::new());
                    return;
                }
                link.state = LinkState::Wired { token };
                self.conns.insert(token, conn);
            }
            Err(_) => self.penalize_link(dest, Vec::new()),
        }
    }

    /// An in-flight connect's socket polled writable: harvest `SO_ERROR`
    /// to learn whether it landed, and on success send the hello — the
    /// first frame on every outbound connection.
    fn connect_ready(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match polling::take_socket_error(&conn.stream) {
            Ok(()) => {
                conn.connecting = false;
                conn.connect_deadline = None;
                let hello = encode_frame(&Frame::Hello {
                    node: self.node_id,
                    version: PROTOCOL_VERSION,
                });
                conn.wire.push_front(PendingFrame {
                    bytes: hello,
                    written: 0,
                    items: 0,
                    salvage: Vec::new(),
                });
                if let Some(key) = self.config.auth {
                    // Open the challenge/response right behind the
                    // hello; queued items stay unframed until the
                    // proof goes out (`flush_token` gates on
                    // `authenticated`).
                    let (machine, init) = Authenticator::initiator(key, fresh_nonce());
                    conn.machine = Some(machine);
                    // dgc-analysis: allow(wall-clock): the reactor times out real sockets in wall time
                    conn.handshake_deadline = Some(Instant::now() + self.config.handshake_timeout);
                    conn.wire.push_back(PendingFrame {
                        bytes: encode_frame(&auth_frame(&init)),
                        written: 0,
                        items: 0,
                        salvage: Vec::new(),
                    });
                }
                if let Some(dest) = conn.peer {
                    if let Some(link) = self.links.get_mut(&dest) {
                        if link.ever_connected {
                            self.stats.on_reconnect();
                        }
                        link.ever_connected = true;
                    }
                }
                self.flush_token(token);
            }
            Err(_) => self.conn_dead(token),
        }
    }

    fn write_ready(&mut self, token: usize) {
        let connecting = match self.conns.get(&token) {
            Some(c) => c.connecting,
            None => return,
        };
        if connecting {
            self.connect_ready(token);
        } else {
            self.flush_token(token);
        }
    }

    /// Drives `token`'s write side: frames items off its queue as the
    /// wire drains, writes until `WouldBlock` or empty, and feeds fatal
    /// errors to [`Reactor::conn_dead`]. Never blocks.
    fn flush_token(&mut self, token: usize) {
        let mut fatal = false;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.connecting {
                break;
            }
            if conn.wire.is_empty() {
                // Items are framed only on authenticated connections;
                // mid-handshake, the wire carries handshake frames and
                // nothing else.
                if conn.queue.is_empty() || !conn.authenticated {
                    break;
                }
                let n = split_len(conn.queue.make_contiguous());
                let items: Vec<Item> = conn.queue.drain(..n).collect();
                let bytes = encode_batch_frame(&items);
                conn.wire.push_back(PendingFrame {
                    bytes,
                    written: 0,
                    items: n as u64,
                    salvage: items,
                });
            }
            let f = conn.wire.front_mut().expect("wire was just checked/filled");
            match conn.stream.write(&f.bytes[f.written..]) {
                Ok(0) => {
                    fatal = true;
                    break;
                }
                Ok(n) => {
                    f.written += n;
                    let complete = f.written == f.bytes.len();
                    conn.stall_deadline = None;
                    if complete {
                        let done = conn.wire.pop_front().expect("front frame exists");
                        self.stats
                            .on_frame_sent(done.items, done.bytes.len() as u64);
                        // A fully written frame proves the link works —
                        // the reactor's analogue of a completed flush
                        // resetting the threaded writer's failure count.
                        if matches!(conn.kind, ConnKind::Outbound) {
                            if let Some(dest) = conn.peer {
                                if let Some(link) = self.links.get_mut(&dest) {
                                    link.failed_attempts = 0;
                                }
                            }
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if conn.stall_deadline.is_none() {
                        // dgc-analysis: allow(wall-clock): the reactor times out real sockets in wall time
                        conn.stall_deadline = Some(Instant::now() + WRITE_STALL_TIMEOUT);
                    }
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    fatal = true;
                    break;
                }
            }
        }
        if fatal {
            self.conn_dead(token);
            return;
        }
        self.update_interest(token);
    }

    /// Reads `token` until `WouldBlock` (bounded per event), feeding the
    /// frame decoder and surfacing decoded items as notices.
    fn read_ready(&mut self, token: usize) {
        let mut chunk = [0u8; READ_CHUNK];
        for _ in 0..MAX_READS_PER_EVENT {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.connecting {
                return;
            }
            let n = match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.conn_dead(token);
                    return;
                }
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.conn_dead(token);
                    return;
                }
            };
            self.stats.on_raw_received(n as u64);
            conn.decoder.push(&chunk[..n]);
            let mut dead = false;
            let mut kick = false;
            loop {
                match conn.decoder.next_frame() {
                    Ok(None) => break,
                    Ok(Some(Frame::Hello { node, version })) => {
                        if version != PROTOCOL_VERSION {
                            self.stats.on_decode_error();
                            dead = true;
                            break;
                        }
                        self.stats.on_frame_received(0);
                        if matches!(conn.kind, ConnKind::Inbound) && conn.peer.is_none() {
                            // The hello names the peer: its replies now
                            // route back over this connection (§2.2 —
                            // never a fresh reverse connection). With a
                            // key configured the route waits for the
                            // proof.
                            conn.peer = Some(node);
                            match self.config.auth {
                                Some(key) => {
                                    conn.machine =
                                        Some(Authenticator::responder(key, fresh_nonce()));
                                }
                                None => {
                                    conn.handshake_deadline = None;
                                    self.reply_routes.insert(node, token);
                                }
                            }
                        }
                    }
                    Ok(Some(
                        frame @ (Frame::AuthInit { .. }
                        | Frame::AuthChallenge { .. }
                        | Frame::AuthProof { .. }),
                    )) => {
                        self.stats.on_frame_received(0);
                        let msg =
                            frame_to_auth(&frame).expect("auth frames convert to auth messages");
                        // Meaningful exactly once: mid-handshake, with
                        // a machine in flight. Anywhere else — already
                        // authenticated, auth off, no hello — it is an
                        // attack or a confused peer; same verdict.
                        if conn.authenticated || conn.machine.is_none() {
                            self.stats.on_auth_reject();
                            dead = true;
                            break;
                        }
                        let machine = conn.machine.as_mut().expect("machine presence checked");
                        match machine.on_msg(&msg) {
                            Ok(Step::Send(reply)) => {
                                conn.wire.push_back(PendingFrame {
                                    bytes: encode_frame(&auth_frame(&reply)),
                                    written: 0,
                                    items: 0,
                                    salvage: Vec::new(),
                                });
                                kick = true;
                            }
                            Ok(Step::SendAndDone(reply)) => {
                                conn.wire.push_back(PendingFrame {
                                    bytes: encode_frame(&auth_frame(&reply)),
                                    written: 0,
                                    items: 0,
                                    salvage: Vec::new(),
                                });
                                conn.authenticated = true;
                                conn.handshake_deadline = None;
                                self.stats.on_auth_ok();
                                kick = true;
                            }
                            Ok(Step::Done) => {
                                conn.authenticated = true;
                                conn.handshake_deadline = None;
                                self.stats.on_auth_ok();
                                if matches!(conn.kind, ConnKind::Inbound) {
                                    if let Some(node) = conn.peer {
                                        self.reply_routes.insert(node, token);
                                    }
                                }
                                kick = true;
                            }
                            Err(_) => {
                                self.stats.on_auth_reject();
                                dead = true;
                                break;
                            }
                        }
                    }
                    Ok(Some(Frame::Batch(items))) => {
                        if !conn.authenticated {
                            // No frame item is ever processed from a
                            // peer that has not proven the key.
                            self.stats.on_auth_reject();
                            dead = true;
                            break;
                        }
                        self.stats.on_frame_received(items.len() as u64);
                        self.pending.extend(items.into_iter().map(Notice::Item));
                    }
                    Err(_) => {
                        self.stats.on_decode_error();
                        dead = true;
                        break;
                    }
                }
            }
            if dead {
                self.conn_dead(token);
                return;
            }
            if kick {
                // Handshake frames queued (or authentication just
                // unlocked the item queue): push them out now.
                self.flush_token(token);
            }
        }
    }

    /// Removes `token`'s connection and routes its unsent items:
    /// outbound deaths take the link penalty path (backoff, eventually
    /// conviction), inbound deaths surface queued replies as
    /// non-reroutable salvage, adopted probes just close.
    fn conn_dead(&mut self, token: usize) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.delete(&conn.stream, token);
        let _ = conn.stream.shutdown(Shutdown::Both);
        let mut salvage: Vec<Item> = Vec::new();
        for f in conn.wire {
            salvage.extend(f.salvage);
        }
        salvage.extend(conn.queue);
        match conn.kind {
            ConnKind::Outbound => {
                let dest = conn.peer.expect("outbound conns always know their peer");
                self.penalize_link(dest, salvage);
            }
            ConnKind::Inbound => {
                if let Some(peer) = conn.peer {
                    if self.reply_routes.get(&peer) == Some(&token) {
                        self.reply_routes.remove(&peer);
                    }
                    if !salvage.is_empty() {
                        // No reroute: the peer may be reconnecting, and
                        // retrying around a half-written stream could
                        // reorder what the fresh socket will carry.
                        self.pending.push(Notice::Undeliverable {
                            node: peer,
                            items: salvage,
                            reroute: false,
                        });
                    }
                }
            }
            ConnKind::Adopted => {}
        }
    }

    /// One failed connect or write on `dest`'s link (its connection, if
    /// any, is already gone): park the salvage, count the failure, and
    /// back off — or convict the peer at `fail_after_attempts`, exactly
    /// like the threaded writer's `penalty`.
    fn penalize_link(&mut self, dest: u32, salvage: Vec<Item>) {
        let Some(link) = self.links.get_mut(&dest) else {
            if !salvage.is_empty() {
                self.pending.push(Notice::Undeliverable {
                    node: dest,
                    items: salvage,
                    reroute: true,
                });
            }
            return;
        };
        link.parked.extend(salvage);
        shed_overflow(
            &mut link.parked,
            self.config.max_link_pending,
            &mut self.pending,
            dest,
        );
        link.failed_attempts = link.failed_attempts.saturating_add(1);
        if link.failed_attempts >= self.config.fail_after_attempts {
            let unsent: Vec<Item> = std::mem::take(&mut link.parked).into_iter().collect();
            self.links.remove(&dest);
            self.pending
                .push(Notice::PeerUnreachable { node: dest, unsent });
            return;
        }
        let backoff = self
            .config
            .reconnect_base
            .saturating_mul(1u32 << link.failed_attempts.min(10))
            .min(self.config.reconnect_max);
        self.stats.on_backoff(backoff.as_nanos() as u64);
        link.state = LinkState::Backoff {
            // dgc-analysis: allow(wall-clock): the reactor times out real sockets in wall time
            until: Instant::now() + backoff,
        };
    }

    /// Re-registers `token` with the interest its state wants: WRITE
    /// while connecting, READ plus WRITE-while-unsent-data otherwise.
    fn update_interest(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = if conn.connecting {
            Interest::WRITE
        } else if conn.has_unsent() {
            Interest::BOTH
        } else {
            Interest::READ
        };
        if want != conn.interest && self.poller.modify(&conn.stream, token, want).is_ok() {
            conn.interest = want;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_core::id::AoId;

    fn test_reactor() -> Reactor {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        Reactor::new(1, listener, NetConfig::default(), NetStats::shared()).unwrap()
    }

    fn app_item(n: u32) -> Item {
        Item::App {
            from: AoId::new(1, 0),
            to: AoId::new(2, n),
            reply: false,
            tenant: 0,
            payload: vec![n as u8; 8].into(),
        }
    }

    #[test]
    fn forward_link_handshakes_then_delivers() {
        let sink = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = sink.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let (mut s, _) = sink.accept().unwrap();
            let mut dec = FrameDecoder::new();
            let mut frames = Vec::new();
            let mut buf = [0u8; 4096];
            while frames.len() < 2 {
                let n = s.read(&mut buf).unwrap();
                assert!(n > 0, "sender closed early");
                dec.push(&buf[..n]);
                while let Some(f) = dec.next_frame().unwrap() {
                    frames.push(f);
                }
            }
            frames
        });

        let mut r = test_reactor();
        r.open_link(2, addr);
        r.queue_forward(2, vec![app_item(7), app_item(8)]).unwrap();
        let mut notices = Vec::new();
        let start = Instant::now();
        while !reader.is_finished() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "delivery timed out"
            );
            r.poll(Duration::from_millis(5), &mut notices);
        }
        let frames = reader.join().unwrap();
        assert_eq!(
            frames[0],
            Frame::Hello {
                node: 1,
                version: PROTOCOL_VERSION
            },
            "hello must be the first frame on an outbound connection"
        );
        assert_eq!(frames[1], Frame::Batch(vec![app_item(7), app_item(8)]));
    }

    #[test]
    fn missing_link_hands_the_batch_back() {
        let mut r = test_reactor();
        assert_eq!(
            r.queue_forward(9, vec![app_item(1)]),
            Err(vec![app_item(1)])
        );
        assert_eq!(r.queue_reply(9, vec![app_item(2)]), Err(vec![app_item(2)]));
    }

    #[test]
    fn unreachable_peer_is_convicted_with_its_backlog() {
        // Bind-then-drop: a (very likely) dead port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let config = NetConfig {
            fail_after_attempts: 3,
            reconnect_base: Duration::from_millis(1),
            reconnect_max: Duration::from_millis(2),
            ..NetConfig::default()
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut r = Reactor::new(1, listener, config, NetStats::shared()).unwrap();
        r.open_link(2, addr);
        let _ = r.queue_forward(2, vec![app_item(1)]);
        let mut notices = Vec::new();
        let start = Instant::now();
        loop {
            assert!(start.elapsed() < Duration::from_secs(5), "never convicted");
            r.poll(Duration::from_millis(5), &mut notices);
            if let Some(Notice::PeerUnreachable { node, unsent }) = notices
                .iter()
                .find(|n| matches!(n, Notice::PeerUnreachable { .. }))
            {
                assert_eq!(*node, 2);
                assert_eq!(unsent, &vec![app_item(1)]);
                break;
            }
        }
        assert!(!r.has_link(2), "convicted links are removed");
    }
}
