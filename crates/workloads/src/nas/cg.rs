//! CG — conjugate gradient kernel.
//!
//! NPB CG computes an approximation to the smallest eigenvalue of a
//! large sparse symmetric positive-definite matrix via inverse power
//! iteration, whose inner loop is a conjugate-gradient solve. Class C:
//! n = 150 000, 75 power iterations.
//!
//! Each worker genuinely runs CG steps on a scaled-down local SPD system
//! (diagonally dominant sparse matrix in CSR form); communication sizes
//! and per-iteration compute times are charged at class-C scale by
//! [`super::common::NasParams`].

use dgc_simnet::time::SimDuration;

use super::common::{KernelMath, NasParams};

/// Class-C-scaled parameters (see EXPERIMENTS.md for the calibration).
pub fn class_c() -> NasParams {
    NasParams {
        name: "CG",
        workers: 256,
        iterations: 75,
        exchange: true,
        // ~n/W doubles per all-gather chunk at class C, scaled so the
        // 75-iteration all-gather totals ≈ the paper's 194 GB app traffic.
        chunk_bytes: 37_500,
        compute_per_iter: SimDuration::from_secs(45),
        reply_bytes: 2_048,
    }
}

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone)]
pub struct Csr {
    n: usize,
    row_ptr: Vec<usize>,
    col: Vec<usize>,
    val: Vec<f64>,
}

impl Csr {
    /// Builds a random sparse symmetric diagonally-dominant matrix of
    /// dimension `n` with about `per_row` off-diagonal entries per row.
    /// Diagonal dominance makes it SPD, so CG converges.
    pub fn random_spd(n: usize, per_row: usize, seed: u64) -> Csr {
        assert!(n > 0);
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        // Symmetric pattern: store (i, j, v) for j < i, mirror later.
        let mut entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for i in 0..n {
            for _ in 0..per_row {
                let j = (next() % n as u64) as usize;
                if j == i {
                    continue;
                }
                let v = ((next() % 1000) as f64 / 1000.0) * 0.5 + 0.01;
                let (lo, hi) = (i.min(j), i.max(j));
                entries[hi].push((lo, v));
            }
        }
        // Assemble CSR with both triangles plus a dominant diagonal.
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut row_sums = vec![0.0f64; n];
        for (hi, cols) in entries.iter().enumerate() {
            for (lo, v) in cols {
                rows[hi].push((*lo, *v));
                rows[*lo].push((hi, *v));
                row_sums[hi] += v;
                row_sums[*lo] += v;
            }
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col = Vec::new();
        let mut val = Vec::new();
        row_ptr.push(0);
        for i in 0..n {
            rows[i].push((i, row_sums[i] + 1.0)); // dominant diagonal
            rows[i].sort_by_key(|(j, _)| *j);
            for (j, v) in &rows[i] {
                col.push(*j);
                val.push(*v);
            }
            row_ptr.push(col.len());
        }
        Csr {
            n,
            row_ptr,
            col,
            val,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `y = A·x`.
    #[allow(clippy::needless_range_loop)]
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for i in 0..self.n {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.val[k] * x[self.col[k]];
            }
            y[i] = acc;
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// The per-worker CG state: solves `A·x = b` incrementally, one CG step
/// per NAS iteration.
pub struct CgMath {
    a: Csr,
    x: Vec<f64>,
    r: Vec<f64>,
    p: Vec<f64>,
    q: Vec<f64>,
    rho: f64,
}

impl CgMath {
    /// Builds the local system for worker `index` (distinct seeds give
    /// distinct matrices, like NPB's per-rank matrix blocks).
    pub fn new(n: usize, per_row: usize, index: u32) -> Self {
        let a = Csr::random_spd(n, per_row, 0x9E37_79B9 ^ (index as u64) << 8);
        let b = vec![1.0; n];
        let x = vec![0.0; n];
        let r = b; // r = b - A·0
        let p = r.clone();
        let rho = dot(&r, &r);
        CgMath {
            a,
            x,
            r,
            p,
            q: vec![0.0; n],
            rho,
        }
    }

    /// Current residual norm ‖r‖₂.
    pub fn residual(&self) -> f64 {
        dot(&self.r, &self.r).sqrt()
    }
}

impl KernelMath for CgMath {
    fn compute(&mut self, _iteration: u32) -> f64 {
        // One textbook CG step.
        self.a.matvec(&self.p, &mut self.q);
        let pq = dot(&self.p, &self.q);
        if pq.abs() < f64::MIN_POSITIVE || self.rho.abs() < 1e-300 {
            return self.residual();
        }
        let alpha = self.rho / pq;
        for i in 0..self.x.len() {
            self.x[i] += alpha * self.p[i];
            self.r[i] -= alpha * self.q[i];
        }
        let rho_new = dot(&self.r, &self.r);
        let beta = rho_new / self.rho;
        self.rho = rho_new;
        for i in 0..self.p.len() {
            self.p[i] = self.r[i] + beta * self.p[i];
        }
        self.residual()
    }

    fn checksum(&self) -> f64 {
        self.x.iter().sum()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn csr_matvec_matches_dense() {
        let a = Csr::random_spd(16, 3, 42);
        let x: Vec<f64> = (0..16).map(|i| (i as f64 + 1.0) / 16.0).collect();
        let mut y = vec![0.0; 16];
        a.matvec(&x, &mut y);
        // Rebuild densely and compare.
        let mut dense = vec![vec![0.0f64; 16]; 16];
        for i in 0..16 {
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                // duplicate (i, j) entries are legal in this CSR; they sum
                dense[i][a.col[k]] += a.val[k];
            }
        }
        for i in 0..16 {
            let expect: f64 = (0..16).map(|j| dense[i][j] * x[j]).sum();
            assert!((y[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        let a = Csr::random_spd(24, 4, 7);
        let mut dense = vec![vec![0.0f64; 24]; 24];
        for i in 0..24 {
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                dense[i][a.col[k]] += a.val[k];
            }
        }
        for i in 0..24 {
            for j in 0..24 {
                assert!((dense[i][j] - dense[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cg_converges_on_spd_system() {
        let mut cg = CgMath::new(64, 4, 0);
        let initial = cg.residual();
        for it in 0..60 {
            cg.compute(it);
        }
        assert!(
            cg.residual() < initial * 1e-8,
            "CG must converge on a diagonally dominant SPD system: {} -> {}",
            initial,
            cg.residual()
        );
    }

    #[test]
    fn distinct_workers_get_distinct_matrices() {
        let a = CgMath::new(32, 3, 0);
        let b = CgMath::new(32, 3, 1);
        assert_ne!(a.a.val, b.a.val);
    }

    #[test]
    fn class_c_matches_paper_structure() {
        let p = class_c();
        assert_eq!(p.workers, 256);
        assert_eq!(p.iterations, 75);
        assert!(p.exchange);
    }
}
