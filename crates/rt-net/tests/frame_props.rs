//! Property-based tests of the node-level frame codec, alongside the
//! protocol-unit properties in `core/tests/protocol_props.rs`: arbitrary
//! frames survive encode → concatenate → split-at-arbitrary-boundaries →
//! incremental decode, and corrupt inputs never panic.

use proptest::prelude::*;

use dgc_core::clock::NamedClock;
use dgc_core::id::AoId;
use dgc_core::message::{DgcMessage, DgcResponse};
use dgc_core::units::Dur;
use dgc_rt_net::frame::{
    batch_frame_len, decode_payload, encode_batch_frame, encode_frame, encode_payload, FrameDecoder,
};
use dgc_rt_net::{Frame, Item};

fn arb_aoid() -> impl Strategy<Value = AoId> {
    (any::<u32>(), any::<u32>()).prop_map(|(n, i)| AoId::new(n, i))
}

fn arb_clock() -> impl Strategy<Value = NamedClock> {
    (any::<u64>(), arb_aoid()).prop_map(|(value, owner)| NamedClock { value, owner })
}

fn arb_message() -> impl Strategy<Value = DgcMessage> {
    (arb_aoid(), arb_clock(), any::<bool>(), any::<u64>()).prop_map(
        |(sender, clock, consensus, ttb)| DgcMessage {
            sender,
            clock,
            consensus,
            sender_ttb: Dur::from_nanos(ttb),
        },
    )
}

fn arb_response() -> impl Strategy<Value = DgcResponse> {
    (
        arb_aoid(),
        arb_clock(),
        any::<bool>(),
        any::<bool>(),
        proptest::option::of(any::<u32>()),
    )
        .prop_map(
            |(responder, clock, has_parent, consensus_reached, depth)| DgcResponse {
                responder,
                clock,
                has_parent,
                consensus_reached,
                depth,
            },
        )
}

fn arb_record() -> impl Strategy<Value = dgc_membership::NodeRecord> {
    (
        any::<u32>(),
        any::<u64>(),
        0u8..4,
        proptest::option::of(any::<u16>()),
    )
        .prop_map(
            |(node, incarnation, status, port)| dgc_membership::NodeRecord {
                node,
                incarnation,
                status: match status {
                    0 => dgc_membership::NodeStatus::Alive,
                    1 => dgc_membership::NodeStatus::Suspect,
                    2 => dgc_membership::NodeStatus::Left,
                    _ => dgc_membership::NodeStatus::Dead,
                },
                addr: port.map(|p| std::net::SocketAddr::from(([127, 0, 0, 1], p))),
            },
        )
}

fn arb_digest() -> impl Strategy<Value = dgc_membership::Digest> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        proptest::collection::vec(arb_record(), 0..5),
    )
        .prop_map(|(version, ack, full, records)| dgc_membership::Digest {
            version,
            ack,
            full,
            records,
        })
}

fn arb_item() -> impl Strategy<Value = Item> {
    (
        0u8..5,
        arb_aoid(),
        arb_aoid(),
        arb_message(),
        arb_response(),
        arb_digest(),
        proptest::collection::vec(any::<u8>(), 0..64),
        any::<bool>(),
    )
        .prop_map(
            |(kind, x, y, message, response, digest, payload, reply)| match kind {
                0 => Item::Dgc {
                    from: x,
                    to: y,
                    message,
                },
                1 => Item::Resp {
                    from: x,
                    to: y,
                    response,
                },
                2 => Item::SendFailure {
                    holder: x,
                    target: y,
                },
                3 => Item::Gossip {
                    from: x.node,
                    to: y.node,
                    digest,
                },
                _ => Item::App {
                    from: x,
                    to: y,
                    reply,
                    tenant: x.index ^ y.index,
                    payload: payload.into(),
                },
            },
        )
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0u8..4,
        any::<u32>(),
        proptest::collection::vec(arb_item(), 0..24),
    )
        .prop_map(|(kind, node, items)| {
            if kind == 0 {
                Frame::Hello {
                    node,
                    version: dgc_rt_net::frame::PROTOCOL_VERSION,
                }
            } else {
                Frame::Batch(items)
            }
        })
}

proptest! {
    /// Any frame's payload round-trips through the payload codec.
    #[test]
    fn any_frame_round_trips(f in arb_frame()) {
        prop_assert_eq!(decode_payload(encode_payload(&f)).unwrap(), f);
    }

    /// A stream of frames, split at arbitrary chunk boundaries, is
    /// reassembled exactly by the incremental decoder the socket
    /// readers use — whatever TCP does to segment the bytes.
    #[test]
    fn any_stream_survives_arbitrary_fragmentation(
        frames in proptest::collection::vec(arb_frame(), 1..8),
        cuts in proptest::collection::vec(1usize..64, 0..32),
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        // Derive chunk sizes from the cut list; always terminates with
        // one final chunk holding the remainder.
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        let mut offset = 0usize;
        for cut in &cuts {
            if offset >= stream.len() { break; }
            let end = (offset + cut).min(stream.len());
            decoder.push(&stream[offset..end]);
            while let Some(f) = decoder.next_frame().unwrap() {
                got.push(f);
            }
            offset = end;
        }
        decoder.push(&stream[offset..]);
        while let Some(f) = decoder.next_frame().unwrap() {
            got.push(f);
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(decoder.pending_bytes(), 0);
    }

    /// Truncating a payload anywhere must yield an error, never a panic
    /// and never a bogus frame.
    #[test]
    fn truncated_payloads_error_out(f in arb_frame(), keep in 0u32..10_000) {
        let payload = encode_payload(&f);
        if payload.len() > 1 {
            let keep = 1 + (keep as usize % (payload.len() - 1));
            prop_assert!(decode_payload(payload.slice(0..keep)).is_err());
        }
    }

    /// Decoding arbitrary bytes is total: an error or a frame, never a
    /// panic (the property a network-facing codec must have).
    #[test]
    fn decoding_arbitrary_bytes_is_total(
        raw in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let _ = decode_payload(bytes::Bytes::from(raw.clone()));
        let mut dec = FrameDecoder::new();
        dec.push(&raw);
        // Drain until the decoder either wants more bytes or errors.
        while let Ok(Some(_)) = dec.next_frame() {}
    }

    /// The batching invariant the transport relies on: a coalesced batch
    /// always costs fewer bytes than the same items framed singly, by
    /// exactly (n-1) times the framing overhead. The `batch_frame_len`
    /// size model must agree byte-for-byte with all three encoders, so
    /// writers can size buffers without a clone-and-encode pass.
    #[test]
    fn batching_saves_exact_framing_overhead(
        items in proptest::collection::vec(arb_item(), 2..32)
    ) {
        let encoded = encode_batch_frame(&items);
        prop_assert_eq!(encoded.len(), batch_frame_len(&items), "size model drifted");
        prop_assert_eq!(&encode_frame(&Frame::Batch(items.clone())), &encoded);
        let batched = encoded.len();
        let singles: usize = items
            .iter()
            .map(|i| batch_frame_len(std::slice::from_ref(i)))
            .sum();
        let expected_saving =
            (items.len() - 1) * dgc_rt_net::frame::FRAME_OVERHEAD as usize;
        prop_assert_eq!(singles - batched, expected_saving);
    }

    /// Mid-frame connection severing — what the chaos proxy's partition
    /// windows do to a live stream: feed a truncated stream, then (as a
    /// reconnect would) a fresh valid stream into a new decoder. The cut
    /// must never produce a frame that was not sent, and the fresh
    /// decoder must be unaffected by history.
    #[test]
    fn severed_streams_never_fabricate_frames(
        frames in proptest::collection::vec(arb_frame(), 1..6),
        cut_back in 1usize..48,
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        let cut = stream.len().saturating_sub(cut_back % stream.len().max(1));
        let mut dec = FrameDecoder::new();
        dec.push(&stream[..cut]);
        let mut got = Vec::new();
        loop {
            match dec.next_frame() {
                Ok(Some(f)) => got.push(f),
                Ok(None) => break,       // waiting for bytes that never come
                Err(_) => break,         // corrupt tail detected: also fine
            }
        }
        // Every decoded frame is a genuine prefix of what was sent.
        prop_assert!(got.len() <= frames.len());
        prop_assert_eq!(&frames[..got.len()], &got[..]);
        // The replacement connection starts clean.
        let mut fresh = FrameDecoder::new();
        fresh.push(&stream);
        let mut redecoded = Vec::new();
        while let Some(f) = fresh.next_frame().unwrap() {
            redecoded.push(f);
        }
        prop_assert_eq!(redecoded, frames);
    }

    /// Corrupting any single byte of the 4-byte length prefix must
    /// yield an error, starvation (waiting for more bytes), or clean
    /// frames — never a panic and never a mis-framed stream that decodes
    /// to the original frame at the wrong boundary.
    #[test]
    fn corrupted_length_prefixes_never_panic(
        f in arb_frame(),
        byte in 0usize..4,
        xor in 1u8..255,
    ) {
        let mut raw = encode_frame(&f);
        raw[byte] ^= xor;
        let mut dec = FrameDecoder::new();
        dec.push(&raw);
        // Any of Ok(Some)/Ok(None)/Err is acceptable, a panic is not.
        // A full frame can only come out if the corrupt length still
        // frames a decodable payload (e.g. flipping a high length byte
        // on a stream that has those bytes buffered) — tolerated, BUT
        // it must then be a *different* frame: the corrupted prefix
        // frames a different byte region, so reproducing the original
        // content would mean the decoder mis-framed the stream.
        if let Ok(Some(out)) = dec.next_frame() {
            prop_assert_ne!(out, f);
        }
        let _ = dec.next_frame(); // idempotently safe afterwards too
    }
}

/// Truncation at *every* prefix length, exhaustively (the proptest
/// above samples; the decoder's never-panic/never-fabricate contract
/// deserves the full sweep on a representative frame).
#[test]
fn every_prefix_of_a_stream_is_safe() {
    use dgc_rt_net::frame::PROTOCOL_VERSION;
    let frames = vec![
        Frame::Hello {
            node: 3,
            version: PROTOCOL_VERSION,
        },
        Frame::Batch(vec![
            Item::SendFailure {
                holder: AoId::new(0, 1),
                target: AoId::new(1, 2),
            };
            3
        ]),
    ];
    let mut stream = Vec::new();
    for f in &frames {
        stream.extend_from_slice(&encode_frame(f));
    }
    for cut in 0..stream.len() {
        let mut dec = FrameDecoder::new();
        dec.push(&stream[..cut]);
        let mut got = Vec::new();
        while let Ok(Some(f)) = dec.next_frame() {
            got.push(f);
        }
        assert!(
            got.len() <= frames.len() && got[..] == frames[..got.len()],
            "prefix of {cut} bytes fabricated frames: {got:?}"
        );
        // A truncated decoder either holds residue or consumed exactly
        // the frames it produced.
        let consumed: usize = frames[..got.len()]
            .iter()
            .map(|f| encode_frame(f).len())
            .sum();
        assert_eq!(dec.pending_bytes(), cut - consumed);
    }
}

/// Items with payloads big enough to make the per-frame *byte* bound
/// bite (the plain `arb_item` payloads are tiny, so only the item
/// bound ever would).
fn arb_weighty_item() -> impl Strategy<Value = Item> {
    (
        any::<bool>(),
        arb_item(),
        arb_aoid(),
        arb_aoid(),
        1usize..(1 << 20),
    )
        .prop_map(|(heavy, light, from, to, size)| {
            if heavy {
                Item::App {
                    from,
                    to,
                    reply: false,
                    tenant: 0,
                    payload: vec![0xA5; size].into(),
                }
            } else {
                light
            }
        })
}

proptest! {
    // Big allocations per case: fewer cases than the codec properties.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The frame-splitting boundary both I/O engines cut their write
    /// queues at: greedy (never leaves room unused), bounded (never
    /// emits an oversized frame unless a single item alone is the
    /// frame), and a partition (repeated splits walk the whole queue
    /// losslessly).
    #[test]
    fn split_len_is_a_greedy_bounded_partition(
        items in proptest::collection::vec(arb_weighty_item(), 0..12)
    ) {
        use dgc_rt_net::frame::{split_len, MAX_BYTES_PER_FRAME, MAX_ITEMS_PER_FRAME};
        let n = split_len(&items);
        if items.is_empty() {
            prop_assert_eq!(n, 0);
            return Ok(());
        }
        // Always progresses, never over-reaches.
        prop_assert!(n >= 1);
        prop_assert!(n <= items.len().min(MAX_ITEMS_PER_FRAME));
        // Within the byte bound — except the one allowed case, a lone
        // item that is itself oversized.
        let bytes: u64 = items[..n].iter().map(|i| i.wire_size()).sum();
        prop_assert!(
            bytes <= MAX_BYTES_PER_FRAME || n == 1,
            "split of {} items carries {} bytes", n, bytes
        );
        // Greedy: if anything was left out, taking one more item would
        // burst a bound.
        if n < items.len() {
            let with_next = bytes + items[n].wire_size();
            prop_assert!(
                n == MAX_ITEMS_PER_FRAME || with_next > MAX_BYTES_PER_FRAME,
                "split stopped at {} of {} with room to spare", n, items.len()
            );
        }
        // Partition: repeated splitting consumes exactly the queue.
        let mut rest: &[Item] = &items;
        let mut walked = 0usize;
        while !rest.is_empty() {
            let step = split_len(rest);
            prop_assert!(step >= 1);
            walked += step;
            rest = &rest[step..];
        }
        prop_assert_eq!(walked, items.len());
    }
}
