//! The canonical conformance scenarios: the four §4.2 quadrants.
//!
//! All four share one protocol configuration, chosen so a socket run
//! finishes in seconds while leaving wide wall-clock margins:
//!
//! * `TTB = 50 ms`, `TTA = 250 ms`, `MaxComm = 100 ms` — statically
//!   safe (`250 > 2·50 + 100`), with ~148 ms of real slack over the
//!   ~2 ms localhost/simulated latency.
//!
//! Every fault is then sized against that slack: "safe" scenarios keep
//! the worst added delay far below it (and give the verdict ≥ 50 ms of
//! scheduling margin on both sides of every deadline); "unsafe"
//! scenarios overshoot TTA itself by more than 2×. That is what makes
//! the expected verdicts robust across runtimes, seeds and loaded CI
//! machines.

use dgc_core::config::DgcConfig;
use dgc_core::faults::{FaultProfile, Window};
use dgc_core::units::{Dur, Time};
use dgc_membership::MembershipConfig;

use crate::{Op, Scenario, ScriptOp, Verdict};

/// The shared protocol parameters (see module docs).
pub fn conformance_dgc() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_millis(50))
        .tta(Dur::from_millis(250))
        .max_comm(Dur::from_millis(100))
        .build()
}

fn at_ms(ms: u64, op: Op) -> ScriptOp {
    ScriptOp {
        at: Time::from_nanos(ms * 1_000_000),
        op,
    }
}

/// Membership timings for the churn scenarios: gossip every 50 ms,
/// suspicion after 250 ms of silence, burial after 600 ms — so a
/// crashed node is buried within a second while ordinary scheduling
/// jitter (≪ 250 ms) never slanders a live one. Delta gossip with the
/// default full-sync backstop: the conformance suite exercises the
/// deltas under the same faults as everything else.
pub fn conformance_membership() -> MembershipConfig {
    MembershipConfig {
        gossip_interval: Dur::from_millis(50),
        suspect_after: Dur::from_millis(250),
        dead_after: Dur::from_millis(600),
        full_sync_every: 10,
    }
}

/// All canonical scenarios: the four §4.2 quadrants plus the three
/// membership departure scenarios (crash, crash-and-rejoin, graceful
/// leave).
pub fn all() -> Vec<Scenario> {
    vec![
        safe_with_slack(),
        delay_violates_tta(),
        partition_heals(),
        pause_models_local_gc(),
        crash_without_rejoin(),
        crash_and_rejoin(),
        graceful_leave(),
    ]
}

/// **safe-with-slack** — a cross-node garbage cycle collected while the
/// links misbehave *within* the TTA slack: 20 ms extra delay plus 10%
/// seeded frame loss. The bound holds, so the verdict must be clean
/// collection; and since both cycle members are garbage from 100 ms on,
/// no loss pattern can make a termination wrongful — the scenario is
/// seed-robust by construction.
pub fn safe_with_slack() -> Scenario {
    Scenario {
        name: "safe-with-slack",
        nodes: 2,
        dgc: conformance_dgc(),
        script: vec![
            at_ms(
                0,
                Op::Spawn {
                    tag: 0,
                    node: 0,
                    busy: true,
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 1,
                    node: 1,
                    busy: true,
                },
            ),
            at_ms(0, Op::AddRef { from: 0, to: 1 }),
            at_ms(0, Op::AddRef { from: 1, to: 0 }),
            at_ms(100, Op::SetIdle { tag: 0, idle: true }),
            at_ms(100, Op::SetIdle { tag: 1, idle: true }),
        ],
        profile: FaultProfile::none()
            .delay(
                None,
                None,
                Window::from_millis(200, 1500),
                Dur::from_millis(20),
            )
            .drop_frames(Some(0), Some(1), Window::from_millis(200, 1200), 100),
        membership: None,
        horizon: Dur::from_secs(25),
        expect: Verdict::SAFE_AND_COMPLETE,
    }
}

/// **delay-violates-tta** — the §4.2 counterexample: a busy root keeps
/// referencing `v`, but its heartbeats cross a window of 600 ms extra
/// delay (2.4 × TTA). `v` hears silence longer than TTA, terminates,
/// and the oracle convicts the run: wrongful collection.
pub fn delay_violates_tta() -> Scenario {
    Scenario {
        name: "delay-violates-tta",
        nodes: 2,
        dgc: conformance_dgc(),
        script: vec![
            at_ms(
                0,
                Op::Spawn {
                    tag: 0,
                    node: 0,
                    busy: true, // stays busy: the root
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 1,
                    node: 1,
                    busy: true,
                },
            ),
            at_ms(0, Op::AddRef { from: 0, to: 1 }),
            at_ms(100, Op::SetIdle { tag: 1, idle: true }),
        ],
        profile: FaultProfile::none().delay(
            Some(0),
            Some(1),
            Window::from_millis(500, 1600),
            Dur::from_millis(600),
        ),
        membership: None,
        horizon: Dur::from_secs(25),
        expect: Verdict::WRONGFUL,
    }
}

/// **partition-heals** — both directions between the nodes are severed
/// for 120 ms, then heal. The worst heartbeat gap is one TTB plus the
/// partition plus reconnect (≈ 220 ms), still under TTA = 250 ms with
/// the transport's backoff accounted for: the referenced activity `v`
/// must survive, and the garbage cycle that straddles the partition
/// must still be collected after the heal.
pub fn partition_heals() -> Scenario {
    Scenario {
        name: "partition-heals",
        nodes: 2,
        dgc: conformance_dgc(),
        script: vec![
            at_ms(
                0,
                Op::Spawn {
                    tag: 0,
                    node: 0,
                    busy: true, // the root, busy forever
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 1,
                    node: 1,
                    busy: true, // v: kept alive only by cross-node heartbeats
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 2,
                    node: 0,
                    busy: true,
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 3,
                    node: 1,
                    busy: true,
                },
            ),
            at_ms(0, Op::AddRef { from: 0, to: 1 }),
            at_ms(0, Op::AddRef { from: 2, to: 3 }),
            at_ms(0, Op::AddRef { from: 3, to: 2 }),
            at_ms(100, Op::SetIdle { tag: 1, idle: true }),
            at_ms(100, Op::SetIdle { tag: 2, idle: true }),
            at_ms(100, Op::SetIdle { tag: 3, idle: true }),
        ],
        profile: FaultProfile::none().partition_pair(0, 1, Window::from_millis(600, 720)),
        membership: None,
        horizon: Dur::from_secs(25),
        expect: Verdict::SAFE_AND_COMPLETE,
    }
}

/// **pause-models-local-gc** — §4.2's other hazard: the *referencer's*
/// node stops the world for 700 ms (a long local-GC pause), sending no
/// heartbeats. 700 ms ≫ TTA, so the referenced activity times out while
/// genuinely live: wrongful collection, on both runtimes.
pub fn pause_models_local_gc() -> Scenario {
    Scenario {
        name: "pause-models-local-gc",
        nodes: 2,
        dgc: conformance_dgc(),
        script: vec![
            at_ms(
                0,
                Op::Spawn {
                    tag: 0,
                    node: 0,
                    busy: true, // busy root on the node that will pause
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 1,
                    node: 1,
                    busy: true,
                },
            ),
            at_ms(0, Op::AddRef { from: 0, to: 1 }),
            at_ms(100, Op::SetIdle { tag: 1, idle: true }),
        ],
        profile: FaultProfile::none().pause(0, Window::from_millis(600, 1300)),
        membership: None,
        horizon: Dur::from_secs(25),
        expect: Verdict::WRONGFUL,
    }
}

/// **crash-without-rejoin** — the first churn quadrant: node 2 dies at
/// 800 ms and never returns. Its busy referencer `w` dies *with* it
/// (the environment's kill, not a collection), which orphans the idle
/// `u` it was keeping alive on node 1 — `u` must then fall as correct
/// collection (silence past TTA, accelerated by the membership dead
/// verdict feeding the send-failure path). Meanwhile `v`, held by a
/// live busy root across the surviving link, must not be touched: a
/// membership layer that slanders live nodes would convict itself
/// here. Both runtimes must reach clean collection.
pub fn crash_without_rejoin() -> Scenario {
    Scenario {
        name: "crash-without-rejoin",
        nodes: 3,
        dgc: conformance_dgc(),
        script: vec![
            at_ms(
                0,
                Op::Spawn {
                    tag: 0,
                    node: 0,
                    busy: true, // the root, busy forever
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 1,
                    node: 1,
                    busy: true, // v: live forever, guarded by the root
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 2,
                    node: 2,
                    busy: true, // w: dies in the crash while busy
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 3,
                    node: 1,
                    busy: true, // u: held only by w
                },
            ),
            at_ms(0, Op::AddRef { from: 0, to: 1 }),
            at_ms(0, Op::AddRef { from: 2, to: 3 }),
            at_ms(100, Op::SetIdle { tag: 1, idle: true }),
            at_ms(100, Op::SetIdle { tag: 3, idle: true }),
        ],
        profile: FaultProfile::none().crash(2, Window::from_millis(800, 800), None),
        membership: Some(conformance_membership()),
        horizon: Dur::from_secs(25),
        expect: Verdict::SAFE_AND_COMPLETE,
    }
}

/// **crash-and-rejoin** — the second churn quadrant: node 2 crashes at
/// 700 ms and restarts at 1600 ms as incarnation 2 (empty, a fresh
/// port on sockets, re-bootstrapped from the seed). After the rejoin
/// the script builds a garbage cycle *through* the reborn node
/// (`w2 ⇄ u2` across nodes 2 and 1): collecting it proves the rejoined
/// incarnation re-registered cleanly — peers re-learned its address
/// from gossip and the full TTB/TTA + consensus cycle resumed in both
/// directions — while `v` again guards against wrongful collection.
pub fn crash_and_rejoin() -> Scenario {
    Scenario {
        name: "crash-and-rejoin",
        nodes: 3,
        dgc: conformance_dgc(),
        script: vec![
            at_ms(
                0,
                Op::Spawn {
                    tag: 0,
                    node: 0,
                    busy: true, // the root, busy forever
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 1,
                    node: 1,
                    busy: true, // v: live forever, guarded by the root
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 2,
                    node: 2,
                    busy: true, // w: dies (busy) in the crash
                },
            ),
            at_ms(0, Op::AddRef { from: 0, to: 1 }),
            at_ms(100, Op::SetIdle { tag: 1, idle: true }),
            // --- node 2 is down from 700 ms to 1600 ms ---
            at_ms(
                2000,
                Op::Spawn {
                    tag: 3,
                    node: 2,
                    busy: true, // w2: first activity of incarnation 2
                },
            ),
            at_ms(
                2000,
                Op::Spawn {
                    tag: 4,
                    node: 1,
                    busy: true, // u2: its cross-node cycle partner
                },
            ),
            at_ms(2000, Op::AddRef { from: 3, to: 4 }),
            at_ms(2000, Op::AddRef { from: 4, to: 3 }),
            at_ms(2300, Op::SetIdle { tag: 3, idle: true }),
            at_ms(2300, Op::SetIdle { tag: 4, idle: true }),
        ],
        profile: FaultProfile::none().crash(2, Window::from_millis(700, 1600), Some(2)),
        membership: Some(conformance_membership()),
        horizon: Dur::from_secs(30),
        expect: Verdict::SAFE_AND_COMPLETE,
    }
}

/// **graceful-leave** — the clean-shutdown counterpart of
/// `crash-without-rejoin`: node 2 *announces* its departure at 800 ms
/// (`leave()` driven on clean shutdown) instead of vanishing. Its busy
/// referencer `w` dies with it — the environment's kill, not a
/// collection — which orphans the idle `u` on node 1; the `Left`
/// verdict cuts the edge immediately (no suspicion timeout), so `u`
/// falls as correct collection, while `v`, held by a live busy root,
/// must not be touched. Both runtimes must reach clean collection.
pub fn graceful_leave() -> Scenario {
    Scenario {
        name: "graceful-leave",
        nodes: 3,
        dgc: conformance_dgc(),
        script: vec![
            at_ms(
                0,
                Op::Spawn {
                    tag: 0,
                    node: 0,
                    busy: true, // the root, busy forever
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 1,
                    node: 1,
                    busy: true, // v: live forever, guarded by the root
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 2,
                    node: 2,
                    busy: true, // w: departs (busy) with the leave
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 3,
                    node: 1,
                    busy: true, // u: held only by w
                },
            ),
            at_ms(0, Op::AddRef { from: 0, to: 1 }),
            at_ms(0, Op::AddRef { from: 2, to: 3 }),
            at_ms(100, Op::SetIdle { tag: 1, idle: true }),
            at_ms(100, Op::SetIdle { tag: 3, idle: true }),
            at_ms(800, Op::Leave { node: 2 }),
        ],
        profile: FaultProfile::none(),
        membership: Some(conformance_membership()),
        horizon: Dur::from_secs(25),
        expect: Verdict::SAFE_AND_COMPLETE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_is_statically_safe_and_sorted() {
        for s in all() {
            s.dgc
                .validate()
                .unwrap_or_else(|e| panic!("{}: unsafe static config: {e:?}", s.name));
            assert!(
                s.script.windows(2).all(|w| w[0].at <= w[1].at),
                "{}: script must be time-sorted",
                s.name
            );
            assert!(s.nodes >= 2, "{}: conformance needs a network", s.name);
        }
    }

    #[test]
    fn churn_scenarios_leave_the_detector_room() {
        // The churn quadrants are seed-robust only if their timing
        // leaves margins: the crash must come well after the last
        // pre-crash op settles, the membership layer must be able to
        // bury the node long before the horizon, and post-rejoin ops
        // must come comfortably after the restart.
        for s in [crash_without_rejoin(), crash_and_rejoin()] {
            let m = s.membership.expect("churn needs membership");
            assert!(m.dead_after > m.suspect_after);
            for crash in s.profile.node_crashes() {
                let start = crash.down.start;
                for op in s.script.iter().filter(|op| {
                    matches!(op.op, Op::SetIdle { .. } | Op::AddRef { .. }) && op.at < start
                }) {
                    assert!(
                        start.since(op.at) >= Dur::from_millis(500),
                        "{}: op at {} too close to crash at {}",
                        s.name,
                        op.at,
                        start
                    );
                }
                if crash.rejoin_incarnation.is_some() {
                    for op in s.script.iter().filter(|op| op.at >= start) {
                        assert!(
                            op.at.since(crash.down.end) >= Dur::from_millis(300),
                            "{}: post-rejoin op at {} too close to restart at {}",
                            s.name,
                            op.at,
                            crash.down.end
                        );
                    }
                }
            }
            // Crashes have no deterministic delay bound — they must
            // never masquerade as an in-slack profile.
            assert_eq!(s.profile.worst_case_extra_delay(), Dur::MAX);
        }
    }

    #[test]
    fn safe_scenarios_stay_inside_the_slack() {
        // TTA − 2·TTB − latency budget: what a fault may add without
        // breaking the bound. The two "safe" scenarios must fit; the
        // two "unsafe" ones must overshoot TTA itself.
        let dgc = conformance_dgc();
        let slack = Dur::from_nanos(
            dgc.tta.as_nanos() - 2 * dgc.ttb.as_nanos() - Dur::from_millis(4).as_nanos(),
        );
        let s = safe_with_slack();
        assert!(
            s.profile.worst_case_extra_delay() < slack,
            "{}: worst case {} ≥ slack {}",
            s.name,
            s.profile.worst_case_extra_delay(),
            slack
        );
        // The symmetric partition sums both directions in the global
        // worst case, but one message crosses only one of them: the
        // per-direction bound (the window width) is what must fit.
        let p = partition_heals();
        let width = p.profile.link_disruptions()[0].window;
        assert!(
            width.end.since(width.start) < slack,
            "{}: partition too wide",
            p.name
        );
        {
            let s = delay_violates_tta();
            assert!(s.profile.worst_case_extra_delay() > dgc.tta);
        }
        let pause = pause_models_local_gc();
        let p = &pause.profile.node_pauses()[0];
        assert!(p.window.end.since(p.window.start) > dgc.tta.saturating_mul(2));
    }
}
