//! # dgc-conformance — one scenario, two runtimes, one verdict
//!
//! The paper's safety claim (§4.2) is conditional: the DGC collects no
//! live activity only while `TTA > 2·TTB + MaxComm` holds under the
//! delays, losses and pauses the deployment actually experiences. The
//! simulator (`dgc-activeobj` over `dgc-simnet`) can explore that bound
//! deterministically; the socket runtime (`dgc-rt-net`) experiences it
//! for real through a chaos proxy. This crate makes the two runs *the
//! same experiment*:
//!
//! * a [`Scenario`] is a runtime-neutral description — how many nodes,
//!   a timed script of spawn / reference / idleness operations, a
//!   [`FaultProfile`], and the verdict the wrongful-collection oracle
//!   is expected to reach;
//! * [`run_simnet`] replays it on the deterministic grid (profile
//!   realized as delivery-time arithmetic, pauses as deferred events);
//! * [`run_rtnet`] replays it on a localhost TCP cluster with a
//!   [`dgc_rt_net::chaos::ChaosProxy`] on every directed link and real
//!   stop-the-world pauses in the node event loops;
//! * [`evaluate`] derives the [`Verdict`] for either run from the same
//!   ground truth: the script *is* the application, so the oracle's
//!   live set (equation (1), via [`dgc_activeobj::oracle::live_set`])
//!   is computable at any instant without trusting the runtime under
//!   test.
//!
//! A scenario **conforms** when both runtimes reach the expected
//! verdict — under every seed the suite is run with. The four canonical
//! scenarios in [`scenarios`] pin the §4.2 quadrants: faults inside the
//! slack (safe), a delay past TTA (wrongful collection), a partition
//! that heals inside the slack (safe), and a local-GC-style pause past
//! TTA (wrongful collection).
//!
//! Times are nanoseconds since scenario start on both sides: virtual
//! [`SimTime`] in the simulator, wall-clock offsets from the cluster
//! epoch on sockets. Scenarios therefore use millisecond-scale TTB/TTA
//! so a socket run finishes in seconds.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use dgc_activeobj::activity::Inert;
use dgc_activeobj::collector::CollectorKind;
use dgc_activeobj::oracle::{live_set, Snapshot};
use dgc_activeobj::runtime::{Grid, GridConfig};
use dgc_core::config::DgcConfig;
use dgc_core::faults::FaultProfile;
use dgc_core::id::AoId;
use dgc_core::units::{Dur, Time};
use dgc_membership::MembershipConfig;
use dgc_obs::TraceEvent;
pub use dgc_obs::TraceLevel;
use dgc_rt_net::{Cluster, NetConfig};
use dgc_simnet::time::{SimDuration, SimTime};
use dgc_simnet::topology::{ProcId, Topology};

pub mod scenarios;
pub mod workload;

// ---------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------

/// Events kept per node when a runner captures a trace tail for a
/// failure dump.
pub const TRACE_TAIL: usize = 100;

/// The trace level conformance runs record at: `DGC_TRACE=info` (or
/// `debug`) turns the telemetry plane's tracer on in **both** runtimes,
/// so a verdict disagreement comes with the protocol events that led to
/// it. Unset, empty or unrecognized means off — the default keeps the
/// suite allocation-free.
pub fn env_trace_level() -> TraceLevel {
    std::env::var("DGC_TRACE")
        .ok()
        .and_then(|s| TraceLevel::parse(&s))
        .unwrap_or(TraceLevel::Off)
}

/// What a runner observed besides the verdict: the merged metric
/// snapshot of every node and the recent trace events (per node on
/// sockets; the grid shares one ring across its processes).
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// Union of every node's [`dgc_obs::Registry`] snapshot.
    pub snapshot: dgc_obs::Snapshot,
    /// `(label, most recent events)` per trace ring.
    pub trace_tails: Vec<(String, Vec<TraceEvent>)>,
}

impl RunTelemetry {
    /// Renders the trace tails for a failure dump; points at
    /// `DGC_TRACE` when nothing was recorded.
    pub fn dump_tails(&self, runtime: &str, scenario: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if self.trace_tails.iter().all(|(_, t)| t.is_empty()) {
            let _ = writeln!(
                out,
                "--- {runtime} trace of {scenario}: empty \
                 (re-run with DGC_TRACE=info or DGC_TRACE=debug to capture one) ---"
            );
            return out;
        }
        for (label, tail) in &self.trace_tails {
            let _ = writeln!(
                out,
                "--- {runtime} trace tail of {scenario}, {label} (last {} events) ---",
                tail.len()
            );
            for ev in tail {
                let _ = writeln!(out, "{ev}");
            }
        }
        out
    }
}

/// One scripted operation, applied at a scenario time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Creates activity `tag` on `node`, initially busy or idle.
    Spawn {
        /// Scenario-local activity name.
        tag: usize,
        /// Hosting node.
        node: u32,
        /// Initial busy state.
        busy: bool,
    },
    /// Flips `tag` idle (`true`) or busy (`false`).
    SetIdle {
        /// The activity.
        tag: usize,
        /// New idleness.
        idle: bool,
    },
    /// Adds the application reference `from → to`.
    AddRef {
        /// Referencer tag.
        from: usize,
        /// Referenced tag.
        to: usize,
    },
    /// Drops the application reference `from → to`.
    DropRef {
        /// Referencer tag.
        from: usize,
        /// Referenced tag.
        to: usize,
    },
    /// `node` departs **gracefully** (clean shutdown): its membership
    /// engine announces `Left`, the farewell flushes, and every
    /// activity it hosts dies with it — the environment's kill, not a
    /// collection (like a crash, but peers learn immediately instead of
    /// waiting out the suspicion timeout). Requires
    /// [`Scenario::membership`].
    Leave {
        /// The departing node.
        node: u32,
    },
}

/// An [`Op`] with its scenario time.
#[derive(Debug, Clone, Copy)]
pub struct ScriptOp {
    /// When to apply it (nanoseconds since scenario start).
    pub at: Time,
    /// What to do.
    pub op: Op,
}

/// The oracle's summary of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Some activity was terminated while the ground-truth live set
    /// still contained it (the §4.2 failure mode).
    pub wrongful_collection: bool,
    /// At the end of the run, some garbage activity was still alive
    /// (the liveness half of the contract).
    pub leftover_garbage: bool,
}

impl Verdict {
    /// Everything the paper promises: nothing live collected, nothing
    /// garbage left.
    pub const SAFE_AND_COMPLETE: Verdict = Verdict {
        wrongful_collection: false,
        leftover_garbage: false,
    };
    /// The bound was violated and a live activity fell.
    pub const WRONGFUL: Verdict = Verdict {
        wrongful_collection: true,
        leftover_garbage: false,
    };
}

/// A runtime-neutral conformance scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (test output, CI logs).
    pub name: &'static str,
    /// Node count (simulator processes / socket nodes).
    pub nodes: u32,
    /// Protocol parameters; must satisfy the static safety formula —
    /// the *faults* decide whether the run stays inside it.
    pub dgc: DgcConfig,
    /// Timed operations, sorted by time.
    pub script: Vec<ScriptOp>,
    /// The faults, unseeded; runners seed it per run.
    pub profile: FaultProfile,
    /// Membership timings, for churn scenarios: the simulator runs a
    /// gossip engine per process, the socket runner builds a
    /// seed-bootstrapped join cluster instead of a statically wired
    /// one. `None` keeps the pre-membership wiring.
    pub membership: Option<MembershipConfig>,
    /// Evaluation horizon: virtual for the simulator, a wall-clock cap
    /// (with early exit once the verdict stabilizes) on sockets.
    pub horizon: Dur,
    /// The verdict both runtimes must reach.
    pub expect: Verdict,
}

/// One observed termination, in scenario time.
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// When it was observed.
    pub at: Time,
    /// Which activity (scenario tag).
    pub tag: usize,
}

// ---------------------------------------------------------------------
// Ground truth
// ---------------------------------------------------------------------

/// Oracle ids are synthetic: the tag *is* the identity. (Runtime AoIds
/// differ between runtimes; verdicts must not depend on them.)
fn tag_id(tag: usize) -> AoId {
    AoId::new(0, tag as u32)
}

#[derive(Default)]
struct GroundTruth {
    spawned: BTreeSet<usize>,
    busy: BTreeSet<usize>,
    edges: BTreeSet<(usize, usize)>,
}

fn state_at(script: &[ScriptOp], t: Time) -> GroundTruth {
    let mut gt = GroundTruth::default();
    for s in script.iter().filter(|s| s.at <= t) {
        match s.op {
            Op::Spawn { tag, busy, .. } => {
                gt.spawned.insert(tag);
                if busy {
                    gt.busy.insert(tag);
                }
            }
            Op::SetIdle { tag, idle } => {
                if idle {
                    gt.busy.remove(&tag);
                } else {
                    gt.busy.insert(tag);
                }
            }
            Op::AddRef { from, to } => {
                gt.edges.insert((from, to));
            }
            Op::DropRef { from, to } => {
                gt.edges.remove(&(from, to));
            }
            // A leave's kills are folded into the terminated set by
            // `evaluate` (see `environment_kills`), not into the
            // busy/edge state.
            Op::Leave { .. } => {}
        }
    }
    gt
}

/// The tags the oracle deems live at `t`, given which tags have already
/// terminated (a terminated activity is neither busy nor a referencer).
fn live_tags(script: &[ScriptOp], t: Time, terminated: &BTreeSet<usize>) -> BTreeSet<usize> {
    let gt = state_at(script, t);
    let snap = Snapshot {
        roots: Vec::new(),
        busy: gt
            .busy
            .iter()
            .filter(|tag| !terminated.contains(tag))
            .map(|tag| tag_id(*tag))
            .collect(),
        edges: gt
            .edges
            .iter()
            .filter(|(from, _)| !terminated.contains(from))
            .map(|(from, to)| (tag_id(*from), tag_id(*to)))
            .collect(),
        inflight: Vec::new(),
    };
    let live = live_set(&snap);
    gt.spawned
        .iter()
        .filter(|tag| live.contains(&tag_id(**tag)))
        .copied()
        .collect()
}

/// The ground-truth kills the *environment* inflicts: every tag spawned
/// on a crashing node before the crash instant dies at `down.start`,
/// and every tag spawned on a gracefully leaving node before the
/// scripted [`Op::Leave`] dies at the leave instant. (Tags scripted
/// onto a node after a rejoin are new activities of the new
/// incarnation.) These are kills, not collections: [`evaluate`] folds
/// them into the terminated set — so a dead referencer stops
/// propagating liveness and a killed activity is neither "wrongfully
/// collected" nor "leftover garbage" — without ever convicting the
/// collector for them.
fn environment_kills(scenario: &Scenario) -> Vec<(Time, usize)> {
    let mut downs: Vec<(u32, Time)> = scenario
        .profile
        .node_crashes()
        .iter()
        .map(|c| (c.node, c.down.start))
        .collect();
    downs.extend(scenario.script.iter().filter_map(|s| match s.op {
        Op::Leave { node } => Some((node, s.at)),
        _ => None,
    }));
    let mut kills = Vec::new();
    for (down_node, down_at) in downs {
        for s in &scenario.script {
            if let Op::Spawn { tag, node, .. } = s.op {
                if node == down_node && s.at < down_at {
                    kills.push((down_at, tag));
                }
            }
        }
    }
    kills.sort();
    kills
}

/// Derives the verdict for a run from its observed **collector**
/// terminations. The same function judges both runtimes — that is the
/// whole point. Environment kills (crashes, graceful leaves) come from
/// the scenario itself (see [`environment_kills`]), never from the
/// runtime under test: runners must not report them as observations.
pub fn evaluate(scenario: &Scenario, observations: &[Observation]) -> Verdict {
    enum Ev {
        Kill(usize),
        Collect(usize),
    }
    let mut timeline: Vec<(Time, u8, Ev)> = environment_kills(scenario)
        .into_iter()
        .map(|(at, tag)| (at, 0, Ev::Kill(tag))) // kills first on ties
        .collect();
    timeline.extend(observations.iter().map(|o| (o.at, 1, Ev::Collect(o.tag))));
    timeline.sort_by_key(|(at, pri, ev)| {
        (
            *at,
            *pri,
            match ev {
                Ev::Kill(t) | Ev::Collect(t) => *t,
            },
        )
    });
    let mut terminated: BTreeSet<usize> = BTreeSet::new();
    let mut wrongful = false;
    for (at, _, ev) in &timeline {
        match ev {
            Ev::Kill(tag) => {
                terminated.insert(*tag);
            }
            Ev::Collect(tag) => {
                if !terminated.contains(tag)
                    && live_tags(&scenario.script, *at, &terminated).contains(tag)
                {
                    wrongful = true;
                }
                terminated.insert(*tag);
            }
        }
    }
    let end = Time::ZERO + scenario.horizon;
    let live = live_tags(&scenario.script, end, &terminated);
    let leftover = state_at(&scenario.script, end)
        .spawned
        .iter()
        .any(|tag| !terminated.contains(tag) && !live.contains(tag));
    Verdict {
        wrongful_collection: wrongful,
        leftover_garbage: leftover,
    }
}

// ---------------------------------------------------------------------
// Simulator runner
// ---------------------------------------------------------------------

/// Replays `scenario` on the deterministic simulator and returns the
/// oracle verdict. Panics if the harness ground truth and the grid's
/// built-in snapshot oracle ever disagree — that would mean the
/// scenario description and the runtime diverged, which is a harness
/// bug, not a protocol result.
pub fn run_simnet(scenario: &Scenario, seed: u64) -> Verdict {
    run_simnet_obs(scenario, seed).0
}

/// [`run_simnet`], also returning the run's [`RunTelemetry`] (merged
/// metric snapshot plus the grid's trace tail). Tracing records at
/// [`env_trace_level`].
pub fn run_simnet_obs(scenario: &Scenario, seed: u64) -> (Verdict, RunTelemetry) {
    let profile = scenario.profile.clone().seeded(seed);
    let topo = Topology::single_site(scenario.nodes, SimDuration::from_millis(2));
    let mut config = GridConfig::new(topo)
        .collector(CollectorKind::Complete(scenario.dgc))
        .seed(seed)
        .trace_level(env_trace_level())
        .fault_profile(&profile);
    if let Some(m) = scenario.membership {
        config = config.membership(m);
    }
    let mut grid = Grid::new(config);
    let mut ids: BTreeMap<usize, AoId> = BTreeMap::new();
    for s in &scenario.script {
        grid.run_until(SimTime::from_nanos(s.at.as_nanos()));
        match s.op {
            Op::Spawn { tag, node, busy } => {
                let id = grid.spawn(ProcId(node), Box::new(Inert));
                if busy {
                    grid.set_busy(id, true);
                }
                ids.insert(tag, id);
            }
            Op::SetIdle { tag, idle } => grid.set_busy(ids[&tag], !idle),
            Op::AddRef { from, to } => grid.make_ref(ids[&from], ids[&to]),
            Op::DropRef { from, to } => grid.drop_ref(ids[&from], ids[&to]),
            Op::Leave { node } => grid.leave_proc(ProcId(node)),
        }
    }
    grid.run_until(SimTime::from_nanos(
        (Time::ZERO + scenario.horizon).as_nanos(),
    ));

    let by_id: BTreeMap<AoId, usize> = ids.iter().map(|(tag, id)| (*id, *tag)).collect();
    // Only collector-driven terminations are observations; crash kills
    // (`reason: None`) are the environment's and already folded into
    // the ground truth by `evaluate`.
    let observations: Vec<Observation> = grid
        .collected()
        .iter()
        .filter(|c| c.reason.is_some())
        .map(|c| Observation {
            at: Time::from_nanos(c.at.as_nanos()),
            tag: by_id[&c.ao],
        })
        .collect();
    let verdict = evaluate(scenario, &observations);
    // One ring serves every grid process, so the per-node tail budget
    // pools into a single, longer tail.
    let telemetry = RunTelemetry {
        snapshot: grid.obs_merged(),
        trace_tails: vec![(
            "grid (all procs)".to_string(),
            grid.trace()
                .tracer()
                .tail(TRACE_TAIL * scenario.nodes as usize),
        )],
    };
    if verdict.wrongful_collection == grid.violations().is_empty() {
        eprint!("{}", telemetry.dump_tails("simnet", scenario.name));
        panic!(
            "{}: harness ground truth disagrees with the grid's built-in oracle \
             (harness wrongful: {}, violations: {:?})",
            scenario.name,
            verdict.wrongful_collection,
            grid.violations()
        );
    }
    (verdict, telemetry)
}

// ---------------------------------------------------------------------
// Socket runner
// ---------------------------------------------------------------------

/// Replays `scenario` on a localhost `dgc-rt-net` cluster whose every
/// directed link crosses a chaos proxy, and returns the oracle verdict.
///
/// Wall-clock runs cannot be replayed to an exact horizon the way
/// virtual-time runs can, so the runner polls: once the verdict matches
/// the scenario's expectation it keeps watching for a 2·TTA grace
/// window (late wrongful terminations would flip it back), then stops;
/// otherwise it watches until the horizon.
///
/// **Observation skew.** A termination is timestamped when the poll
/// first *sees* it, up to one poll interval (plus delivery) after it
/// happened. [`evaluate`] judges liveness at that skewed instant, so a
/// script transition landing within that skew of a termination could be
/// judged against the wrong side of the transition. Scenario design
/// rule (enforced by the canonical set, see [`scenarios`]): keep every
/// scripted state change ≥ 100 ms away from any instant the collector
/// could plausibly terminate an activity, and the skew is harmless.
pub fn run_rtnet(scenario: &Scenario, seed: u64) -> std::io::Result<Verdict> {
    Ok(run_rtnet_obs(scenario, seed)?.0)
}

/// [`run_rtnet`], also returning the run's [`RunTelemetry`] (merged
/// metric snapshot — chaos counters folded in — plus one trace tail per
/// surviving node). Tracing records at [`env_trace_level`].
pub fn run_rtnet_obs(scenario: &Scenario, seed: u64) -> std::io::Result<(Verdict, RunTelemetry)> {
    let profile = scenario.profile.clone().seeded(seed);
    // Churn scenarios — crashes or scripted graceful leaves — run on a
    // seed-bootstrapped join cluster (departures and rejoins need the
    // membership layer); everything else keeps the chaos-proxied static
    // topology.
    let has_leave = scenario
        .script
        .iter()
        .any(|s| matches!(s.op, Op::Leave { .. }));
    let config = NetConfig::new(scenario.dgc).trace(env_trace_level());
    let cluster = if profile.node_crashes().is_empty() && !has_leave {
        Cluster::listen_local_chaos(scenario.nodes, config, profile)?
    } else {
        let membership = scenario
            .membership
            .expect("churn scenarios must set Scenario::membership");
        Cluster::join_local_churn(scenario.nodes, config.membership(membership), &profile)?
    };
    let epoch = cluster.epoch();
    let now = |epoch: Instant| Time::from_nanos(epoch.elapsed().as_nanos() as u64);

    let mut ids: BTreeMap<usize, AoId> = BTreeMap::new();
    for s in &scenario.script {
        let target = Duration::from_nanos(s.at.as_nanos());
        let elapsed = epoch.elapsed();
        if elapsed < target {
            std::thread::sleep(target - elapsed);
        }
        match s.op {
            Op::Spawn { tag, node, busy } => {
                let id = cluster.add_activity(node);
                if !busy {
                    cluster.set_idle(id, true);
                }
                ids.insert(tag, id);
            }
            Op::SetIdle { tag, idle } => cluster.set_idle(ids[&tag], idle),
            Op::AddRef { from, to } => cluster.add_ref(ids[&from], ids[&to]),
            Op::DropRef { from, to } => cluster.drop_ref(ids[&from], ids[&to]),
            Op::Leave { node } => cluster.leave_node(node),
        }
    }

    let by_id: BTreeMap<AoId, usize> = ids.iter().map(|(tag, id)| (*id, *tag)).collect();
    let horizon = Duration::from_nanos(scenario.horizon.as_nanos());
    let grace = Duration::from_nanos(scenario.dgc.tta.as_nanos()).saturating_mul(2);
    // A matching verdict may only conclude the run after the scenario
    // has actually happened: every scripted op applied and every fault
    // window closed. Without this floor, a safe scenario expecting no
    // terminations would pass vacuously before its faults ever fired.
    let scenario_over = {
        let mut last = Time::ZERO;
        for s in &scenario.script {
            last = last.max(s.at);
        }
        for l in scenario.profile.link_disruptions() {
            last = last.max(l.window.end);
        }
        for p in scenario.profile.node_pauses() {
            last = last.max(p.window.end);
        }
        for c in scenario.profile.node_crashes() {
            last = last.max(if c.rejoin_incarnation.is_some() {
                c.down.end
            } else {
                c.down.start
            });
        }
        Duration::from_nanos(last.as_nanos())
    };
    let mut first_seen: BTreeMap<usize, Time> = BTreeMap::new();
    let mut matched_since: Option<Instant> = None;
    let verdict = loop {
        for t in cluster.terminated() {
            if let Some(tag) = by_id.get(&t.ao) {
                first_seen.entry(*tag).or_insert_with(|| now(epoch));
            }
        }
        let observations: Vec<Observation> = first_seen
            .iter()
            .map(|(tag, at)| Observation { at: *at, tag: *tag })
            .collect();
        let v = evaluate(scenario, &observations);
        if v == scenario.expect && epoch.elapsed() >= scenario_over {
            let since = *matched_since.get_or_insert_with(Instant::now);
            if since.elapsed() >= grace {
                break v;
            }
        } else {
            matched_since = None;
        }
        if epoch.elapsed() >= horizon {
            break v;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let trace_tails = (0..scenario.nodes)
        .filter_map(|node| {
            let reg = cluster.obs(node)?;
            Some((format!("node {node}"), reg.tracer().tail(TRACE_TAIL)))
        })
        .collect();
    let telemetry = RunTelemetry {
        snapshot: cluster.obs_merged(),
        trace_tails,
    };
    cluster.shutdown();
    Ok((verdict, telemetry))
}

// ---------------------------------------------------------------------
// Seeds
// ---------------------------------------------------------------------

/// The fixed seeds the suite runs under when none is requested.
pub const DEFAULT_SEEDS: [u64; 3] = [11, 42, 2026_0731];

/// Seeds for this run: `CONFORMANCE_SEED=<n>` selects a single seed
/// (the CI random job sets it and echoes the value for reproduction);
/// otherwise [`DEFAULT_SEEDS`].
pub fn seeds() -> Vec<u64> {
    match std::env::var("CONFORMANCE_SEED") {
        Ok(s) => {
            let seed = s
                .trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("CONFORMANCE_SEED must be a u64, got {s:?}"));
            vec![seed]
        }
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_scenario(expect: Verdict) -> Scenario {
        Scenario {
            name: "toy",
            nodes: 2,
            dgc: scenarios::conformance_dgc(),
            script: vec![
                ScriptOp {
                    at: Time::ZERO,
                    op: Op::Spawn {
                        tag: 0,
                        node: 0,
                        busy: true,
                    },
                },
                ScriptOp {
                    at: Time::ZERO,
                    op: Op::Spawn {
                        tag: 1,
                        node: 1,
                        busy: true,
                    },
                },
                ScriptOp {
                    at: Time::ZERO,
                    op: Op::AddRef { from: 0, to: 1 },
                },
                ScriptOp {
                    at: Time::from_nanos(100_000_000),
                    op: Op::SetIdle { tag: 1, idle: true },
                },
            ],
            profile: FaultProfile::none(),
            membership: None,
            horizon: Dur::from_secs(10),
            expect,
        }
    }

    #[test]
    fn evaluate_flags_wrongful_termination() {
        let s = toy_scenario(Verdict::WRONGFUL);
        // Tag 1 is referenced by busy tag 0: terminating it is wrongful.
        let v = evaluate(
            &s,
            &[Observation {
                at: Time::from_nanos(500_000_000),
                tag: 1,
            }],
        );
        assert!(v.wrongful_collection);
        assert!(!v.leftover_garbage, "nothing alive is garbage");
    }

    #[test]
    fn evaluate_accepts_garbage_termination_before_the_script_says_so() {
        let mut s = toy_scenario(Verdict::SAFE_AND_COMPLETE);
        // Tag 0 goes idle at 200 ms; terminating tag 1 *before* that is
        // wrongful, after it is correct collection.
        s.script.push(ScriptOp {
            at: Time::from_nanos(200_000_000),
            op: Op::SetIdle { tag: 0, idle: true },
        });
        let early = evaluate(
            &s,
            &[Observation {
                at: Time::from_nanos(150_000_000),
                tag: 1,
            }],
        );
        assert!(early.wrongful_collection);
        let late = evaluate(
            &s,
            &[
                Observation {
                    at: Time::from_nanos(700_000_000),
                    tag: 1,
                },
                Observation {
                    at: Time::from_nanos(800_000_000),
                    tag: 0,
                },
            ],
        );
        assert!(!late.wrongful_collection);
        assert!(!late.leftover_garbage);
    }

    #[test]
    fn evaluate_reports_leftover_garbage() {
        let s = toy_scenario(Verdict::SAFE_AND_COMPLETE);
        // Nothing ever terminates, but from 100 ms on, tag 1 is garbage
        // only if tag 0 is idle — tag 0 stays busy, so 1 is live;
        // removing the edge makes 1 garbage.
        let v = evaluate(&s, &[]);
        assert!(!v.leftover_garbage, "1 is held by busy 0");
        let mut s2 = s.clone();
        s2.script.push(ScriptOp {
            at: Time::from_nanos(200_000_000),
            op: Op::DropRef { from: 0, to: 1 },
        });
        let v2 = evaluate(&s2, &[]);
        assert!(v2.leftover_garbage, "unreferenced idle 1 never fell");
    }

    #[test]
    fn terminated_referencers_stop_propagating_liveness() {
        // busy 0 → 1 → 2 chain; once 1 is (wrongfully) gone, 2 is no
        // longer reachable from anything live.
        let s = Scenario {
            script: vec![
                ScriptOp {
                    at: Time::ZERO,
                    op: Op::Spawn {
                        tag: 0,
                        node: 0,
                        busy: true,
                    },
                },
                ScriptOp {
                    at: Time::ZERO,
                    op: Op::Spawn {
                        tag: 1,
                        node: 1,
                        busy: false,
                    },
                },
                ScriptOp {
                    at: Time::ZERO,
                    op: Op::Spawn {
                        tag: 2,
                        node: 1,
                        busy: false,
                    },
                },
                ScriptOp {
                    at: Time::ZERO,
                    op: Op::AddRef { from: 0, to: 1 },
                },
                ScriptOp {
                    at: Time::ZERO,
                    op: Op::AddRef { from: 1, to: 2 },
                },
            ],
            ..toy_scenario(Verdict::SAFE_AND_COMPLETE)
        };
        let terminated: BTreeSet<usize> = [1].into_iter().collect();
        let live = live_tags(&s.script, Time::from_nanos(1), &terminated);
        assert!(live.contains(&0));
        // 1 stays in the live set — busy 0 still references it, which
        // is precisely why its termination was wrongful — but its own
        // out-edges must no longer propagate liveness:
        assert!(!live.contains(&2), "its referencer is gone");
    }

    #[test]
    fn seeds_default_without_env() {
        // Serial-unsafe env tricks avoided: just check the default path
        // (CI sets the variable only in the dedicated random job).
        if std::env::var("CONFORMANCE_SEED").is_err() {
            assert_eq!(seeds(), DEFAULT_SEEDS.to_vec());
        }
    }
}
