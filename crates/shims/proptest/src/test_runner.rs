//! Deterministic case runner: configuration, per-case RNG, and the
//! error type `prop_assert!` produces.

/// Per-block configuration, named as upstream's re-export.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            // Upstream defaults to 256; the offline shim trades depth for
            // CI time. PROPTEST_CASES overrides both this and per-block
            // settings.
            cases: 48,
            max_shrink_iters: 0,
        }
    }
}

/// Resolves the case count, honoring the `PROPTEST_CASES` env override.
pub fn effective_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(configured),
        Err(_) => configured,
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a rendered message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generation stream (SplitMix64), seeded from the test's
/// path and the case index so every case replays bit-identically.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for case `case` of the test identified by `path`.
    pub fn for_case(path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Debiased multiply-shift.
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            let lo = m as u64;
            if lo < bound {
                let threshold = bound.wrapping_neg() % bound;
                if lo < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_differ() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn below_is_bounded() {
        let mut r = TestRng::for_case("b", 0);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }
}
