//! Conservation of the telemetry plane on a live cluster: every
//! `net.*` / `egress.*` counter a node's [`dgc_obs::Registry`] holds is
//! a *mirror* of a legacy counter ([`NetStatsSnapshot`],
//! [`EgressStats`]) that keeps counting independently. After a real
//! run — sockets, frames, flushes, collections — the two views must be
//! equal on every node, or the mirroring dropped events somewhere on
//! the hot path.

use std::time::{Duration, Instant};

use dgc_core::config::DgcConfig;
use dgc_core::units::Dur;
use dgc_rt_net::{Cluster, NetConfig};

fn dgc() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_millis(25))
        .tta(Dur::from_millis(80))
        .max_comm(Dur::from_millis(20))
        .build()
}

fn poll_until(deadline: Duration, check: impl Fn() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    check()
}

/// `(name, legacy value)` pairs for one node, both planes.
fn legacy_pairs(cluster: &Cluster, node: u32) -> Option<Vec<(&'static str, u64)>> {
    let net = cluster.stats().get(node as usize).copied()?;
    let eg = cluster.egress_stats(node)?;
    // The transport half comes from the snapshot's own exhaustive
    // enumeration (`named_counters` destructures the struct), so a
    // counter added to `NetStatsSnapshot` is cross-checked here without
    // anyone remembering to extend this list.
    let mut pairs = net.named_counters();
    pairs.extend([
        ("egress.enqueued_items", eg.enqueued_items),
        ("egress.enqueued_bytes", eg.enqueued_bytes),
        ("egress.dropped_items", eg.dropped_items),
        ("egress.dropped_bytes", eg.dropped_bytes),
        ("egress.flushes", eg.flushes),
        ("egress.items", eg.items),
        ("egress.bytes", eg.bytes),
        ("egress.piggybacked", eg.piggybacked),
        ("egress.flush_reason.app", eg.app_flushes),
        ("egress.flush_reason.delay", eg.delay_flushes),
        ("egress.flush_reason.bounds", eg.bound_flushes),
        ("egress.flush_reason.forced", eg.forced_flushes),
    ]);
    Some(pairs)
}

fn mismatches(cluster: &Cluster, nodes: u32) -> Vec<String> {
    let mut out = Vec::new();
    for node in 0..nodes {
        let Some(reg) = cluster.obs(node) else {
            out.push(format!("node {node}: no registry"));
            continue;
        };
        let Some(pairs) = legacy_pairs(cluster, node) else {
            out.push(format!("node {node}: event loop did not answer"));
            continue;
        };
        let snap = reg.snapshot();
        for (name, legacy) in pairs {
            let mirrored = snap.counter(name);
            if mirrored != legacy {
                out.push(format!(
                    "node {node}: {name} legacy {legacy} != registry {mirrored}"
                ));
            }
        }
        // The flush-size histogram records exactly once per flush.
        let flushes = snap.counter("egress.flushes");
        let sized = snap.histogram("egress.flush_items").count;
        if sized != flushes {
            out.push(format!(
                "node {node}: egress.flush_items has {sized} samples for {flushes} flushes"
            ));
        }
    }
    out
}

#[test]
fn registry_mirrors_conserve_transport_and_egress_counters() {
    const NODES: u32 = 3;
    let cluster = Cluster::listen_local(NODES, NetConfig::new(dgc())).unwrap();

    // Real traffic on every plane: an acyclic chain from node 0 plus a
    // cross-node cycle between nodes 1 and 2, all garbage — so frames,
    // flushes, heartbeats, consensus and terminations all happen before
    // the cluster quiesces.
    let a = cluster.add_activity(0);
    let b = cluster.add_activity(1);
    let c = cluster.add_activity(2);
    cluster.add_ref(a, b);
    cluster.add_ref(b, c);
    cluster.add_ref(c, b);
    cluster.set_idle(a, true);
    cluster.set_idle(b, true);
    cluster.set_idle(c, true);
    assert!(
        cluster.wait_until(Duration::from_secs(20), |t| t.len() == 3),
        "all three activities must collect; saw {:?}",
        cluster.terminated()
    );

    // With every endpoint collected (and no membership layer) the
    // traffic stops; in-flight mirror updates settle within the poll.
    let conserved = poll_until(Duration::from_secs(5), || {
        mismatches(&cluster, NODES).is_empty()
    });
    assert!(
        conserved,
        "registry mirrors diverged from legacy counters:\n{}",
        mismatches(&cluster, NODES).join("\n")
    );

    // And the run actually exercised the planes under test.
    let total = cluster.obs_merged();
    assert!(total.counter("net.frames_sent") > 0, "no frames crossed");
    assert!(total.counter("egress.flushes") > 0, "nothing flushed");
    assert!(
        total.counter("dgc.collected.acyclic") + total.counter("dgc.collected.cyclic") == 3,
        "collections not recorded: {}",
        total.render_tree()
    );
    cluster.shutdown();
}

/// Disagreements between the cluster-wide [`NetStatsSnapshot`] fold
/// (`Cluster::total_stats`) and the merged registry view, both
/// directions.
fn fold_mismatches(cluster: &Cluster) -> Vec<String> {
    let mut out = Vec::new();
    let folded = cluster.total_stats().named_counters();
    let merged = cluster.obs_merged();
    // Every snapshot field must be mirrored counter-for-counter…
    for (name, value) in &folded {
        let mirrored = merged.counter(name);
        if mirrored != *value {
            out.push(format!(
                "{name}: fold {value} != merged registry {mirrored}"
            ));
        }
    }
    // …and every `net.*` counter the registry holds must exist in the
    // snapshot's enumeration, or `total_stats` is silently dropping a
    // counter somebody added to the registry only.
    for (name, value) in merged
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("net."))
    {
        if !folded.iter().any(|(n, _)| n == name) {
            out.push(format!(
                "registry counter {name} ({value}) missing from NetStatsSnapshot::named_counters"
            ));
        }
    }
    out
}

#[test]
fn total_stats_fold_and_registry_agree_on_every_net_counter() {
    // A cross-node cycle gives every transport counter a chance to
    // move; afterwards the exhaustive fold and the merged registries
    // must tell the same story, key by key.
    let cluster = Cluster::listen_local(2, NetConfig::new(dgc())).unwrap();
    let a = cluster.add_activity(0);
    let b = cluster.add_activity(1);
    cluster.add_ref(a, b);
    cluster.add_ref(b, a);
    cluster.set_idle(a, true);
    cluster.set_idle(b, true);
    assert!(
        cluster.wait_until(Duration::from_secs(20), |t| t.len() == 2),
        "cycle must collect; saw {:?}",
        cluster.terminated()
    );

    let agreed = poll_until(Duration::from_secs(5), || {
        fold_mismatches(&cluster).is_empty()
    });
    assert!(
        agreed,
        "total_stats fold diverged from the merged registry:\n{}",
        fold_mismatches(&cluster).join("\n")
    );
    cluster.shutdown();
}
