//! # dgc-membership — seed-node gossip directory for the DGC runtimes
//!
//! The paper's DGC assumes every activity can reach the nodes hosting
//! its referencers and referenced peers; the reproduction, until this
//! crate, wired that topology **statically** (every node handed every
//! other node's address up front). Production grids churn: nodes join,
//! leave gracefully, crash, and rejoin. This crate is the missing
//! membership layer, runtime-neutral in the same sans-io style as
//! `dgc-core`:
//!
//! * [`Directory`] — a replicated map of [`NodeRecord`]s ordered by
//!   `(incarnation, status severity)`; merges are commutative, so any
//!   gossip order converges;
//! * [`Membership`] — the per-node engine: seed bootstrap, periodic
//!   anti-entropy as **delta digests** (records the peer has not
//!   acknowledged, with a periodic full-sync backstop — steady-state
//!   gossip is an empty ~19-byte heartbeat, O(churn) not O(cluster)),
//!   silence-based suspect/dead detection, SWIM-style refutation by
//!   incarnation outbidding, and a [`MembershipEvent`] stream for the
//!   runtime;
//! * [`wire`] — the binary digest codec, sized so gossip piggybacks on
//!   the egress plane's shared frames and meters honestly in the
//!   simulator.
//!
//! Both runtimes realize the same engine: `dgc-simnet`'s grid drives it
//! from simulated delivery (deterministic verdicts, replayable churn),
//! and `dgc-rt-net` drives it from its node event loop with digests in
//! real TCP frames and a `join(seed_addrs)` bootstrap. A **dead**
//! verdict feeds `DgcState::on_node_dead`, which is how the collector
//! learns that a departed node's referencers are gone (the send-failure
//! path of §4.1) — and a node rejoining under a higher incarnation
//! supersedes its own death record cleanly.
//!
//! ## Example: three nodes from one seed
//!
//! ```
//! use dgc_core::units::{Dur, Time};
//! use dgc_membership::{Membership, MembershipConfig};
//!
//! let cfg = MembershipConfig::scaled(Dur::from_millis(50));
//! let mut seed = Membership::new(0, None, 1, Time::ZERO, cfg);
//! let mut b = Membership::new(1, None, 1, Time::ZERO, cfg);
//! b.on_contact(Time::ZERO, 0, None); // all b knows: the seed exists
//! // b's first gossip introduces it; the seed replies with everything.
//! for out in b.on_tick(Time::ZERO) {
//!     for reply in seed.on_digest(Time::ZERO, 1, &out.digest) {
//!         if reply.to == 1 {
//!             b.on_digest(Time::ZERO, 0, &reply.digest);
//!         }
//!     }
//! }
//! assert_eq!(seed.directory().alive_nodes(), vec![0, 1]);
//! assert_eq!(b.directory().alive_nodes(), vec![0, 1]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod directory;
pub mod engine;
pub mod wire;

pub use directory::{Directory, NodeRecord, NodeStatus, Transition};
pub use engine::{Digest, GossipOut, Membership, MembershipConfig, MembershipEvent, MembershipObs};
