//! # dgc-workloads — the paper's evaluation workloads
//!
//! Everything §5 of the paper runs, rebuilt on the simulated grid:
//!
//! * [`nas`] — the ProActive NAS kernels CG, EP and FT at class-C scale
//!   (genuine scaled-down local numerics, class-C message sizes and
//!   compute times, complete reference graph from global barriers);
//! * [`torture`] — the master/slave reference-churn torture test of
//!   §5.3 (6401 activities at paper scale, Fig. 10 time series);
//! * [`scenarios`] — the reference-graph shapes of Figs. 3–7 plus
//!   rings, chains, cliques and random graphs for tests and ablations.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod nas;
pub mod scenarios;
pub mod torture;

pub use nas::{run_kernel, Kernel, NasOutcome, NasParams};
pub use torture::{run_torture, TortureOutcome, TortureParams};
