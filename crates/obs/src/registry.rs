//! The per-node metric registry and its snapshot tree.
//!
//! One [`Registry`] per node (a simulated proc or a socket runtime
//! worker) owns every counter, gauge and histogram that node records,
//! plus its [`Tracer`] and the [`TimeSource`] all timestamps come
//! from. Names are dotted paths (`net.frames_sent`,
//! `dgc.collect.idle_to_collected_ns`); [`Snapshot`] renders them as a
//! tree and merges across nodes for fleet-wide totals. Registration is
//! the cold path (a mutex-guarded map); recording goes through the
//! cached lock-free handles from [`crate::metrics`].

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::time::TimeSource;
use crate::trace::{TraceLevel, Tracer};

#[derive(Debug, Default)]
struct Tables {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

#[derive(Debug)]
struct Inner {
    tables: Mutex<Tables>,
    tracer: Tracer,
    time: TimeSource,
}

/// One node's telemetry plane: metric tables + tracer + clock.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new(TimeSource::wall())
    }
}

impl Registry {
    /// A registry reading time from `time`, tracing off.
    pub fn new(time: TimeSource) -> Registry {
        Registry::with_tracer(time, Tracer::off())
    }

    /// A registry sharing an existing tracer (the simulator's grid
    /// log and its per-proc registries speak through one ring).
    pub fn with_tracer(time: TimeSource, tracer: Tracer) -> Registry {
        Registry {
            inner: Arc::new(Inner {
                tables: Mutex::new(Tables::default()),
                tracer,
                time,
            }),
        }
    }

    /// The counter named `name`, created zeroed on first use. Cache
    /// the returned handle; lookups lock.
    pub fn counter(&self, name: &str) -> Counter {
        let mut t = self.inner.tables.lock();
        t.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created zeroed on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut t = self.inner.tables.lock();
        t.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut t = self.inner.tables.lock();
        t.histograms.entry(name.to_string()).or_default().clone()
    }

    /// This node's tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// This node's clock.
    pub fn time(&self) -> &TimeSource {
        &self.inner.time
    }

    /// Nanoseconds since the registry's epoch (virtual or wall).
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        self.inner.time.now_nanos()
    }

    /// Shorthand: records an instant trace event stamped "now".
    #[inline]
    pub fn trace(&self, level: TraceLevel, tag: &'static str, detail: String) {
        self.inner
            .tracer
            .event(self.now_nanos(), level, tag, detail);
    }

    /// Refreshes the `lockcheck.*` gauges from the process-wide
    /// lock-order detector in the vendored `parking_lot` shim:
    /// `lockcheck.edges` (distinct observed acquisition orderings) and
    /// `lockcheck.max_held_ns` (longest single guard hold). Both stay
    /// zero unless `DGC_LOCK_CHECK=1` enabled the detector, and both are
    /// process-wide — every registry in the process mirrors the same
    /// pressure — so fleet merges should read them from one node.
    pub fn mirror_lockcheck(&self) {
        let stats = parking_lot::lockcheck::stats();
        self.gauge("lockcheck.edges").set(stats.edges as i64);
        self.gauge("lockcheck.max_held_ns")
            .set(stats.max_held_ns as i64);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let t = self.inner.tables.lock();
        Snapshot {
            counters: t
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: t.gauges.iter().map(|(k, g)| (k.clone(), g.get())).collect(),
            histograms: t
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// An immutable copy of a registry's metrics, mergeable across nodes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by dotted name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by dotted name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram copies by dotted name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Sums `other` into a copy of `self`: counters and gauges add,
    /// histograms merge bucket-wise.
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (k, v) in &other.counters {
            *out.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *out.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            let slot = out.histograms.entry(k.clone()).or_default();
            *slot = slot.merge(v);
        }
        out
    }

    /// Counter value, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, 0 if absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram copy, empty if absent.
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Pretty-prints the dotted namespace as an indented tree, with
    /// histogram quantiles inline.
    pub fn render_tree(&self) -> String {
        enum Leaf<'a> {
            Counter(u64),
            Gauge(i64),
            Histogram(&'a HistogramSnapshot),
        }
        let mut leaves: BTreeMap<&str, Leaf<'_>> = BTreeMap::new();
        for (k, v) in &self.counters {
            leaves.insert(k, Leaf::Counter(*v));
        }
        for (k, v) in &self.gauges {
            leaves.insert(k, Leaf::Gauge(*v));
        }
        for (k, v) in &self.histograms {
            leaves.insert(k, Leaf::Histogram(v));
        }
        let mut out = String::new();
        let mut open: Vec<&str> = Vec::new();
        for (name, leaf) in &leaves {
            let parts: Vec<&str> = name.split('.').collect();
            let (dirs, leaf_name) = parts.split_at(parts.len() - 1);
            // Close/open group headers to match this entry's path.
            let common = open
                .iter()
                .zip(dirs.iter())
                .take_while(|(a, b)| a == b)
                .count();
            open.truncate(common);
            for d in &dirs[common..] {
                let _ = writeln!(out, "{}{}/", "  ".repeat(open.len()), d);
                open.push(d);
            }
            let pad = "  ".repeat(open.len());
            match leaf {
                Leaf::Counter(v) => {
                    let _ = writeln!(out, "{pad}{} = {v}", leaf_name[0]);
                }
                Leaf::Gauge(v) => {
                    let _ = writeln!(out, "{pad}{} = {v} (gauge)", leaf_name[0]);
                }
                Leaf::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{pad}{}: n={} mean={:.0} p50<={} p90<={} p99<={}",
                        leaf_name[0],
                        h.count,
                        h.mean(),
                        h.quantile(0.50),
                        h.quantile(0.90),
                        h.quantile(0.99),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::default();
        let a = r.counter("net.frames_sent");
        let b = r.counter("net.frames_sent");
        a.add(2);
        b.incr();
        assert_eq!(r.snapshot().counter("net.frames_sent"), 3);
    }

    #[test]
    fn snapshot_merge_sums() {
        let r1 = Registry::default();
        r1.counter("x").add(2);
        r1.histogram("h").record(10);
        let r2 = Registry::default();
        r2.counter("x").add(3);
        r2.counter("y").incr();
        r2.histogram("h").record(1000);
        let m = r1.snapshot().merge(&r2.snapshot());
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter("y"), 1);
        assert_eq!(m.histogram("h").count, 2);
    }

    #[test]
    fn tree_groups_by_dotted_prefix() {
        let r = Registry::default();
        r.counter("net.frames_sent").add(7);
        r.counter("net.bytes_sent").add(100);
        r.gauge("egress.pending").set(3);
        r.histogram("dgc.collect.idle_to_collected_ns").record(5000);
        let tree = r.snapshot().render_tree();
        assert!(tree.contains("net/"), "{tree}");
        assert!(tree.contains("frames_sent = 7"), "{tree}");
        assert!(tree.contains("pending = 3 (gauge)"), "{tree}");
        assert!(tree.contains("collect/"), "{tree}");
        assert!(tree.contains("idle_to_collected_ns: n=1"), "{tree}");
    }

    #[test]
    fn lockcheck_gauges_mirror_detector_stats() {
        parking_lot::lockcheck::force_enable();
        let outer = Mutex::new(());
        let inner = Mutex::new(());
        {
            let _a = outer.lock();
            let _b = inner.lock(); // one ordered pair → at least one edge
        }
        let r = Registry::default();
        r.mirror_lockcheck();
        let snap = r.snapshot();
        assert!(snap.gauge("lockcheck.edges") >= 1, "{snap:?}");
        assert!(snap.gauge("lockcheck.max_held_ns") > 0, "{snap:?}");
    }

    #[test]
    fn registry_trace_uses_time_source() {
        let (time, clock) = TimeSource::simulated();
        let r = Registry::with_tracer(time, Tracer::new(TraceLevel::Info, 8));
        clock.store(1234, std::sync::atomic::Ordering::Relaxed);
        r.trace(TraceLevel::Info, "ev", "d".into());
        assert_eq!(r.tracer().events()[0].at_nanos, 1234);
    }
}
