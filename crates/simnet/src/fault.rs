//! Fault injection: link delays and process pauses.
//!
//! The paper's DGC is *hard real-time* (§4.2): if a DGC message is delayed
//! beyond the `TTA > 2·TTB + MaxComm` bound — by TCP timeouts or local GC
//! pauses — a live activity can be wrongfully collected. This module
//! injects exactly those hazards so tests can demonstrate both the failure
//! mode and the safety of correctly chosen parameters.

use crate::time::{SimDuration, SimTime};
use crate::topology::ProcId;

/// Extra delay applied to messages traversing a link during a time window.
#[derive(Debug, Clone)]
pub struct LinkFault {
    /// Source process filter; `None` matches any source.
    pub from: Option<ProcId>,
    /// Destination process filter; `None` matches any destination.
    pub to: Option<ProcId>,
    /// Start of the fault window (inclusive).
    pub start: SimTime,
    /// End of the fault window (exclusive).
    pub end: SimTime,
    /// Additional one-way delay applied to matching messages.
    pub extra_delay: SimDuration,
}

impl LinkFault {
    fn matches(&self, now: SimTime, from: ProcId, to: ProcId) -> bool {
        now >= self.start
            && now < self.end
            && self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
    }
}

/// A "stop-the-world" pause of one process (models a long local-GC pause,
/// §4.2). While paused, the process neither sends broadcasts nor processes
/// deliveries; the runtime defers its events to the end of the pause.
#[derive(Debug, Clone)]
pub struct ProcessPause {
    /// The paused process.
    pub proc: ProcId,
    /// Start of the pause (inclusive).
    pub start: SimTime,
    /// End of the pause (exclusive).
    pub end: SimTime,
}

/// A schedule of link faults and process pauses.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    link_faults: Vec<LinkFault>,
    pauses: Vec<ProcessPause>,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with the given link faults.
    pub fn with_faults(link_faults: Vec<LinkFault>) -> Self {
        FaultPlan {
            link_faults,
            pauses: Vec::new(),
        }
    }

    /// Adds a link fault.
    pub fn add_link_fault(&mut self, fault: LinkFault) {
        self.link_faults.push(fault);
    }

    /// Adds a process pause.
    pub fn add_pause(&mut self, pause: ProcessPause) {
        self.pauses.push(pause);
    }

    /// Total extra delay for a message sent at `now` over `(from, to)`.
    /// Overlapping faults accumulate.
    pub fn extra_delay(&self, now: SimTime, from: ProcId, to: ProcId) -> SimDuration {
        let mut d = SimDuration::ZERO;
        for f in &self.link_faults {
            if f.matches(now, from, to) {
                d = d.saturating_add(f.extra_delay);
            }
        }
        d
    }

    /// If `proc` is paused at `now`, returns the time the pause ends.
    pub fn pause_end(&self, now: SimTime, proc: ProcId) -> Option<SimTime> {
        self.pauses
            .iter()
            .filter(|p| p.proc == proc && now >= p.start && now < p.end)
            .map(|p| p.end)
            .max()
    }

    /// True if the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.link_faults.is_empty() && self.pauses.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn none_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert_eq!(
            FaultPlan::none().extra_delay(t(0), ProcId(0), ProcId(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn link_fault_applies_in_window() {
        let mut p = FaultPlan::none();
        p.add_link_fault(LinkFault {
            from: Some(ProcId(0)),
            to: None,
            start: t(10),
            end: t(20),
            extra_delay: SimDuration::from_secs(5),
        });
        assert_eq!(p.extra_delay(t(9), ProcId(0), ProcId(1)), SimDuration::ZERO);
        assert_eq!(
            p.extra_delay(t(10), ProcId(0), ProcId(1)),
            SimDuration::from_secs(5)
        );
        assert_eq!(
            p.extra_delay(t(19), ProcId(0), ProcId(9)),
            SimDuration::from_secs(5)
        );
        assert_eq!(
            p.extra_delay(t(20), ProcId(0), ProcId(1)),
            SimDuration::ZERO
        );
        // Different source unaffected.
        assert_eq!(
            p.extra_delay(t(15), ProcId(2), ProcId(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn overlapping_faults_accumulate() {
        let mut p = FaultPlan::none();
        for _ in 0..2 {
            p.add_link_fault(LinkFault {
                from: None,
                to: None,
                start: t(0),
                end: t(100),
                extra_delay: SimDuration::from_secs(1),
            });
        }
        assert_eq!(
            p.extra_delay(t(1), ProcId(0), ProcId(1)),
            SimDuration::from_secs(2)
        );
    }

    #[test]
    fn pause_end_reports_longest() {
        let mut p = FaultPlan::none();
        p.add_pause(ProcessPause {
            proc: ProcId(3),
            start: t(5),
            end: t(10),
        });
        p.add_pause(ProcessPause {
            proc: ProcId(3),
            start: t(5),
            end: t(15),
        });
        assert_eq!(p.pause_end(t(7), ProcId(3)), Some(t(15)));
        assert_eq!(p.pause_end(t(4), ProcId(3)), None);
        assert_eq!(p.pause_end(t(15), ProcId(3)), None);
        assert_eq!(p.pause_end(t(7), ProcId(4)), None);
    }
}
