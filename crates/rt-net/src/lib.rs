//! # dgc-rt-net — real TCP transport runtime for the DGC core
//!
//! The simulator (`dgc-activeobj`) proves the protocol at grid scale in
//! virtual time; the threaded runtime (`dgc-rt-thread`) proves it under
//! real concurrency. This crate makes the protocol actually cross a
//! **network**: every node (address space) is a process-shaped runtime
//! listening on a TCP socket, hosting many activities, and exchanging
//! DGC messages/responses with peer nodes as length-prefixed binary
//! frames built from the same [`dgc_core::wire`] codec the bandwidth
//! figures are measured in.
//!
//! What the transport adds over a channel runtime:
//!
//! * [`frame`] — node-level envelopes (hello, activity-addressed
//!   message/response, send-failure notification) with an incremental
//!   [`frame::FrameDecoder`] for arbitrary TCP fragmentation;
//! * [`node`] — the per-node event loop plus acceptor/reader threads;
//!   responses travel back over the socket the referencer's node
//!   opened, preserving the paper's firewall/NAT story (§2.2). The
//!   loop owns the node's **egress plane**
//!   ([`dgc_core::egress::Outbox`]): every outgoing unit — TTB
//!   heartbeat, gossip digest, control, or an [`Item::App`] payload
//!   sent via [`NetNode::send_app`] — queues per destination, and the
//!   flush policy ([`NetConfig::egress`]) coalesces them into shared
//!   frames: an app send flushes immediately with the queue
//!   piggybacking (a heartbeat to a peer we're already talking to
//!   costs ~0 extra frames), background units linger at most
//!   `max_delay` — attacking the fig. 8 bandwidth cost at scale;
//! * [`peer`] — reconnecting outbound links that write exactly what
//!   the outbox flushes (one flush, one frame) and keep the transport
//!   duties: exponential-backoff reconnects, terminal send-failure
//!   surfacing, bounded buffering;
//! * [`cluster`] — a localhost N-node driver with the same surface as
//!   `ThreadGrid`, used by `tests/net.rs` to collect a cross-node cycle
//!   end-to-end over real sockets;
//! * membership — with [`NetConfig::membership`] set, every node runs
//!   a `dgc-membership` gossip engine: digests ride as one more item
//!   kind inside the same batched frames ([`frame::GOSSIP_ANYCAST`]
//!   marks a join probe), [`NetNode::join`] bootstraps from seed
//!   addresses instead of static registration, peers' listen addresses
//!   are learned (and re-learned after a crash-rejoin) from gossip,
//!   and a **dead** verdict feeds every hosted collector's
//!   send-failure path; [`Cluster::join_local`] /
//!   [`Cluster::join_local_churn`] drive whole churn scenarios;
//! * [`chaos`] — a per-link fault-injecting proxy replaying the
//!   runtime-neutral [`dgc_core::faults::FaultProfile`] descriptions
//!   (delay / drop / sever / reorder) over live connections, plus the
//!   [`node::Event::Pause`] stop-the-world hook — together the socket
//!   realization of the same scenarios the simulator replays, which is
//!   what the `dgc-conformance` harness compares.
//!
//! Implementation note: the container this repository builds in has no
//! crates.io access, so the runtime is written against `std::net` and
//! ships **two I/O engines** behind one [`NetConfig::engine`] knob
//! ([`IoEngine`], overridable via `DGC_NET_ENGINE`): the original
//! *threaded* engine (dedicated blocking I/O threads per link — simple,
//! but ~3 OS threads per peer) and the *reactor* engine
//! ([`crate::reactor`]): every socket of a node on one nonblocking
//! readiness loop over a vendored [`polling::Poller`] (epoll on Linux,
//! portable emulation elsewhere), O(1) threads regardless of peer
//! count. The module boundaries (frame codec / link layer / event
//! loop) are the seams a tokio port would slot into; nothing in the
//! public API exposes the engine choice.
//!
//! ## Example: a cross-node cycle over real sockets
//!
//! ```no_run
//! use std::time::Duration;
//! use dgc_core::config::DgcConfig;
//! use dgc_core::units::Dur;
//! use dgc_rt_net::{Cluster, NetConfig};
//!
//! let dgc = DgcConfig::builder()
//!     .ttb(Dur::from_millis(25))
//!     .tta(Dur::from_millis(80))
//!     .max_comm(Dur::from_millis(20))
//!     .build();
//! let cluster = Cluster::listen_local(2, NetConfig::new(dgc)).unwrap();
//! let a = cluster.add_activity(0);
//! let b = cluster.add_activity(1);
//! cluster.add_ref(a, b);
//! cluster.add_ref(b, a); // a ⇄ b across two TCP nodes
//! cluster.set_idle(a, true);
//! cluster.set_idle(b, true);
//! assert!(cluster.wait_until(Duration::from_secs(10), |t| t.len() == 2));
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod cluster;
pub mod config;
pub mod frame;
pub mod node;
pub mod peer;
mod reactor;
pub mod stats;

pub use chaos::{ChaosProxy, ChaosStatsSnapshot};
pub use cluster::Cluster;
pub use config::{IoEngine, NetConfig};
pub use dgc_plane::{
    AuthKey, Envelope, Middleware, MiddlewareCtx, Pipeline, TenantCounters, TenantId, TenantLedger,
    TenantMap, Verdict,
};
pub use frame::{Frame, FrameDecoder, Item, GOSSIP_ANYCAST};
pub use node::{AppHandler, AppReceived, AppSend, EgressPending, NetNode, Terminated};
pub use stats::{NetStats, NetStatsSnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_core::config::DgcConfig;
    use dgc_core::message::TerminateReason;
    use dgc_core::units::Dur;
    use std::time::Duration;

    fn cfg() -> NetConfig {
        NetConfig::new(
            DgcConfig::builder()
                .ttb(Dur::from_millis(25))
                .tta(Dur::from_millis(80))
                .max_comm(Dur::from_millis(20))
                .build(),
        )
    }

    #[test]
    fn lone_idle_activity_is_collected() {
        let cluster = Cluster::listen_local(2, cfg()).unwrap();
        let a = cluster.add_activity(0);
        cluster.set_idle(a, true);
        assert!(
            cluster.wait_until(Duration::from_secs(5), |t| t.iter().any(|x| x.ao == a)),
            "acyclic collection over sockets"
        );
        assert_eq!(cluster.terminated()[0].reason, TerminateReason::Acyclic);
        cluster.shutdown();
    }

    #[test]
    fn referenced_activity_stays_alive() {
        let cluster = Cluster::listen_local(2, cfg()).unwrap();
        let root = cluster.add_activity(0); // stays busy: a root
        let b = cluster.add_activity(1);
        cluster.add_ref(root, b);
        cluster.set_idle(b, true);
        std::thread::sleep(Duration::from_millis(400));
        assert!(
            !cluster.is_terminated(b),
            "heartbeats over TCP keep the referenced activity"
        );
        cluster.shutdown();
    }

    #[test]
    fn cross_node_cycle_is_collected() {
        let cluster = Cluster::listen_local(2, cfg()).unwrap();
        let a = cluster.add_activity(0);
        let b = cluster.add_activity(1);
        cluster.add_ref(a, b);
        cluster.add_ref(b, a);
        cluster.set_idle(a, true);
        cluster.set_idle(b, true);
        assert!(
            cluster.wait_until(Duration::from_secs(20), |t| t.len() == 2),
            "cyclic collection over sockets: {:?}",
            cluster.terminated()
        );
        assert!(cluster.terminated().iter().any(|t| t.reason.is_cyclic()));
        cluster.shutdown();
    }

    #[test]
    fn unreachable_peer_surfaces_send_failures() {
        // One live node whose activity references an id on a peer that
        // is registered but never comes up: after fail_after_attempts
        // the link must convert the queued heartbeats into local send
        // failures so the referencer drops the dead edge (and, now
        // unreferenced and idle, falls acyclically).
        let config = NetConfig {
            fail_after_attempts: 2,
            ..cfg()
        };
        let node = NetNode::bind(0, config).unwrap();
        // A port from an immediately-dropped listener: nobody listens.
        let dead_addr = std::net::TcpListener::bind(("127.0.0.1", 0))
            .unwrap()
            .local_addr()
            .unwrap();
        node.add_peer(1, dead_addr);
        let holder = node.add_activity();
        node.add_ref(holder, dgc_core::id::AoId::new(1, 0));
        node.set_idle(holder, true);
        assert!(
            node.wait_until(Duration::from_secs(10), |t| t
                .iter()
                .any(|x| x.ao == holder)),
            "holder should drop the unreachable edge and fall: {:?}",
            node.terminated()
        );
        assert!(node.stats().send_failures > 0);
        node.shutdown();
    }

    #[test]
    fn heartbeats_to_one_node_batch_into_shared_frames() {
        // 8 activities on node 0 all referencing node 1: their TTB
        // sweeps are co-scheduled, so the link should pack several
        // heartbeats per frame.
        let cluster = Cluster::listen_local(2, cfg()).unwrap();
        let targets: Vec<_> = (0..4).map(|_| cluster.add_activity(1)).collect();
        for _ in 0..8 {
            let holder = cluster.add_activity(0);
            for t in &targets {
                cluster.add_ref(holder, *t);
            }
        }
        std::thread::sleep(Duration::from_millis(500));
        let sent = cluster.stats()[0];
        assert!(sent.items_sent > 0, "heartbeats flowed");
        assert!(
            sent.items_per_frame() > 2.0,
            "expected batching, got {:.2} items/frame over {} frames",
            sent.items_per_frame(),
            sent.frames_sent
        );
        cluster.shutdown();
    }
}
