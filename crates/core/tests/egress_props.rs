//! Property tests of the egress outbox: whatever interleaving of
//! enqueues, polls and forced flushes a runtime drives, the flushed
//! stream per destination preserves enqueue order (hence per-class
//! FIFO, the §3.2 transport assumption), loses nothing, and respects
//! the policy bounds.

use proptest::prelude::*;

use dgc_core::egress::{EgressClass, FlushPolicy, Outbox};
use dgc_core::units::{Dur, Time};

fn class_of(b: u8) -> EgressClass {
    match b % 6 {
        0 => EgressClass::AppRequest,
        1 => EgressClass::AppReply,
        2 => EgressClass::DgcMessage,
        3 => EgressClass::DgcResponse,
        4 => EgressClass::Gossip,
        _ => EgressClass::Control,
    }
}

proptest! {
    /// Runs a random op sequence against an outbox and checks, per
    /// destination: flushed items appear in exact enqueue order (the
    /// global FIFO that implies per-class FIFO), every item flushes by
    /// the final drain, and no flush exceeds the policy's item bound
    /// by more than the one unit that triggered it.
    #[test]
    fn flushes_preserve_per_destination_fifo_and_lose_nothing(
        ops in proptest::collection::vec(
            // (dest, class selector, size, ms advance, poll?)
            (0u32..4, any::<u8>(), 1u64..200, 0u64..4, any::<bool>()),
            1..120,
        ),
        max_delay_ms in 0u64..6,
        max_items in 1usize..12,
    ) {
        let policy = FlushPolicy {
            flush_on_app: true,
            max_delay: Dur::from_millis(max_delay_ms),
            max_bytes: 600,
            max_items,
        };
        let mut ob: Outbox<u64> = Outbox::new(policy);
        let mut now_ms = 0u64;
        let mut seq = 0u64;
        let mut enqueued: Vec<Vec<u64>> = vec![Vec::new(); 4];
        let mut flushed: Vec<Vec<u64>> = vec![Vec::new(); 4];
        let drain = |flushes: Vec<dgc_core::egress::Flush<u64>>,
                         flushed: &mut Vec<Vec<u64>>| {
            for f in flushes {
                prop_assert!(
                    f.items.len() <= max_items.max(1),
                    "flush of {} items exceeds max_items {}",
                    f.items.len(),
                    max_items
                );
                for qi in f.items {
                    flushed[f.dest as usize].push(qi.item);
                }
            }
            Ok(())
        };
        for (dest, class, size, advance, poll) in ops {
            now_ms += advance;
            let now = Time::from_nanos(now_ms * 1_000_000);
            if poll {
                drain(ob.poll(now), &mut flushed)?;
            }
            let item = seq;
            seq += 1;
            enqueued[dest as usize].push(item);
            if let Some(f) = ob.enqueue(now, dest, class_of(class), size, item) {
                drain(vec![f], &mut flushed)?;
            }
        }
        drain(ob.flush_all(), &mut flushed)?;
        prop_assert_eq!(ob.pending_items(), 0, "final drain must empty the outbox");
        for d in 0..4 {
            prop_assert_eq!(
                &flushed[d],
                &enqueued[d],
                "destination {} reordered or lost items",
                d
            );
        }
    }

    /// Random interleavings of enqueue / poll / drop_dest: the outbox
    /// never retains an item for a dropped destination (a later
    /// enqueue to the same destination starts a fresh queue, and the
    /// dropped units are returned exactly once), and the stats
    /// counters stay conserved — flushed + returned (+ still pending)
    /// = enqueued, for items and bytes alike.
    #[test]
    fn drop_dest_retains_nothing_and_conserves_counters(
        ops in proptest::collection::vec(
            // (dest, class selector, size, ms advance, action selector)
            // action: 0..=5 enqueue, 6..=7 poll, 8..=9 drop_dest
            (0u32..4, any::<u8>(), 1u64..200, 0u64..4, 0u8..10),
            1..150,
        ),
        max_delay_ms in 0u64..6,
        max_items in 1usize..12,
    ) {
        let policy = FlushPolicy {
            flush_on_app: true,
            max_delay: Dur::from_millis(max_delay_ms),
            max_bytes: 600,
            max_items,
        };
        let mut ob: Outbox<u64> = Outbox::new(policy);
        let mut now_ms = 0u64;
        let mut seq = 0u64;
        // Ground truth: what each destination still owes us.
        let mut outstanding: Vec<Vec<u64>> = vec![Vec::new(); 4];
        let mut flushed_count = 0u64;
        let mut returned_count = 0u64;
        for (dest, class, size, advance, action) in ops {
            now_ms += advance;
            let now = Time::from_nanos(now_ms * 1_000_000);
            match action {
                0..=5 => {
                    let item = seq;
                    seq += 1;
                    outstanding[dest as usize].push(item);
                    if let Some(f) = ob.enqueue(now, dest, class_of(class), size, item) {
                        for qi in &f.items {
                            prop_assert_eq!(
                                outstanding[f.dest as usize].remove(0),
                                qi.item,
                                "flush out of enqueue order"
                            );
                            flushed_count += 1;
                        }
                    }
                }
                6..=7 => {
                    for f in ob.poll(now) {
                        for qi in &f.items {
                            prop_assert_eq!(
                                outstanding[f.dest as usize].remove(0),
                                qi.item,
                                "poll out of enqueue order"
                            );
                            flushed_count += 1;
                        }
                    }
                }
                _ => {
                    let returned = ob.drop_dest(dest);
                    let items: Vec<u64> = returned.iter().map(|qi| qi.item).collect();
                    prop_assert_eq!(
                        &items,
                        &outstanding[dest as usize],
                        "drop_dest must return exactly the outstanding queue"
                    );
                    returned_count += items.len() as u64;
                    outstanding[dest as usize].clear();
                    prop_assert_eq!(ob.pending_items_for(dest), 0);
                }
            }
        }
        let pending = ob.pending_items() as u64;
        let pending_bytes = ob.pending_bytes();
        let s = ob.stats();
        prop_assert_eq!(s.items, flushed_count);
        prop_assert_eq!(s.dropped_items, returned_count);
        prop_assert_eq!(
            s.enqueued_items,
            s.items + s.dropped_items + pending,
            "item conservation: enqueued = flushed + returned + pending"
        );
        prop_assert_eq!(
            s.enqueued_bytes,
            s.bytes + s.dropped_bytes + pending_bytes,
            "byte conservation: enqueued = flushed + returned + pending"
        );
        // And the pending remainder is exactly the ground truth.
        let left: u64 = outstanding.iter().map(|v| v.len() as u64).sum();
        prop_assert_eq!(pending, left);
    }

    /// The deadline contract: while anything is queued, the outbox
    /// names a deadline no later than oldest-enqueue + max_delay, and a
    /// poll at that deadline flushes the oldest item.
    #[test]
    fn oldest_item_never_waits_past_max_delay(
        lead in 0u64..10,
        max_delay_ms in 1u64..8,
    ) {
        let policy = FlushPolicy {
            flush_on_app: false,
            max_delay: Dur::from_millis(max_delay_ms),
            max_bytes: u64::MAX,
            max_items: usize::MAX,
        };
        let mut ob: Outbox<u32> = Outbox::new(policy);
        let t0 = Time::from_nanos(lead * 1_000_000);
        ob.enqueue(t0, 0, EgressClass::DgcMessage, 1, 0);
        // Later company must not push the deadline out.
        ob.enqueue(t0 + Dur::from_millis(max_delay_ms / 2), 0, EgressClass::Gossip, 1, 1);
        let deadline = ob.next_deadline().expect("queued");
        prop_assert!(deadline <= t0 + Dur::from_millis(max_delay_ms));
        let flushes = ob.poll(deadline);
        prop_assert_eq!(flushes.len(), 1);
        prop_assert_eq!(flushes[0].items[0].item, 0, "oldest first");
    }
}
