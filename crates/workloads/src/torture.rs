//! The DGC torture test (§5.3).
//!
//! A master/slave application where slaves continuously exchange remote
//! references between themselves and the master for at least ten
//! minutes, then become idle — leaving one huge, tangled, cyclic
//! reference graph for the collector to destroy. The paper runs it with
//! 128 machines × 50 slaves + 1 master = 6401 active objects and plots
//! the evolution of idle and collected counts (Fig. 10) for
//! TTB 30 s / TTA 150 s and TTB 300 s / TTA 1500 s.
//!
//! The only application payloads are the references themselves, so
//! collector traffic dominates — the paper reports 1699 MB (TTB 30 s)
//! and 2063 MB (TTB 300 s) against 228 MB without any DGC.

use std::any::Any;

use dgc_activeobj::activity::{AoCtx, Behavior};
use dgc_activeobj::collector::CollectorKind;
use dgc_activeobj::request::Request;
use dgc_activeobj::runtime::{Grid, GridConfig, Sample};
use dgc_core::id::AoId;
use dgc_simnet::time::{SimDuration, SimTime};
use dgc_simnet::topology::{ProcId, Topology};
use dgc_simnet::trace::TraceLevel;

/// Method: initial reference distribution.
pub const M_INIT: u32 = 1;
/// Method: a reference-exchange message between slaves.
pub const M_EXCHANGE: u32 = 2;

const T_WORK: u64 = 1;

/// Torture-test parameters.
#[derive(Debug, Clone, Copy)]
pub struct TortureParams {
    /// Slaves per process (paper: 50).
    pub slaves_per_proc: u32,
    /// How long slaves stay active (paper: ≥ 600 s).
    pub active_duration: SimDuration,
    /// Mean period between a slave's exchange rounds.
    pub iter_period: SimDuration,
    /// Initial random peer references per slave.
    pub initial_degree: usize,
    /// Maximum held references before a slave starts releasing.
    pub max_degree: usize,
    /// Sampling period for the Fig. 10 time series.
    pub sample_every: SimDuration,
}

impl TortureParams {
    /// The paper's full-scale setting (with 128 processes: 6401 objects).
    pub fn paper() -> Self {
        TortureParams {
            slaves_per_proc: 50,
            active_duration: SimDuration::from_secs(600),
            iter_period: SimDuration::from_secs(5),
            initial_degree: 6,
            max_degree: 14,
            sample_every: SimDuration::from_secs(10),
        }
    }

    /// A reduced setting for tests.
    pub fn small() -> Self {
        TortureParams {
            slaves_per_proc: 5,
            active_duration: SimDuration::from_secs(120),
            iter_period: SimDuration::from_secs(5),
            initial_degree: 3,
            max_degree: 8,
            sample_every: SimDuration::from_secs(10),
        }
    }
}

/// A torture slave (the master is just a slave everyone knows).
///
/// While active it periodically picks random held references, forwards
/// some of them to random held peers, and occasionally releases one —
/// churning the reference graph exactly like the paper's test. After
/// `deadline` it stops scheduling work and goes idle.
pub struct Slave {
    deadline: SimTime,
    iter_period: SimDuration,
    max_degree: usize,
    held: Vec<AoId>,
    exchanges_done: u64,
}

impl Slave {
    /// Creates a slave that stays active until `deadline`.
    pub fn new(deadline: SimTime, iter_period: SimDuration, max_degree: usize) -> Self {
        Slave {
            deadline,
            iter_period,
            max_degree,
            held: Vec::new(),
            exchanges_done: 0,
        }
    }

    fn note_held(&mut self, refs: &[AoId], me: AoId) {
        for r in refs {
            if *r != me {
                self.held.push(*r);
            }
        }
    }

    fn trim(&mut self, ctx: &mut AoCtx<'_>) {
        while self.held.len() > self.max_degree {
            let idx = ctx.rng().below(self.held.len() as u64) as usize;
            let victim = self.held.swap_remove(idx);
            ctx.release(victim);
        }
    }

    fn schedule_next(&self, ctx: &mut AoCtx<'_>) {
        if ctx.now() < self.deadline {
            let jitter = ctx.rng().jitter(self.iter_period);
            ctx.set_timer(self.iter_period.div(2) + jitter, T_WORK);
        }
    }
}

impl Behavior for Slave {
    fn on_request(&mut self, ctx: &mut AoCtx<'_>, request: &Request) {
        let me = ctx.me();
        match request.method {
            M_INIT => {
                self.note_held(&request.refs, me);
                self.trim(ctx);
                ctx.compute(SimDuration::from_millis(5));
                self.schedule_next(ctx);
            }
            M_EXCHANGE => {
                self.note_held(&request.refs, me);
                self.trim(ctx);
                ctx.compute(SimDuration::from_millis(2));
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut AoCtx<'_>, token: u64) {
        if token != T_WORK || ctx.now() >= self.deadline || self.held.is_empty() {
            return;
        }
        // Forward 1–2 held references to 1–2 random held peers. The
        // sends go first so the stubs are still held when validated;
        // releases (graph churn) happen afterwards in the same handler.
        let rounds = 1 + ctx.rng().below(2);
        for _ in 0..rounds {
            let to = {
                let idx = ctx.rng().below(self.held.len() as u64) as usize;
                self.held[idx]
            };
            let mut refs = Vec::new();
            let nrefs = 1 + ctx.rng().below(2);
            for _ in 0..nrefs {
                let idx = ctx.rng().below(self.held.len() as u64) as usize;
                refs.push(self.held[idx]);
            }
            ctx.send(to, M_EXCHANGE, 16, refs);
            self.exchanges_done += 1;
        }
        // Occasionally drop one reference to keep the graph churning.
        if self.held.len() > 2 && ctx.rng().chance(0.3) {
            let idx = ctx.rng().below(self.held.len() as u64) as usize;
            let victim = self.held.swap_remove(idx);
            ctx.release(victim);
        }
        ctx.compute(SimDuration::from_millis(2));
        self.schedule_next(ctx);
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

/// Outcome of a torture run.
#[derive(Debug, Clone)]
pub struct TortureOutcome {
    /// Total objects at the start (slaves + master).
    pub total_objects: usize,
    /// When the last object was collected (if all were).
    pub all_collected_at: Option<SimTime>,
    /// Objects still alive at the end (0 on success with a complete DGC).
    pub leaked: usize,
    /// Total cross-process traffic in bytes.
    pub total_bytes: u64,
    /// The Fig. 10 time series.
    pub samples: Vec<Sample>,
    /// Oracle violations (must be 0).
    pub violations: usize,
    /// When the application went fully idle.
    pub quiescent_at: Option<SimTime>,
}

/// Runs the torture test over `topology` with the given collector.
///
/// `deadline` bounds the post-activity collection phase.
pub fn run_torture(
    params: &TortureParams,
    topology: Topology,
    collector: CollectorKind,
    seed: u64,
    deadline: SimTime,
) -> TortureOutcome {
    let procs = topology.procs();
    let total = (procs * params.slaves_per_proc) as usize + 1;
    let check_safety = total <= 64;
    let mut grid = Grid::new(
        GridConfig::new(topology)
            .collector(collector)
            .seed(seed)
            .check_safety(check_safety)
            .sample_every(params.sample_every)
            .trace_level(TraceLevel::Off),
    );
    let active_until = SimTime::ZERO + params.active_duration;

    // The master is slave number zero, hosted on process 0; every slave
    // learns about it at INIT.
    let mk_slave = || -> Box<dyn Behavior> {
        Box::new(Slave::new(
            active_until,
            params.iter_period,
            params.max_degree,
        ))
    };
    let master = grid.spawn(ProcId(0), mk_slave());
    let mut slaves: Vec<AoId> = vec![master];
    // The master is an extra occupant of process 0, matching the
    // paper's 128 × 50 + 1 = 6401 total.
    for p in 0..procs {
        for _ in 0..params.slaves_per_proc {
            slaves.push(grid.spawn(ProcId(p), mk_slave()));
        }
    }

    // Deployment: a dummy root wires the initial topology, then drops
    // everything and disappears (the `main()` exiting).
    let dummy = grid.spawn_root(ProcId(0), Box::new(dgc_activeobj::activity::Inert));
    for s in &slaves {
        grid.make_ref(dummy, *s);
    }
    let mut seed_rng = dgc_simnet::rng::SimRng::from_seed(seed ^ 0x70AA);
    for s in &slaves {
        let mut refs = vec![master];
        for _ in 0..params.initial_degree {
            refs.push(slaves[seed_rng.below(slaves.len() as u64) as usize]);
        }
        grid.send_from(dummy, *s, M_INIT, 16, refs);
    }
    // Give the INIT messages time to depart, then retire the deployer.
    grid.run_for(SimDuration::from_millis(100));
    for s in &slaves {
        grid.drop_ref(dummy, *s);
    }
    grid.run_for(SimDuration::from_secs(2));
    grid.kill(dummy);

    // Active phase.
    grid.run_until(active_until);
    // Drain in-flight work; note quiescence.
    let mut quiescent_at = None;
    for _ in 0..200 {
        grid.run_for(SimDuration::from_secs(1));
        if grid.idle_count() == grid.alive_count() {
            quiescent_at = Some(grid.now());
            break;
        }
    }

    // Collection phase.
    while grid.now() < deadline && grid.alive_count() > 0 {
        grid.run_for(SimDuration::from_secs(30));
    }

    let all_collected_at = if grid.alive_count() == 0 {
        grid.collected().iter().map(|c| c.at).max()
    } else {
        None
    };
    TortureOutcome {
        total_objects: total,
        all_collected_at,
        leaked: grid.alive_count(),
        total_bytes: grid.traffic().total_bytes(),
        samples: grid.samples().to_vec(),
        violations: grid.violations().len(),
        quiescent_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_core::config::DgcConfig;
    use dgc_core::units::Dur;

    fn topo() -> Topology {
        Topology::single_site(4, SimDuration::from_millis(1))
    }

    fn dgc(ttb: u64, tta: u64) -> CollectorKind {
        CollectorKind::Complete(
            DgcConfig::builder()
                .ttb(Dur::from_secs(ttb))
                .tta(Dur::from_secs(tta))
                .max_comm(Dur::from_millis(500))
                .build(),
        )
    }

    #[test]
    fn small_torture_is_fully_collected() {
        let out = run_torture(
            &TortureParams::small(),
            topo(),
            dgc(30, 150),
            42,
            SimTime::from_secs(5_000),
        );
        assert_eq!(out.total_objects, 21);
        assert_eq!(out.violations, 0, "no live object was collected");
        assert_eq!(out.leaked, 0, "everything is garbage after quiescence");
        assert!(out.all_collected_at.is_some());
        assert!(out.quiescent_at.is_some());
    }

    #[test]
    fn samples_trace_the_collection_wave() {
        let out = run_torture(
            &TortureParams::small(),
            topo(),
            dgc(30, 150),
            43,
            SimTime::from_secs(5_000),
        );
        assert!(!out.samples.is_empty());
        // Collected counts are monotone.
        let mut prev = 0;
        for s in &out.samples {
            assert!(s.collected >= prev);
            prev = s.collected;
        }
        // And end at the full population plus the explicitly killed
        // deployment dummy.
        assert_eq!(out.samples.last().unwrap().collected, out.total_objects + 1);
    }

    #[test]
    fn without_collector_everything_leaks() {
        let out = run_torture(
            &TortureParams::small(),
            topo(),
            CollectorKind::None,
            44,
            SimTime::from_secs(2_000),
        );
        assert_eq!(out.leaked, out.total_objects);
        assert!(out.all_collected_at.is_none());
    }

    #[test]
    fn larger_ttb_collects_more_slowly() {
        let fast = run_torture(
            &TortureParams::small(),
            topo(),
            dgc(30, 150),
            45,
            SimTime::from_secs(30_000),
        );
        let slow = run_torture(
            &TortureParams::small(),
            topo(),
            dgc(300, 1500),
            45,
            SimTime::from_secs(30_000),
        );
        let (f, s) = (
            fast.all_collected_at.expect("fast collected"),
            slow.all_collected_at.expect("slow collected"),
        );
        assert!(s > f, "TTB 300 must finish later than TTB 30 ({s} vs {f})");
    }
}
