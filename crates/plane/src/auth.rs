//! Pre-shared-key mutual link authentication: a sans-io HMAC-SHA-256
//! challenge/response state machine.
//!
//! The wire protocol rides the frame layer's long-reserved `Hello`
//! seam. After `Hello` identifies the connecting node, three messages
//! authenticate the link in both directions before any batch item is
//! accepted:
//!
//! ```text
//! initiator                                   responder
//!     | -- Init { nonce_c } ------------------->  |
//!     | <-- Challenge { nonce_s, mac_s } --------  |   mac_s = HMAC(key, "dgc-auth-s2c" ‖ nonce_c ‖ nonce_s)
//!     | -- Proof { mac_c } -------------------->  |   mac_c = HMAC(key, "dgc-auth-c2s" ‖ nonce_c ‖ nonce_s)
//! ```
//!
//! * **Mutual**: `mac_s` proves the responder holds the key (the
//!   initiator verifies it before sending anything further); `mac_c`
//!   proves the initiator does.
//! * **Replay-proof**: both MACs cover both fresh nonces, so a recorded
//!   handshake never validates against a new nonce pair.
//! * **Reflection-proof**: the direction tags (`s2c` / `c2s`) make the
//!   two MACs distinct even over identical nonces, so echoing a
//!   challenge back never proves anything.
//!
//! The machine is strict: any out-of-order or repeated message is an
//! [`AuthError`] and the runtimes drop the link — a link is
//! authenticated or dead, never half-authenticated.

use hmac::{ct_eq, hmac_sha256, sha256};

/// Nonce size, in bytes.
pub const NONCE_LEN: usize = 16;

/// MAC size (SHA-256 digest), in bytes.
pub const MAC_LEN: usize = 32;

const TAG_S2C: &[u8] = b"dgc-auth-s2c";
const TAG_C2S: &[u8] = b"dgc-auth-c2s";

/// A pre-shared link key. `Copy` on purpose: it travels inside the
/// transport configs, which are plain-old-data.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct AuthKey([u8; 32]);

impl AuthKey {
    /// Wraps raw key bytes.
    pub const fn new(bytes: [u8; 32]) -> AuthKey {
        AuthKey(bytes)
    }

    /// Derives a key from a passphrase: `SHA-256("dgc-plane-key:" ‖
    /// secret)`. Deployment convenience, not a KDF — a real deployment
    /// should provision 32 random bytes.
    pub fn from_secret(secret: &str) -> AuthKey {
        let mut input = b"dgc-plane-key:".to_vec();
        input.extend_from_slice(secret.as_bytes());
        AuthKey(sha256(&input))
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

// Keys must never leak through debug logs or trace dumps.
impl std::fmt::Debug for AuthKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AuthKey(…)")
    }
}

/// One handshake message (the transport frames these; see
/// `dgc_rt_net::frame`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthMsg {
    /// Initiator → responder: a fresh nonce opens the handshake.
    Init {
        /// The initiator's nonce.
        nonce: [u8; NONCE_LEN],
    },
    /// Responder → initiator: its own nonce plus the MAC proving it
    /// holds the key.
    Challenge {
        /// The responder's nonce.
        nonce: [u8; NONCE_LEN],
        /// `HMAC(key, "dgc-auth-s2c" ‖ nonce_c ‖ nonce_s)`.
        mac: [u8; MAC_LEN],
    },
    /// Initiator → responder: the MAC proving the initiator holds the
    /// key; the link is mutually authenticated once it verifies.
    Proof {
        /// `HMAC(key, "dgc-auth-c2s" ‖ nonce_c ‖ nonce_s)`.
        mac: [u8; MAC_LEN],
    },
}

/// Why a handshake failed. The runtimes map any of these to "drop the
/// link and count `net.auth_rejects`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// A MAC did not verify: wrong key, tampered frame, or replay.
    BadMac,
    /// A message arrived out of order (or after completion/failure).
    UnexpectedMessage,
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthError::BadMac => f.write_str("MAC verification failed"),
            AuthError::UnexpectedMessage => f.write_str("unexpected handshake message"),
        }
    }
}

impl std::error::Error for AuthError {}

/// What the driver must do after feeding a message in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Send this message; the handshake continues.
    Send(AuthMsg),
    /// Send this message; this side considers the link authenticated.
    SendAndDone(AuthMsg),
    /// Nothing to send; this side considers the link authenticated.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Responder: waiting for `Init`.
    AwaitInit,
    /// Initiator: `Init` sent, waiting for `Challenge`.
    AwaitChallenge,
    /// Responder: `Challenge` sent, waiting for `Proof`.
    AwaitProof,
    /// Authenticated.
    Done,
    /// Failed; every further message is an error.
    Failed,
}

/// One side of the handshake. Sans-io: the caller moves [`AuthMsg`]s
/// and supplies the nonce (the runtimes own randomness).
#[derive(Debug)]
pub struct Authenticator {
    key: AuthKey,
    state: State,
    our_nonce: [u8; NONCE_LEN],
    their_nonce: [u8; NONCE_LEN],
}

fn mac_over(key: &AuthKey, tag: &[u8], nonce_c: &[u8], nonce_s: &[u8]) -> [u8; MAC_LEN] {
    let mut msg = Vec::with_capacity(tag.len() + 2 * NONCE_LEN);
    msg.extend_from_slice(tag);
    msg.extend_from_slice(nonce_c);
    msg.extend_from_slice(nonce_s);
    hmac_sha256(key.as_bytes(), &msg)
}

impl Authenticator {
    /// Starts the initiator side; the returned [`AuthMsg::Init`] must
    /// be sent first.
    pub fn initiator(key: AuthKey, nonce: [u8; NONCE_LEN]) -> (Authenticator, AuthMsg) {
        (
            Authenticator {
                key,
                state: State::AwaitChallenge,
                our_nonce: nonce,
                their_nonce: [0; NONCE_LEN],
            },
            AuthMsg::Init { nonce },
        )
    }

    /// Starts the responder side; it speaks only when spoken to.
    pub fn responder(key: AuthKey, nonce: [u8; NONCE_LEN]) -> Authenticator {
        Authenticator {
            key,
            state: State::AwaitInit,
            our_nonce: nonce,
            their_nonce: [0; NONCE_LEN],
        }
    }

    /// Feeds one received message through the machine. On `Err` the
    /// machine is poisoned: the link must be dropped.
    pub fn on_msg(&mut self, msg: &AuthMsg) -> Result<Step, AuthError> {
        match (self.state, msg) {
            (State::AwaitInit, AuthMsg::Init { nonce }) => {
                self.their_nonce = *nonce;
                self.state = State::AwaitProof;
                let mac = mac_over(&self.key, TAG_S2C, &self.their_nonce, &self.our_nonce);
                Ok(Step::Send(AuthMsg::Challenge {
                    nonce: self.our_nonce,
                    mac,
                }))
            }
            (State::AwaitChallenge, AuthMsg::Challenge { nonce, mac }) => {
                let expect = mac_over(&self.key, TAG_S2C, &self.our_nonce, nonce);
                if !ct_eq(&expect, mac) {
                    self.state = State::Failed;
                    return Err(AuthError::BadMac);
                }
                self.their_nonce = *nonce;
                self.state = State::Done;
                let proof = mac_over(&self.key, TAG_C2S, &self.our_nonce, &self.their_nonce);
                Ok(Step::SendAndDone(AuthMsg::Proof { mac: proof }))
            }
            (State::AwaitProof, AuthMsg::Proof { mac }) => {
                let expect = mac_over(&self.key, TAG_C2S, &self.their_nonce, &self.our_nonce);
                if !ct_eq(&expect, mac) {
                    self.state = State::Failed;
                    return Err(AuthError::BadMac);
                }
                self.state = State::Done;
                Ok(Step::Done)
            }
            _ => {
                self.state = State::Failed;
                Err(AuthError::UnexpectedMessage)
            }
        }
    }

    /// True once this side considers the link authenticated.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handshake(k_init: AuthKey, k_resp: AuthKey) -> (Result<Step, AuthError>, Authenticator) {
        let (mut init, first) = Authenticator::initiator(k_init, [1; NONCE_LEN]);
        let mut resp = Authenticator::responder(k_resp, [2; NONCE_LEN]);
        let challenge = match resp.on_msg(&first).unwrap() {
            Step::Send(m) => m,
            other => panic!("responder must challenge, got {other:?}"),
        };
        let proof = match init.on_msg(&challenge) {
            Ok(Step::SendAndDone(m)) => m,
            other => return (other, resp),
        };
        assert!(init.is_done());
        (resp.on_msg(&proof), resp)
    }

    #[test]
    fn shared_key_authenticates_both_sides() {
        let key = AuthKey::from_secret("cluster");
        let (last, resp) = handshake(key, key);
        assert_eq!(last, Ok(Step::Done));
        assert!(resp.is_done());
    }

    #[test]
    fn wrong_key_fails_at_the_initiator() {
        // The responder's challenge MAC is wrong from the initiator's
        // point of view: the initiator rejects before sending a proof,
        // so a rogue listener learns nothing it can replay.
        let (last, resp) = handshake(
            AuthKey::from_secret("cluster"),
            AuthKey::from_secret("imposter"),
        );
        assert_eq!(last, Err(AuthError::BadMac));
        assert!(!resp.is_done());
    }

    #[test]
    fn tampered_proof_is_rejected() {
        let key = AuthKey::from_secret("cluster");
        let (mut init, first) = Authenticator::initiator(key, [3; NONCE_LEN]);
        let mut resp = Authenticator::responder(key, [4; NONCE_LEN]);
        let Step::Send(challenge) = resp.on_msg(&first).unwrap() else {
            panic!()
        };
        let Step::SendAndDone(AuthMsg::Proof { mut mac }) = init.on_msg(&challenge).unwrap() else {
            panic!()
        };
        mac[0] ^= 0x80;
        assert_eq!(resp.on_msg(&AuthMsg::Proof { mac }), Err(AuthError::BadMac));
        assert!(!resp.is_done());
        // Poisoned: even the genuine proof is refused now.
        assert_eq!(
            resp.on_msg(&AuthMsg::Proof { mac }),
            Err(AuthError::UnexpectedMessage)
        );
    }

    #[test]
    fn replayed_handshake_fails_against_fresh_nonces() {
        let key = AuthKey::from_secret("cluster");
        // Record a full genuine handshake.
        let (mut init, first) = Authenticator::initiator(key, [5; NONCE_LEN]);
        let mut resp = Authenticator::responder(key, [6; NONCE_LEN]);
        let Step::Send(challenge) = resp.on_msg(&first).unwrap() else {
            panic!()
        };
        let Step::SendAndDone(proof) = init.on_msg(&challenge).unwrap() else {
            panic!()
        };
        assert_eq!(resp.on_msg(&proof), Ok(Step::Done));
        // Replay the recorded Init + Proof against a responder with a
        // fresh nonce: the stale proof no longer covers its nonce.
        let mut fresh = Authenticator::responder(key, [7; NONCE_LEN]);
        let Step::Send(_) = fresh.on_msg(&first).unwrap() else {
            panic!()
        };
        assert_eq!(fresh.on_msg(&proof), Err(AuthError::BadMac));
    }

    #[test]
    fn reflected_challenge_proves_nothing() {
        let key = AuthKey::from_secret("cluster");
        let (mut init, _first) = Authenticator::initiator(key, [8; NONCE_LEN]);
        // An attacker without the key echoes the initiator's nonce back
        // with a garbage MAC — and even a *keyed* reflection (same
        // nonce both ways) yields distinct s2c/c2s MACs, so replaying
        // the challenge MAC as a proof would fail too.
        let reflected = AuthMsg::Challenge {
            nonce: [8; NONCE_LEN],
            mac: [0; MAC_LEN],
        };
        assert_eq!(init.on_msg(&reflected), Err(AuthError::BadMac));
    }

    #[test]
    fn out_of_order_messages_poison_the_machine() {
        let key = AuthKey::from_secret("cluster");
        let mut resp = Authenticator::responder(key, [9; NONCE_LEN]);
        assert_eq!(
            resp.on_msg(&AuthMsg::Proof { mac: [0; MAC_LEN] }),
            Err(AuthError::UnexpectedMessage)
        );
        let (mut init, _) = Authenticator::initiator(key, [10; NONCE_LEN]);
        assert_eq!(
            init.on_msg(&AuthMsg::Init {
                nonce: [0; NONCE_LEN]
            }),
            Err(AuthError::UnexpectedMessage)
        );
    }

    #[test]
    fn key_debug_is_redacted() {
        let key = AuthKey::from_secret("top-secret");
        assert_eq!(format!("{key:?}"), "AuthKey(…)");
    }
}
