//! Facade-level smoke tests: the paper's workloads driven through the
//! `grid_dgc` re-exports at reduced scale, checking the headline shapes
//! end to end (these are the same code paths the full benches run).

use grid_dgc::activeobj::collector::CollectorKind;
use grid_dgc::dgc::config::DgcConfig;
use grid_dgc::dgc::units::Dur;
use grid_dgc::simnet::time::SimTime;
use grid_dgc::simnet::topology::Topology;
use grid_dgc::workloads::nas::{run_kernel, Kernel};
use grid_dgc::workloads::torture::{run_torture, TortureParams};

fn dgc(ttb: u64, tta: u64) -> CollectorKind {
    CollectorKind::Complete(
        DgcConfig::builder()
            .ttb(Dur::from_secs(ttb))
            .tta(Dur::from_secs(tta))
            .max_comm(Dur::from_millis(500))
            .build(),
    )
}

#[test]
fn ep_overhead_dwarfs_cg_overhead() {
    // The Fig. 8 headline at 1/10 scale: DGC bandwidth overhead relative
    // to app traffic is far larger for EP than for CG.
    let topo = || Topology::grid5000_scaled(4);
    let ratio = |kernel: Kernel| {
        let p = kernel.class_c().scaled_down(24, 10);
        let base = run_kernel(kernel, &p, topo(), CollectorKind::None, 11);
        let with = run_kernel(kernel, &p, topo(), dgc(30, 61), 11);
        assert_eq!(with.violations, 0);
        (with.total_bytes as f64 - base.total_bytes as f64) / base.total_bytes as f64
    };
    let cg = ratio(Kernel::Cg);
    let ep = ratio(Kernel::Ep);
    // At this reduced scale the fixed deployment payload compresses the
    // gap (full scale shows 757 % vs 2.4 %); the ordering is what must
    // hold everywhere.
    assert!(
        ep > 2.0 * cg,
        "EP overhead ({ep:.3}) must dwarf CG overhead ({cg:.3})"
    );
}

#[test]
fn ft_collects_all_workers_within_rounds() {
    let p = Kernel::Ft.class_c().scaled_down(16, 10);
    let out = run_kernel(
        Kernel::Ft,
        &p,
        Topology::grid5000_scaled(3),
        dgc(30, 61),
        13,
    );
    assert_eq!(out.violations, 0);
    let dgc_time = out.dgc_time.expect("collected").as_secs_f64();
    assert!(
        dgc_time < 30.0 * 30.0,
        "16-worker clique should collapse within ~30 rounds, took {dgc_time}"
    );
}

#[test]
fn torture_headline_shape() {
    // Fig. 10's two headlines at small scale: everything is reclaimed,
    // and the larger TTB/TTA configuration finishes later while the
    // no-DGC control both leaks and uses less bandwidth.
    let topo = || Topology::grid5000_scaled(2);
    let params = TortureParams::small();
    let fast = run_torture(
        &params,
        topo(),
        dgc(30, 150),
        17,
        SimTime::from_secs(30_000),
    );
    let slow = run_torture(
        &params,
        topo(),
        dgc(300, 1500),
        17,
        SimTime::from_secs(60_000),
    );
    let none = run_torture(
        &params,
        topo(),
        CollectorKind::None,
        17,
        SimTime::from_secs(3_000),
    );
    assert_eq!(fast.leaked, 0);
    assert_eq!(slow.leaked, 0);
    assert_eq!(none.leaked, none.total_objects);
    assert!(slow.all_collected_at.unwrap() > fast.all_collected_at.unwrap());
    assert!(none.total_bytes < fast.total_bytes);
    assert_eq!(fast.violations + slow.violations, 0);
}
