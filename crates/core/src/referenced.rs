//! The referenced table (§2.2).
//!
//! For each remote active object we hold a reference to, the DGC stores
//! the last DGC response received from it and whether the edge is still
//! needed. Two mechanisms from the paper:
//!
//! * **Stub tags.** Several local stubs may denote the same remote
//!   object; the middleware gives them one shared *tag* and tells us only
//!   when the tag dies (all stubs collected) — that removal is a "loss of
//!   a referenced" which must bump the activity clock (§3.2, Fig. 6).
//! * **`must_send_once`.** A freshly deserialized reference guarantees at
//!   least one DGC message at the next broadcast *even if the stub is
//!   immediately collected*, so a reference hopping quickly between
//!   objects keeps its target alive (§3.1).

use std::collections::BTreeMap;

use crate::id::AoId;
use crate::message::DgcResponse;

/// What we know about one referenced active object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferencedInfo {
    /// Last DGC response received from it, if any.
    pub last_response: Option<DgcResponse>,
    /// True while at least one local stub (the shared tag) is alive.
    pub reachable: bool,
    /// True if we still owe this target one DGC message (deserialization
    /// happened after the last broadcast).
    pub must_send_once: bool,
}

/// Table of all referenced active objects, keyed by id.
#[derive(Debug, Clone, Default)]
pub struct ReferencedTable {
    entries: BTreeMap<AoId, ReferencedInfo>,
}

impl ReferencedTable {
    /// Empty table.
    pub fn new() -> Self {
        ReferencedTable::default()
    }

    /// Registers the deserialization of a stub for `target` (the §2.2
    /// hook). Creates the edge if needed, marks it reachable, and arms
    /// `must_send_once`. Returns `true` if the edge is new.
    pub fn on_stub_deserialized(&mut self, target: AoId) -> bool {
        let entry = self.entries.entry(target).or_insert(ReferencedInfo {
            last_response: None,
            reachable: false,
            must_send_once: false,
        });
        let was_new = !entry.reachable && entry.last_response.is_none() && !entry.must_send_once;
        entry.reachable = true;
        entry.must_send_once = true;
        was_new
    }

    /// The local collector reports that **all** stubs for `target` died
    /// (the weak-referenced tag was collected). The edge survives only if
    /// a first DGC message is still owed. Returns `true` if the edge was
    /// removed now (a "loss of a referenced").
    pub fn on_stubs_collected(&mut self, target: AoId) -> bool {
        match self.entries.get_mut(&target) {
            None => false,
            Some(info) => {
                info.reachable = false;
                if info.must_send_once {
                    // Keep the edge until the promised message is sent.
                    false
                } else {
                    self.entries.remove(&target);
                    true
                }
            }
        }
    }

    /// Records a DGC response from `target`. Returns `false` if we no
    /// longer track that target (late response after edge removal).
    pub fn record_response(&mut self, target: AoId, response: DgcResponse) -> bool {
        match self.entries.get_mut(&target) {
            Some(info) => {
                info.last_response = Some(response);
                true
            }
            None => false,
        }
    }

    /// Removes the edge to `target` unconditionally (send failure: the
    /// target terminated). Returns `true` if it existed.
    pub fn remove(&mut self, target: AoId) -> bool {
        self.entries.remove(&target).is_some()
    }

    /// Ids to include in the next broadcast: all reachable targets plus
    /// any target still owed its first message. Clears `must_send_once`
    /// flags, and drops edges that were only kept for that promise —
    /// returning those drops as "losses of a referenced" (second element).
    pub fn broadcast_targets(&mut self) -> (Vec<AoId>, Vec<AoId>) {
        let targets: Vec<AoId> = self
            .entries
            .iter()
            .filter(|(_, info)| info.reachable || info.must_send_once)
            .map(|(id, _)| *id)
            .collect();
        let mut dropped = Vec::new();
        for id in &targets {
            let info = self.entries.get_mut(id).expect("target exists");
            info.must_send_once = false;
            if !info.reachable {
                // The promised message is being sent now; afterwards the
                // edge is gone (stub already collected).
                self.entries.remove(id);
                dropped.push(*id);
            }
        }
        (targets, dropped)
    }

    /// Last response from `target`, if tracked and received.
    pub fn last_response(&self, target: AoId) -> Option<&DgcResponse> {
        self.entries
            .get(&target)
            .and_then(|i| i.last_response.as_ref())
    }

    /// Look up one edge.
    pub fn get(&self, target: AoId) -> Option<&ReferencedInfo> {
        self.entries.get(&target)
    }

    /// True if `target` is currently tracked.
    pub fn contains(&self, target: AoId) -> bool {
        self.entries.contains_key(&target)
    }

    /// Number of tracked edges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no edge is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(id, info)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AoId, &ReferencedInfo)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::NamedClock;

    fn ao(n: u32) -> AoId {
        AoId::new(n, 0)
    }

    fn resp(n: u32) -> DgcResponse {
        DgcResponse {
            responder: ao(n),
            clock: NamedClock::initial(ao(n)),
            has_parent: false,
            consensus_reached: false,
            depth: None,
        }
    }

    #[test]
    fn deserialization_creates_edge_and_arms_must_send() {
        let mut t = ReferencedTable::new();
        assert!(t.on_stub_deserialized(ao(1)));
        assert!(
            !t.on_stub_deserialized(ao(1)),
            "second stub is not a new edge"
        );
        let info = t.get(ao(1)).unwrap();
        assert!(info.reachable);
        assert!(info.must_send_once);
    }

    #[test]
    fn broadcast_clears_must_send_and_keeps_reachable_edges() {
        let mut t = ReferencedTable::new();
        t.on_stub_deserialized(ao(1));
        let (targets, dropped) = t.broadcast_targets();
        assert_eq!(targets, vec![ao(1)]);
        assert!(dropped.is_empty());
        assert!(!t.get(ao(1)).unwrap().must_send_once);
        // Still broadcast next time: the stub is alive.
        let (targets, _) = t.broadcast_targets();
        assert_eq!(targets, vec![ao(1)]);
    }

    #[test]
    fn quickly_collected_stub_still_gets_one_message() {
        // §3.1: reference passed through and collected before the first
        // broadcast — one DGC message must still go out.
        let mut t = ReferencedTable::new();
        t.on_stub_deserialized(ao(1));
        assert!(
            !t.on_stubs_collected(ao(1)),
            "edge kept for the promised message"
        );
        let (targets, dropped) = t.broadcast_targets();
        assert_eq!(targets, vec![ao(1)]);
        assert_eq!(
            dropped,
            vec![ao(1)],
            "edge dropped after the promise is honoured"
        );
        assert!(!t.contains(ao(1)));
        let (targets, _) = t.broadcast_targets();
        assert!(targets.is_empty());
    }

    #[test]
    fn stub_collection_after_broadcast_removes_edge() {
        let mut t = ReferencedTable::new();
        t.on_stub_deserialized(ao(1));
        t.broadcast_targets();
        assert!(t.on_stubs_collected(ao(1)), "loss of a referenced");
        assert!(t.is_empty());
    }

    #[test]
    fn re_deserialization_revives_edge() {
        let mut t = ReferencedTable::new();
        t.on_stub_deserialized(ao(1));
        t.broadcast_targets();
        t.on_stubs_collected(ao(1));
        assert!(t.on_stub_deserialized(ao(1)), "revived edge counts as new");
        assert!(t.get(ao(1)).unwrap().reachable);
    }

    #[test]
    fn responses_recorded_only_for_tracked_targets() {
        let mut t = ReferencedTable::new();
        assert!(!t.record_response(ao(1), resp(1)), "untracked target");
        t.on_stub_deserialized(ao(1));
        assert!(t.record_response(ao(1), resp(1)));
        assert_eq!(t.last_response(ao(1)).unwrap().responder, ao(1));
    }

    #[test]
    fn remove_on_send_failure() {
        let mut t = ReferencedTable::new();
        t.on_stub_deserialized(ao(1));
        assert!(t.remove(ao(1)));
        assert!(!t.remove(ao(1)));
    }

    #[test]
    fn iteration_is_id_ordered() {
        let mut t = ReferencedTable::new();
        t.on_stub_deserialized(ao(2));
        t.on_stub_deserialized(ao(1));
        let ids: Vec<AoId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![ao(1), ao(2)]);
    }
}
