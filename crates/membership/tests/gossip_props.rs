//! Property tests of the membership layer: gossip convergence under
//! seeded message loss, merge monotonicity, and incarnation-number
//! monotonicity under hostile digests (the rejoin invariant).

use proptest::prelude::*;

use dgc_core::units::{Dur, Time};
use dgc_membership::{Digest, Membership, MembershipConfig, NodeRecord, NodeStatus, Transition};

fn ms(v: u64) -> Time {
    Time::from_nanos(v * 1_000_000)
}

/// Timings sized so that, at ≤ 30% loss, a false suspicion would need
/// ~40 consecutive all-link losses (p ≈ 0.3⁴⁰): the convergence
/// property below is about *reaching* full membership, not racing the
/// failure detector.
fn cfg() -> MembershipConfig {
    MembershipConfig {
        gossip_interval: Dur::from_millis(50),
        suspect_after: Dur::from_secs(2),
        dead_after: Dur::from_secs(5),
        full_sync_every: 10,
    }
}

/// Drives `engines` for `until_ms` of lock-step time with seeded
/// Bernoulli loss of whole digests; returns `(digests sent, lost,
/// record payloads carried)`.
fn run_lossy(
    engines: &mut [Membership],
    until_ms: u64,
    seed: u64,
    loss_permille: u16,
) -> (u64, u64, u64) {
    let (mut sent, mut lost, mut records_carried) = (0u64, 0u64, 0u64);
    for t in (0..until_ms).step_by(10) {
        // Collect this step's digests, then deliver the survivors;
        // replies (push-on-new) go through the same lossy filter.
        let mut outbox: Vec<(u32, u32, Digest)> = Vec::new();
        for e in engines.iter_mut() {
            let from = e.node_id();
            outbox.extend(e.on_tick(ms(t)).into_iter().map(|o| (from, o.to, o.digest)));
        }
        while let Some((from, to, digest)) = outbox.pop() {
            sent += 1;
            records_carried += digest.records.len() as u64;
            if dgc_core::faults::decision(seed, 0, from, to, sent, loss_permille) {
                lost += 1;
                continue;
            }
            let dst = engines.iter_mut().find(|e| e.node_id() == to).unwrap();
            let replies = dst.on_digest(ms(t), from, &digest);
            outbox.extend(replies.into_iter().map(|o| (to, o.to, o.digest)));
        }
    }
    (sent, lost, records_carried)
}

proptest! {
    /// From seed-only knowledge, every directory converges to the full
    /// alive membership despite seeded Bernoulli loss of whole digests.
    /// Loss decisions come from `dgc_core::faults::decision`, the same
    /// generator every fault realization draws from, so a failing case
    /// is reproducible from its `(seed, loss)` pair alone.
    #[test]
    fn gossip_converges_to_full_membership_under_loss(
        nodes in 2u32..6,
        loss_permille in 0u16..300,
        seed in 0u64..512,
    ) {
        let mut engines: Vec<Membership> = (0..nodes)
            .map(|n| Membership::new(n, None, 1, ms(0), cfg()))
            .collect();
        for e in engines.iter_mut().skip(1) {
            e.on_contact(ms(0), 0, None); // everyone knows only the seed
        }
        let (sent, lost, _) = run_lossy(&mut engines, 4000, seed, loss_permille);
        for e in &engines {
            let alive: Vec<u32> = e.directory().alive_nodes();
            prop_assert_eq!(
                alive,
                (0..nodes).collect::<Vec<u32>>(),
                "node {} never converged (seed {}, loss {}‰, {} of {} digests lost)",
                e.node_id(), seed, loss_permille, lost, sent
            );
        }
    }

    /// Delta gossip (with its periodic full-sync backstop) reaches the
    /// same converged directories as unconditional full pushes under
    /// the *same* Bernoulli loss stream of ≤ 30% — while carrying
    /// strictly fewer record payloads. The delta optimization must be
    /// invisible to the protocol's outcome and visible to its meter.
    #[test]
    fn delta_and_full_push_converge_to_the_same_directory_under_loss(
        nodes in 2u32..6,
        loss_permille in 0u16..300,
        seed in 0u64..512,
    ) {
        let build = |config: MembershipConfig| -> Vec<Membership> {
            let mut engines: Vec<Membership> = (0..nodes)
                .map(|n| Membership::new(n, None, 1, ms(0), config))
                .collect();
            for e in engines.iter_mut().skip(1) {
                e.on_contact(ms(0), 0, None);
            }
            engines
        };
        let mut delta = build(cfg());
        let mut full = build(cfg().full_push());
        let (_, _, delta_records) = run_lossy(&mut delta, 4000, seed, loss_permille);
        let (_, _, full_records) = run_lossy(&mut full, 4000, seed, loss_permille);
        for (d, f) in delta.iter().zip(&full) {
            prop_assert_eq!(
                d.directory(),
                f.directory(),
                "node {}: delta and full-push replicas diverged (seed {}, loss {}‰)",
                d.node_id(), seed, loss_permille
            );
            prop_assert_eq!(
                d.directory().alive_nodes(),
                (0..nodes).collect::<Vec<u32>>(),
                "node {} never converged", d.node_id()
            );
        }
        prop_assert!(
            delta_records < full_records,
            "deltas must carry fewer record payloads ({} vs {})",
            delta_records, full_records
        );
    }

    /// Directory merges never regress: the winning precedence per node
    /// is monotone non-decreasing whatever record order arrives, and a
    /// transition is reported only when the visible status changed.
    #[test]
    fn directory_precedence_is_monotone(
        ops in proptest::collection::vec((0u32..5, 0u64..4, 0u8..4), 0..60)
    ) {
        use dgc_membership::Directory;
        let status = |b: u8| match b {
            0 => NodeStatus::Alive,
            1 => NodeStatus::Suspect,
            2 => NodeStatus::Left,
            _ => NodeStatus::Dead,
        };
        let mut d = Directory::new();
        let mut best: std::collections::BTreeMap<u32, (u64, u8)> = Default::default();
        for (node, incarnation, st) in ops {
            let rec = NodeRecord { node, incarnation, status: status(st), addr: None };
            let before = best.get(&node).copied();
            let tr = d.merge(&rec);
            let now = d.get(node).unwrap();
            let prec = now.precedence();
            if let Some(b) = before {
                prop_assert!(prec >= b, "precedence regressed: {prec:?} < {b:?}");
                prop_assert!(prec >= rec.precedence().min(prec), "loser overwrote");
            }
            if tr.is_some() && before.is_some() {
                prop_assert!(prec > before.unwrap(), "event without progress");
            }
            best.insert(node, prec);
        }
    }

    /// The engine's own incarnation is monotone non-decreasing under
    /// arbitrary (including hostile) digests about itself, and after
    /// every digest the engine still believes itself alive — slander is
    /// always outbid, never adopted. This is the invariant that makes
    /// crash-rejoin under `rejoin_incarnation` safe: a rejoined node
    /// can never be pushed back below its own death record.
    #[test]
    fn self_incarnation_is_monotone_and_always_refutes(
        claims in proptest::collection::vec((0u64..6, 0u8..4), 1..30)
    ) {
        let status = |b: u8| match b {
            0 => NodeStatus::Alive,
            1 => NodeStatus::Suspect,
            2 => NodeStatus::Left,
            _ => NodeStatus::Dead,
        };
        let mut e = Membership::new(7, None, 1, ms(0), cfg());
        e.on_contact(ms(0), 0, None);
        let mut prev = e.incarnation();
        for (i, (incarnation, st)) in claims.into_iter().enumerate() {
            let about_me = NodeRecord {
                node: 7,
                incarnation,
                status: status(st),
                addr: None,
            };
            let hostile = Digest {
                version: i as u64 + 1,
                ack: 0,
                full: false,
                records: vec![about_me],
            };
            e.on_digest(ms(i as u64), 0, &hostile);
            prop_assert!(e.incarnation() >= prev, "incarnation regressed");
            prev = e.incarnation();
            let own = e.directory().get(7).unwrap();
            prop_assert_eq!(own.status, NodeStatus::Alive, "engine adopted slander");
            prop_assert_eq!(own.incarnation, e.incarnation());
        }
    }
}

/// Deterministic rejoin walk-through (not a proptest: the exact event
/// sequence matters): incarnations only climb across a suspect →
/// refute → die → rejoin lifecycle, observed from a third node.
#[test]
fn incarnation_climbs_across_a_full_lifecycle() {
    let cfg = cfg();
    let mut observer = Membership::new(0, None, 1, ms(0), cfg);
    observer.on_contact(ms(0), 1, None);
    observer.on_contact(ms(0), 2, None);
    observer.poll_events(); // drain the bootstrap joins

    // Lifecycle verdicts about node 1, as gossip would deliver them.
    let verdicts = [
        (1, NodeStatus::Suspect, Some(Transition::Suspected)),
        (2, NodeStatus::Alive, Some(Transition::Alive)), // refutation
        (2, NodeStatus::Dead, Some(Transition::Dead)),   // real crash
        (3, NodeStatus::Alive, Some(Transition::Alive)), // rejoin
        (2, NodeStatus::Dead, None),                     // stale corpse must not resurrect
    ];
    let mut seen_incarnation = 0;
    for (incarnation, status, expect) in verdicts {
        let rec = NodeRecord {
            node: 1,
            incarnation,
            status,
            addr: None,
        };
        observer.directory().get(1).unwrap();
        let before = observer.directory().get(1).unwrap().precedence();
        // Deliver through a digest from node 2 (a third party).
        observer.on_contact(ms(0), 2, None);
        observer.on_digest(
            ms(10),
            2,
            &Digest {
                version: seen_incarnation + 1,
                ack: 0,
                full: false,
                records: vec![rec],
            },
        );
        let after = observer.directory().get(1).unwrap();
        assert!(after.precedence() >= before, "directory regressed");
        assert!(
            after.incarnation >= seen_incarnation,
            "incarnation must be monotone at the observer"
        );
        seen_incarnation = after.incarnation;
        let evs = observer.poll_events();
        let about_1: Vec<Transition> = evs
            .iter()
            .filter(|e| e.node == 1)
            .map(|e| e.transition)
            .collect();
        match expect {
            Some(tr) => assert_eq!(about_1, vec![tr], "verdict {incarnation}/{status:?}"),
            None => assert!(about_1.is_empty(), "stale record must be silent"),
        }
    }
    assert_eq!(
        observer.directory().status_of(1),
        Some(NodeStatus::Alive),
        "the rejoined incarnation survives its own corpse"
    );
}
