//! Lock-free metric primitives: counters, gauges, and fixed-bucket
//! log2 histograms.
//!
//! Handles are `Arc`-backed clones of the registry's storage, so hot
//! paths cache a [`Counter`]/[`Histogram`] once and record with a
//! single relaxed atomic op — no locks, no allocation, no name lookup.
//! Histograms use 64 power-of-two buckets (bucket 0 holds exact zeros,
//! bucket *i* holds values in `[2^(i-1), 2^i)`), enough to cover any
//! `u64` nanosecond latency with ≤ 2× relative error on quantiles.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets (zero bucket + one per power of two).
pub const BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, live-link counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Bucket index for `v`: 0 for 0, else `⌊log2 v⌋ + 1`, clamped.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Upper inclusive bound of bucket `i` (what quantiles report).
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A lock-free log2 histogram.
#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Cloneable recording handle for one histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for analysis/merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed)),
            count: self.inner.count.load(Ordering::Relaxed),
            sum: self.inner.sum.load(Ordering::Relaxed),
        }
    }
}

/// A single-owner histogram buffer for hot paths: the same log2
/// buckets as [`Histogram`], but plain integers — recording touches no
/// atomics at all. Hot code records locally and periodically
/// [`LocalHistogram::drain_into`]s the shared handle, amortizing the
/// atomic traffic over many samples. Observers of the shared histogram
/// lag by at most the undrained buffer; drain at every natural sync
/// point (a forced flush, quiescence) to converge exactly.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> LocalHistogram {
        LocalHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl LocalHistogram {
    /// A fresh empty buffer.
    pub fn new() -> LocalHistogram {
        LocalHistogram::default()
    }

    /// Records one observation (no atomics).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Observations buffered since the last drain.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Pushes every buffered sample into `shared` and clears the
    /// buffer. Bucket-exact: the shared histogram ends up as if each
    /// sample had been recorded there directly.
    pub fn drain_into(&mut self, shared: &Histogram) {
        if self.count == 0 {
            return;
        }
        for (i, b) in self.buckets.iter_mut().enumerate() {
            if *b != 0 {
                shared.inner.buckets[i].fetch_add(*b, Ordering::Relaxed);
                *b = 0;
            }
        }
        shared.inner.count.fetch_add(self.count, Ordering::Relaxed);
        shared.inner.sum.fetch_add(self.sum, Ordering::Relaxed);
        self.count = 0;
        self.sum = 0;
    }
}

/// An immutable histogram copy: mergeable across nodes, queryable for
/// quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; BUCKETS],
    /// Total observations (= Σ buckets).
    pub count: u64,
    /// Sum of raw values (exact mean numerator).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bucket-wise sum of `self` and `other` (associative and
    /// commutative, so fleet-wide merges are order-independent).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum: self.sum.saturating_add(other.sum),
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// observation (`0.0 ≤ q ≤ 1.0`); 0 when empty. Reported values are
    /// bucket bounds, so the error is at most the bucket width (< 2×).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Exact arithmetic mean of the raw values; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.incr();
        assert_eq!(c.get(), 6, "clones share the cell");

        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_cover_their_values() {
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 100, 1000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 101_102);
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
        assert_eq!(s.quantile(0.0), 0);
        // Median falls in the bucket of the two 1s.
        assert_eq!(s.quantile(0.5), bucket_bound(bucket_index(1)));
        assert_eq!(s.quantile(1.0), bucket_bound(bucket_index(100_000)));
        assert!((s.mean() - 101_102.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn local_histogram_drains_exactly() {
        let shared = Histogram::new();
        shared.record(7);
        let mut local = LocalHistogram::new();
        assert!(local.is_empty());
        for v in [0u64, 1, 1, 100, 1000, 100_000] {
            local.record(v);
        }
        assert_eq!(local.count(), 6);
        local.drain_into(&shared);
        assert!(local.is_empty());
        // Draining again is a no-op.
        local.drain_into(&shared);

        let direct = Histogram::new();
        for v in [7u64, 0, 1, 1, 100, 1000, 100_000] {
            direct.record(v);
        }
        assert_eq!(
            shared.snapshot(),
            direct.snapshot(),
            "buffered-and-drained must equal recorded-directly"
        );
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = Histogram::new();
        a.record(5);
        let b = Histogram::new();
        b.record(500);
        b.record(0);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 505);
        assert_eq!(m.buckets[0], 1);
        assert_eq!(m.buckets[bucket_index(5)], 1);
        assert_eq!(m.buckets[bucket_index(500)], 1);
    }
}
