//! Portable fallback backend: short-timeout poll emulation.
//!
//! No OS readiness primitive at all — `wait` parks on a condvar for at
//! most ~1 ms, then reports **every registered key as ready at its
//! registered interest**. Correct (never blocks progress, because all
//! reactor I/O is nonblocking and tolerates `WouldBlock`), just not
//! efficient: the price of portability, and of keeping the fallback
//! testable on Linux via `DGC_POLL_EMULATION=1`.

use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::{Interest, PollEvent};

/// Longest single park: keeps worst-case data latency bounded even
/// though nothing signals socket readiness.
const MAX_SLICE: Duration = Duration::from_millis(1);

struct State {
    woken: bool,
    waker_key: Option<usize>,
    registered: HashMap<usize, Interest>,
}

/// State shared between the emulated poller and its waker.
pub(crate) struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

impl Shared {
    pub(crate) fn wake(&self) {
        let mut st = self.state.lock().unwrap();
        st.woken = true;
        self.cv.notify_all();
    }

    pub(crate) fn clear(&self) {
        self.state.lock().unwrap().woken = false;
    }
}

pub(crate) struct Emu {
    shared: Arc<Shared>,
}

impl Emu {
    pub(crate) fn new() -> Emu {
        Emu {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    woken: false,
                    waker_key: None,
                    registered: HashMap::new(),
                }),
                cv: Condvar::new(),
            }),
        }
    }

    pub(crate) fn shared(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    pub(crate) fn set_waker(&self, key: usize) {
        self.shared.state.lock().unwrap().waker_key = Some(key);
    }

    pub(crate) fn add(&self, key: usize, interest: Interest) -> io::Result<()> {
        let mut st = self.shared.state.lock().unwrap();
        if st.registered.insert(key, interest).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "key already registered",
            ));
        }
        Ok(())
    }

    pub(crate) fn modify(&self, key: usize, interest: Interest) -> io::Result<()> {
        let mut st = self.shared.state.lock().unwrap();
        match st.registered.get_mut(&key) {
            Some(slot) => {
                *slot = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "key not registered",
            )),
        }
    }

    pub(crate) fn delete(&self, key: usize) -> io::Result<()> {
        let mut st = self.shared.state.lock().unwrap();
        match st.registered.remove(&key) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "key not registered",
            )),
        }
    }

    pub(crate) fn wait(
        &self,
        out: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let slice = timeout.map_or(MAX_SLICE, |t| t.min(MAX_SLICE));
        let mut st = self.shared.state.lock().unwrap();
        if !st.woken && !slice.is_zero() {
            st = self.shared.cv.wait_timeout(st, slice).unwrap().0;
        }
        let mut pushed = 0;
        if st.woken {
            st.woken = false;
            if let Some(key) = st.waker_key {
                out.push(PollEvent {
                    key,
                    readable: true,
                    writable: false,
                });
                pushed += 1;
            }
        }
        for (&key, &interest) in &st.registered {
            if interest.readable || interest.writable {
                out.push(PollEvent {
                    key,
                    readable: interest.readable,
                    writable: interest.writable,
                });
                pushed += 1;
            }
        }
        Ok(pushed)
    }
}
