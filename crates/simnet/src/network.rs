//! FIFO network model.
//!
//! The paper assumes the transport of Java RMI: reliable, connection
//! oriented, FIFO per ordered process pair ("DGC messages and responses
//! cannot race with application messages as they are sent over the same
//! FIFO connection", §3.2). This module computes delivery times that
//! respect that ordering, meters cross-process bytes per traffic class,
//! and supports per-link fault windows (extra delay) used by the §4.2
//! experiments on missed deadlines.

use std::collections::HashMap;

use crate::fault::FaultPlan;
use crate::time::{SimDuration, SimTime};
use crate::topology::{ProcId, Topology};
use crate::traffic::{TrafficClass, TrafficMeter};

/// Outcome of routing one message through the (possibly faulty) network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message arrives at this time.
    At(SimTime),
    /// The message is lost (a drop window hit it). The sender is not
    /// told — exactly like a frame discarded by a flaky link.
    Dropped,
}

impl Delivery {
    /// The arrival time, if the message was delivered.
    pub fn time(self) -> Option<SimTime> {
        match self {
            Delivery::At(t) => Some(t),
            Delivery::Dropped => None,
        }
    }
}

/// Computes message delivery times over the grid and meters traffic.
pub struct Network {
    topology: Topology,
    /// Last scheduled delivery per ordered (from, to) pair, enforcing FIFO.
    last_delivery: HashMap<(ProcId, ProcId), SimTime>,
    /// Messages metered per ordered pair: the sequence number loss
    /// decisions are keyed on (deterministic per run).
    sent_seq: HashMap<(ProcId, ProcId), u64>,
    meter: TrafficMeter,
    /// Per-process meters (paper: one SOCKS proxy per machine).
    per_proc: Vec<TrafficMeter>,
    faults: FaultPlan,
    /// Cross-process messages lost to drop windows.
    dropped: u64,
    /// Optional fixed per-message serialization overhead added to latency
    /// per KiB of payload (models marshalling cost); zero by default.
    per_kib_cost: SimDuration,
}

impl Network {
    /// Creates a network over `topology` with no faults.
    pub fn new(topology: Topology) -> Self {
        let procs = topology.procs() as usize;
        Network {
            topology,
            last_delivery: HashMap::new(),
            sent_seq: HashMap::new(),
            meter: TrafficMeter::new(),
            per_proc: vec![TrafficMeter::new(); procs],
            faults: FaultPlan::none(),
            dropped: 0,
            per_kib_cost: SimDuration::ZERO,
        }
    }

    /// Installs a fault plan (extra delays on links during time windows).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Sets a serialization cost added to latency per KiB of payload.
    pub fn set_per_kib_cost(&mut self, cost: SimDuration) {
        self.per_kib_cost = cost;
    }

    /// The topology this network runs over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Computes the delivery time of a message sent at `now` from process
    /// `from` to process `to`, carrying `size` bytes of class `class`.
    ///
    /// Cross-process messages are metered (both globally and on the two
    /// endpoint processes); intra-process messages are free and delivered
    /// immediately, exactly as the paper accounts traffic ("DGC messages
    /// and responses transmitted inside a single JVM are not accounted as
    /// they are directly passed by reference").
    pub fn send(
        &mut self,
        now: SimTime,
        from: ProcId,
        to: ProcId,
        class: TrafficClass,
        size: u64,
    ) -> SimTime {
        match self.route_inner(now, from, to, class, size, false) {
            Delivery::At(t) => t,
            Delivery::Dropped => unreachable!("loss disabled on the send path"),
        }
    }

    /// Like [`Network::send`], but subject to the fault plan's drop
    /// windows: `Delivery::Dropped` means the message never arrives and
    /// the caller must not schedule it. Bytes are still metered (the
    /// sender paid for them up to the point of loss).
    pub fn route(
        &mut self,
        now: SimTime,
        from: ProcId,
        to: ProcId,
        class: TrafficClass,
        size: u64,
    ) -> Delivery {
        self.route_frame_inner(now, from, to, &[(class, size)], 0, true)
    }

    /// Routes one egress **frame** — several units coalesced for the
    /// same destination by the egress plane — as a single network send:
    /// every unit is metered under its own class, `envelope` (the
    /// per-invocation overhead the paper measures) is charged **once**
    /// for the whole frame (under the first unit's class), one drop
    /// decision covers the frame (it is lost or delivered atomically,
    /// like a TCP frame through the chaos proxy), and the delivery time
    /// reflects the frame's total size. A single-unit frame is exactly
    /// [`Network::route`] with `size + envelope` — which is what makes
    /// the per-frame envelope the measurable piggyback saving.
    ///
    /// # Panics
    ///
    /// Panics on an empty unit list.
    pub fn route_frame(
        &mut self,
        now: SimTime,
        from: ProcId,
        to: ProcId,
        units: &[(TrafficClass, u64)],
        envelope: u64,
    ) -> Delivery {
        assert!(
            !units.is_empty(),
            "an egress frame carries at least one unit"
        );
        self.route_frame_inner(now, from, to, units, envelope, true)
    }

    fn route_inner(
        &mut self,
        now: SimTime,
        from: ProcId,
        to: ProcId,
        class: TrafficClass,
        size: u64,
        lossy: bool,
    ) -> Delivery {
        self.route_frame_inner(now, from, to, &[(class, size)], 0, lossy)
    }

    fn route_frame_inner(
        &mut self,
        now: SimTime,
        from: ProcId,
        to: ProcId,
        units: &[(TrafficClass, u64)],
        envelope: u64,
        lossy: bool,
    ) -> Delivery {
        if from == to {
            // Intra-process: immediate, unmetered, never lost, but still
            // FIFO with itself (delivery at `now`, ordering by event
            // sequence).
            return Delivery::At(now);
        }
        // Envelope attribution, computed once so the sender- and
        // receiver-side meters can never drift apart: each unit is
        // charged its own size, the shared frame envelope under the
        // first unit's class.
        let charges: Vec<(TrafficClass, u64)> = units
            .iter()
            .enumerate()
            .map(|(i, (class, size))| (*class, size + if i == 0 { envelope } else { 0 }))
            .collect();
        let total: u64 = charges.iter().map(|(_, charged)| charged).sum();
        // Sender-side accounting happens whether or not the frame
        // survives (the bytes crossed the sender's proxy); the
        // receiver's meter only sees what actually arrives.
        for (class, charged) in &charges {
            self.meter.record(*class, *charged);
            self.per_proc[from.0 as usize].record(*class, *charged);
        }

        if lossy {
            let seq = self.sent_seq.entry((from, to)).or_insert(0);
            let this_seq = *seq;
            *seq += 1;
            if self.faults.should_drop(now, from, to, this_seq) {
                self.dropped += 1;
                return Delivery::Dropped;
            }
        }
        for (class, charged) in &charges {
            self.per_proc[to.0 as usize].record(*class, *charged);
        }

        let mut latency = self.topology.latency(from, to);
        if !self.per_kib_cost.is_zero() {
            let kib = total.div_ceil(1024);
            latency = latency.saturating_add(self.per_kib_cost.saturating_mul(kib));
        }
        latency = latency.saturating_add(self.faults.extra_delay(now, from, to));

        let arrival = now + latency;
        let slot = self
            .last_delivery
            .entry((from, to))
            .or_insert(SimTime::ZERO);
        let delivery = arrival.max(*slot);
        *slot = delivery;
        Delivery::At(delivery)
    }

    /// Cross-process messages lost to the fault plan's drop windows.
    pub fn dropped_messages(&self) -> u64 {
        self.dropped
    }

    /// Global traffic meter (all cross-process bytes).
    pub fn meter(&self) -> &TrafficMeter {
        &self.meter
    }

    /// Traffic meter of a single process.
    pub fn proc_meter(&self, proc: ProcId) -> &TrafficMeter {
        &self.per_proc[proc.0 as usize]
    }

    /// Resets all meters (e.g. after a warm-up phase).
    pub fn reset_meters(&mut self) {
        self.meter.reset();
        for m in &mut self.per_proc {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, LinkFault};

    fn net() -> Network {
        Network::new(Topology::single_site(3, SimDuration::from_millis(2)))
    }

    #[test]
    fn delivery_adds_latency() {
        let mut n = net();
        let t = n.send(
            SimTime::from_secs(1),
            ProcId(0),
            ProcId(1),
            TrafficClass::AppRequest,
            100,
        );
        assert_eq!(t, SimTime::from_secs(1) + SimDuration::from_millis(2));
    }

    #[test]
    fn intra_process_is_free_and_instant() {
        let mut n = net();
        let t = n.send(
            SimTime::from_secs(5),
            ProcId(2),
            ProcId(2),
            TrafficClass::DgcMessage,
            100,
        );
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(n.meter().total_bytes(), 0);
    }

    #[test]
    fn fifo_per_ordered_pair() {
        let mut n = net();
        // Two sends at the same instant: second must not overtake the first.
        let t1 = n.send(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            TrafficClass::AppRequest,
            10,
        );
        let t2 = n.send(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            TrafficClass::DgcMessage,
            10,
        );
        assert!(t2 >= t1);
        // Reverse direction is an independent link.
        let t3 = n.send(
            SimTime::ZERO,
            ProcId(1),
            ProcId(0),
            TrafficClass::AppRequest,
            10,
        );
        assert_eq!(t3, SimTime::ZERO + SimDuration::from_millis(2));
    }

    #[test]
    fn fifo_blocks_reordering_with_fault_delay() {
        let mut n = net();
        // First message hit by a fault window: +100ms.
        n.set_fault_plan(FaultPlan::with_faults(vec![LinkFault {
            from: Some(ProcId(0)),
            to: Some(ProcId(1)),
            start: SimTime::ZERO,
            end: SimTime::from_millis(1),
            extra_delay: SimDuration::from_millis(100),
        }]));
        let t1 = n.send(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            TrafficClass::AppRequest,
            10,
        );
        // Second message sent after the window, would normally arrive earlier.
        let t2 = n.send(
            SimTime::from_millis(2),
            ProcId(0),
            ProcId(1),
            TrafficClass::AppRequest,
            10,
        );
        assert_eq!(t1, SimTime::from_millis(102));
        assert_eq!(t2, t1, "FIFO: later send must not overtake the delayed one");
    }

    #[test]
    fn metering_counts_both_endpoints() {
        let mut n = net();
        n.send(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            TrafficClass::AppRequest,
            128,
        );
        assert_eq!(n.meter().total_bytes(), 128);
        assert_eq!(n.proc_meter(ProcId(0)).total_bytes(), 128);
        assert_eq!(n.proc_meter(ProcId(1)).total_bytes(), 128);
        assert_eq!(n.proc_meter(ProcId(2)).total_bytes(), 0);
    }

    #[test]
    fn per_kib_cost_scales_with_size() {
        let mut n = net();
        n.set_per_kib_cost(SimDuration::from_millis(1));
        let small = n.send(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            TrafficClass::AppRequest,
            10,
        );
        let big = n.send(
            SimTime::ZERO,
            ProcId(1),
            ProcId(2),
            TrafficClass::AppRequest,
            10 * 1024,
        );
        assert_eq!(small, SimTime::ZERO + SimDuration::from_millis(3)); // 2 + 1*1KiB
        assert_eq!(big, SimTime::ZERO + SimDuration::from_millis(12)); // 2 + 10KiB
    }

    #[test]
    fn route_drops_inside_loss_windows_and_meters_anyway() {
        use crate::fault::LinkDrop;
        let mut n = net();
        let mut plan = FaultPlan::none();
        plan.set_seed(3);
        plan.add_drop(LinkDrop {
            from: Some(ProcId(0)),
            to: Some(ProcId(1)),
            start: SimTime::ZERO,
            end: SimTime::from_secs(10),
            permille: 1000, // certain loss
        });
        n.set_fault_plan(plan);
        let d = n.route(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            TrafficClass::DgcMessage,
            64,
        );
        assert_eq!(d, Delivery::Dropped);
        assert_eq!(d.time(), None);
        assert_eq!(n.dropped_messages(), 1);
        assert_eq!(n.meter().total_bytes(), 64, "loss still costs the wire");
        // Other links and the post-window era deliver normally.
        assert!(matches!(
            n.route(
                SimTime::ZERO,
                ProcId(1),
                ProcId(0),
                TrafficClass::DgcMessage,
                64
            ),
            Delivery::At(_)
        ));
        assert!(matches!(
            n.route(
                SimTime::from_secs(10),
                ProcId(0),
                ProcId(1),
                TrafficClass::DgcMessage,
                64
            ),
            Delivery::At(_)
        ));
    }

    #[test]
    fn route_frame_meters_per_class_and_charges_one_envelope() {
        let mut n = net();
        let units = [
            (TrafficClass::AppRequest, 100),
            (TrafficClass::DgcMessage, 34),
            (TrafficClass::Gossip, 19),
        ];
        let d = n.route_frame(SimTime::ZERO, ProcId(0), ProcId(1), &units, 240);
        assert!(matches!(d, Delivery::At(_)));
        // Envelope charged once, under the first unit's class.
        assert_eq!(n.meter().bytes(TrafficClass::AppRequest), 340);
        assert_eq!(n.meter().bytes(TrafficClass::DgcMessage), 34);
        assert_eq!(n.meter().bytes(TrafficClass::Gossip), 19);
        assert_eq!(n.meter().total_bytes(), 100 + 34 + 19 + 240);
        assert_eq!(n.proc_meter(ProcId(1)).total_bytes(), 100 + 34 + 19 + 240);
        // A single-unit frame is exactly `route` with size + envelope.
        let mut a = net();
        let mut b = net();
        let da = a.route_frame(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            &[(TrafficClass::DgcMessage, 34)],
            240,
        );
        let db = b.route(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            TrafficClass::DgcMessage,
            34 + 240,
        );
        assert_eq!(da, db);
        assert_eq!(a.meter().total_bytes(), b.meter().total_bytes());
    }

    #[test]
    fn route_frame_drops_the_whole_frame_on_one_decision() {
        use crate::fault::LinkDrop;
        let mut n = net();
        let mut plan = FaultPlan::none();
        plan.set_seed(3);
        plan.add_drop(LinkDrop {
            from: Some(ProcId(0)),
            to: Some(ProcId(1)),
            start: SimTime::ZERO,
            end: SimTime::from_secs(10),
            permille: 1000, // certain loss
        });
        n.set_fault_plan(plan);
        let units = [
            (TrafficClass::AppRequest, 100),
            (TrafficClass::DgcMessage, 34),
        ];
        let d = n.route_frame(SimTime::ZERO, ProcId(0), ProcId(1), &units, 240);
        assert_eq!(d, Delivery::Dropped);
        assert_eq!(n.dropped_messages(), 1, "one decision per frame");
        assert_eq!(
            n.meter().total_bytes(),
            374,
            "the sender still paid for the lost frame"
        );
        assert_eq!(n.proc_meter(ProcId(1)).total_bytes(), 0);
    }

    #[test]
    fn reset_meters_clears_everything() {
        let mut n = net();
        n.send(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            TrafficClass::AppReply,
            64,
        );
        n.reset_meters();
        assert_eq!(n.meter().total_bytes(), 0);
        assert_eq!(n.proc_meter(ProcId(0)).total_bytes(), 0);
    }
}
