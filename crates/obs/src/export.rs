//! Trace and snapshot exporters: JSONL for grepping, Chrome
//! `trace_event` JSON for `chrome://tracing` / Perfetto timelines.
//!
//! Hand-rolled JSON (the workspace is offline; no serde) — the schema
//! is flat enough that escaping strings is the only subtlety.

use std::fmt::Write as _;

use crate::registry::Snapshot;
use crate::trace::{TraceEvent, TraceLevel};

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn level_str(l: TraceLevel) -> &'static str {
    match l {
        TraceLevel::Off => "off",
        TraceLevel::Info => "info",
        TraceLevel::Debug => "debug",
    }
}

/// One JSON object per line per event — stable keys, grep-friendly.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = write!(
            out,
            "{{\"at_ns\":{},\"level\":\"{}\",\"tag\":\"{}\",\"detail\":\"{}\"",
            ev.at_nanos,
            level_str(ev.level),
            json_escape(ev.tag),
            json_escape(&ev.detail),
        );
        if let Some(d) = ev.dur_nanos {
            let _ = write!(out, ",\"dur_ns\":{d}");
        }
        out.push_str("}\n");
    }
    out
}

/// Renders per-node event tracks as a Chrome `trace_event` document:
/// each `(name, events)` pair becomes one pid, spans become `"X"`
/// (complete) events, instants `"i"`. Load the output in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(tracks: &[(&str, Vec<TraceEvent>)]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for (pid, (name, events)) in tracks.iter().enumerate() {
        // Per-pid metadata record so the timeline shows node names.
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        );
        for ev in events {
            let ts_us = ev.at_nanos as f64 / 1000.0;
            out.push_str(",\n");
            match ev.dur_nanos {
                Some(d) => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us},\
                         \"dur\":{},\"pid\":{pid},\"tid\":0,\
                         \"args\":{{\"detail\":\"{}\"}}}}",
                        json_escape(ev.tag),
                        level_str(ev.level),
                        d as f64 / 1000.0,
                        json_escape(&ev.detail),
                    );
                }
                None => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{ts_us},\
                         \"s\":\"p\",\"pid\":{pid},\"tid\":0,\
                         \"args\":{{\"detail\":\"{}\"}}}}",
                        json_escape(ev.tag),
                        level_str(ev.level),
                        json_escape(&ev.detail),
                    );
                }
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Serializes a snapshot as one JSON object (counters/gauges flat,
/// histograms as count/sum/quantile digests).
pub fn snapshot_json(s: &Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    let mut first = true;
    for (k, v) in &s.counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{v}", json_escape(k));
    }
    out.push_str("},\"gauges\":{");
    first = true;
    for (k, v) in &s.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{v}", json_escape(k));
    }
    out.push_str("},\"histograms\":{");
    first = true;
    for (k, h) in &s.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{:.3},\
             \"p50\":{},\"p90\":{},\"p99\":{}}}",
            json_escape(k),
            h.count,
            h.sum,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
        );
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn ev(at: u64, dur: Option<u64>, tag: &'static str, detail: &str) -> TraceEvent {
        TraceEvent {
            at_nanos: at,
            dur_nanos: dur,
            level: TraceLevel::Info,
            tag,
            detail: detail.to_string(),
        }
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let s = to_jsonl(&[ev(5, None, "a", "x\"y"), ev(9, Some(3), "b", "")]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\\\"y"));
        assert!(lines[1].contains("\"dur_ns\":3"));
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let doc = chrome_trace(&[
            ("node-0", vec![ev(1000, None, "spawn", "ao 1")]),
            ("node-1", vec![ev(2000, Some(500), "flush", "3 items")]),
        ]);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"M\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"pid\":1"));
        assert!(doc.trim_end().ends_with("]}"));
        // Balanced braces — cheap well-formedness check.
        let opens = doc.matches('{').count();
        let closes = doc.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn snapshot_json_digests_histograms() {
        let r = Registry::default();
        r.counter("net.frames_sent").add(4);
        r.histogram("lat").record(100);
        let j = snapshot_json(&r.snapshot());
        assert!(j.contains("\"net.frames_sent\":4"));
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("\"p50\":"));
    }
}
