//! Chaos proxy: replay [`FaultProfile`]s over real TCP links.
//!
//! The simulator realizes a fault profile as delivery-time arithmetic;
//! this module realizes the same profile as a per-link TCP proxy that
//! the endpoints cannot distinguish from a misbehaving network — the
//! harmony-style interposable middleware layer, applied to failure
//! injection. A [`ChaosProxy`] sits on one *directed* node pair
//! `from → to`: node `from` is pointed at the proxy's listen address
//! instead of the peer's, the proxy forwards byte-exact frames to the
//! real peer, and perturbs them per profile:
//!
//! * **delay** — a matching window adds one-way latency, anchored to
//!   each frame's *arrival* instant: co-arriving frames share one
//!   deadline and ship as a burst when it passes, and nothing overtakes
//!   a delayed predecessor — the delivery schedule the simulator's
//!   per-message `extra_delay` plus FIFO `last_delivery` slot produces;
//! * **drop** — matching frames are read and discarded (the seeded
//!   decision stream of [`FaultProfile::should_drop`]), the TCP
//!   equivalent of a frame lost to a link flap: the sender's write
//!   succeeded, nothing arrives;
//! * **sever** (partition) — the proxy kills both sockets and keeps
//!   killing fresh connections until the window closes; the transport's
//!   reconnect-with-backoff path then re-delivers what the protocol
//!   still cares about, as TCP does after connectivity returns;
//! * **reorder** — a matching frame is held back one frame and emitted
//!   after its successor, violating the paper's FIFO transport
//!   assumption (§3.2) on purpose — the decoder and protocol must
//!   survive it even though the simulator cannot express it.
//!
//! Because the proxy decodes and re-encodes *frames* (not raw bytes),
//! every perturbation is a clean unit of protocol traffic: drops never
//! tear a frame in half on an otherwise-live connection, and severs cut
//! mid-frame exactly like a dying TCP connection would. The reply
//! direction of each proxied connection applies the mirrored `to →
//! from` faults, so one profile describes both directions of a pair.
//!
//! Process pauses are not the proxy's job: [`crate::NetNode::pause_for`]
//! stalls the node event loop itself (see
//! [`crate::Cluster::listen_local_chaos`], which schedules both).

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dgc_core::faults::FaultProfile;
use dgc_core::units::Time;

use crate::frame::{encode_frame, Frame, FrameDecoder};
use crate::node::SocketTracker;

/// Counters of what the proxy did to traffic, per directed link.
#[derive(Debug, Default)]
pub struct ChaosStats {
    forwarded: AtomicU64,
    dropped: AtomicU64,
    delayed: AtomicU64,
    reordered: AtomicU64,
    severed: AtomicU64,
    corrupted: AtomicU64,
}

/// Point-in-time copy of a [`ChaosStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStatsSnapshot {
    /// Frames forwarded (possibly after a delay).
    pub forwarded: u64,
    /// Frames read and discarded.
    pub dropped: u64,
    /// Frames that served a delay before forwarding.
    pub delayed: u64,
    /// Frames emitted after their successor.
    pub reordered: u64,
    /// Connections killed by partition windows.
    pub severed: u64,
    /// Connections killed because the upstream bytes failed to decode.
    pub corrupted: u64,
}

impl ChaosStats {
    fn snapshot(&self) -> ChaosStatsSnapshot {
        ChaosStatsSnapshot {
            forwarded: self.forwarded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            severed: self.severed.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
        }
    }
}

/// A running fault-injecting proxy for one directed node pair.
pub struct ChaosProxy {
    from: u32,
    to: u32,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    tracker: Arc<SocketTracker>,
    stats: Arc<ChaosStats>,
    accept_handle: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy for the directed link `from → to`, forwarding to
    /// `target` (node `to`'s real listen address) and perturbing frames
    /// per `profile`. `epoch` anchors the profile's scenario clock —
    /// share one `Instant` across every proxy and pause of a scenario.
    pub fn spawn(
        from: u32,
        to: u32,
        target: SocketAddr,
        profile: Arc<FaultProfile>,
        epoch: Instant,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let tracker = Arc::new(SocketTracker::default());
        let stats = Arc::new(ChaosStats::default());

        let acceptor = Acceptor {
            from,
            to,
            listener,
            target,
            profile,
            epoch,
            stop: Arc::clone(&stop),
            tracker: Arc::clone(&tracker),
            stats: Arc::clone(&stats),
            fwd_seq: Arc::new(AtomicU64::new(0)),
            rev_seq: Arc::new(AtomicU64::new(0)),
        };
        let accept_handle = std::thread::Builder::new()
            .name(format!("dgc-chaos-{from}-to-{to}"))
            .spawn(move || acceptor.run())
            .expect("spawn chaos acceptor");

        Ok(ChaosProxy {
            from,
            to,
            addr,
            stop,
            tracker,
            stats,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address node `from` should dial instead of the real peer.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The directed pair this proxy interposes.
    pub fn link(&self) -> (u32, u32) {
        (self.from, self.to)
    }

    /// What the proxy has done so far (forward direction and mirrored
    /// reply direction combined).
    pub fn stats(&self) -> ChaosStatsSnapshot {
        self.stats.snapshot()
    }

    /// Stops the acceptor and kills every live proxied connection.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.tracker.shutdown_all();
        // Wake the blocking accept.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        self.tracker.shutdown_all();
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.stop_inner();
        }
    }
}

struct Acceptor {
    from: u32,
    to: u32,
    listener: TcpListener,
    target: SocketAddr,
    profile: Arc<FaultProfile>,
    epoch: Instant,
    stop: Arc<AtomicBool>,
    tracker: Arc<SocketTracker>,
    stats: Arc<ChaosStats>,
    // Per-direction frame counters feeding the profile's seeded
    // decision streams. Proxy-level, not per-connection: a reconnect
    // after a sever continues the stream instead of replaying its
    // prefix, so nominal loss rates stay independent of connection
    // churn (the simulator's counter likewise spans the whole run).
    fwd_seq: Arc<AtomicU64>,
    rev_seq: Arc<AtomicU64>,
}

impl Acceptor {
    fn run(self) {
        loop {
            let client = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            let server = match TcpStream::connect_timeout(&self.target, Duration::from_millis(500))
            {
                Ok(s) => s,
                Err(_) => continue, // client sees the close and retries
            };
            let _ = client.set_nodelay(true);
            let _ = server.set_nodelay(true);
            // Forward pipe: client (node `from`) → server (node `to`).
            spawn_pump(
                PumpDir {
                    from: self.from,
                    to: self.to,
                },
                &client,
                &server,
                Arc::clone(&self.profile),
                self.epoch,
                Arc::clone(&self.stop),
                Arc::clone(&self.tracker),
                Arc::clone(&self.stats),
                Arc::clone(&self.fwd_seq),
            );
            // Reply pipe: responses ride the same connection back, so
            // the mirrored direction's faults apply to them.
            spawn_pump(
                PumpDir {
                    from: self.to,
                    to: self.from,
                },
                &server,
                &client,
                Arc::clone(&self.profile),
                self.epoch,
                Arc::clone(&self.stop),
                Arc::clone(&self.tracker),
                Arc::clone(&self.stats),
                Arc::clone(&self.rev_seq),
            );
        }
    }
}

#[derive(Clone, Copy)]
struct PumpDir {
    from: u32,
    to: u32,
}

/// One perturbed frame, scheduled for delivery: the reader stamps the
/// deadline at *arrival*; the writer sleeps until it passes.
struct Scheduled {
    deliver_at: Instant,
    raw: Vec<u8>,
}

/// Spawns a detached reader/writer thread pair moving frames
/// `src → dst`, applying the profile's `dir` faults to each decoded
/// frame. The split matters for delay fidelity: the reader never
/// sleeps, so every frame's deadline is anchored to its true arrival
/// instant even when predecessors are still being held — delays shift
/// each frame by `extra` instead of compounding serially across a
/// queue (the delivery schedule the simulator's per-message
/// `extra_delay` produces: a burst at window-end, not a throttle).
/// The FIFO channel between the halves keeps frames in order, so
/// nothing overtakes a delayed predecessor except a deliberate
/// reorder.
#[allow(clippy::too_many_arguments)]
fn spawn_pump(
    dir: PumpDir,
    src: &TcpStream,
    dst: &TcpStream,
    profile: Arc<FaultProfile>,
    epoch: Instant,
    stop: Arc<AtomicBool>,
    tracker: Arc<SocketTracker>,
    stats: Arc<ChaosStats>,
    seq: Arc<AtomicU64>,
) {
    let (Ok(src), Ok(dst)) = (src.try_clone(), dst.try_clone()) else {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
        return;
    };
    let (Ok(wsrc), Ok(wdst)) = (src.try_clone(), dst.try_clone()) else {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
        return;
    };
    let _ = wdst.set_write_timeout(Some(Duration::from_secs(5)));
    let (tx, rx) = std::sync::mpsc::channel::<Scheduled>();
    let now = |epoch: Instant| Time::from_nanos(epoch.elapsed().as_nanos() as u64);

    // Writer half: serve each frame's deadline, then forward it.
    {
        let profile = Arc::clone(&profile);
        let stop = Arc::clone(&stop);
        let stats = Arc::clone(&stats);
        let _ = std::thread::Builder::new()
            .name(format!("dgc-chaos-write-{}-{}", dir.from, dir.to))
            .spawn(move || {
                use std::io::Write;
                let mut wdst = wdst;
                while let Ok(item) = rx.recv() {
                    // Sleep in slices: shutdown must not block behind a
                    // long hold, and a partition window opening
                    // mid-delay severs the held frame with the link
                    // instead of delivering into it.
                    // dgc-analysis: allow(wall-clock): the chaos schedule jitters real sockets in wall time
                    while Instant::now() < item.deliver_at {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        if profile
                            .severed_until(now(epoch), dir.from, dir.to)
                            .is_some()
                        {
                            stats.severed.fetch_add(1, Ordering::Relaxed);
                            let _ = wsrc.shutdown(Shutdown::Both);
                            let _ = wdst.shutdown(Shutdown::Both);
                            return;
                        }
                        // dgc-analysis: allow(wall-clock): the chaos schedule jitters real sockets in wall time
                        let left = item.deliver_at.saturating_duration_since(Instant::now());
                        std::thread::sleep(left.min(Duration::from_millis(20)));
                    }
                    if wdst.write_all(&item.raw).is_err() {
                        let _ = wsrc.shutdown(Shutdown::Both);
                        return;
                    }
                    stats.forwarded.fetch_add(1, Ordering::Relaxed);
                }
                // Reader hung up (EOF or sever) and the queue is
                // drained — in-flight delayed frames above still
                // delivered, like bytes on the wire outliving a closed
                // sender. Now drag the other side down with us.
                let _ = wdst.shutdown(Shutdown::Both);
            });
    }

    // Reader half: judge faults at arrival, schedule survivors.
    let _ = std::thread::Builder::new()
        .name(format!("dgc-chaos-pump-{}-{}", dir.from, dir.to))
        .spawn(move || {
            use std::io::Read;
            let mut src = src;
            let dst = dst;
            let _tracked = tracker.register(&src);
            let mut decoder = FrameDecoder::new();
            let mut chunk = [0u8; 16 * 1024];
            // Reorder hold-back slot: at most one frame waits here for
            // its successor to overtake it.
            let mut held: Option<Scheduled> = None;
            let sever = |src: &TcpStream, dst: &TcpStream, counter: &AtomicU64| {
                counter.fetch_add(1, Ordering::Relaxed);
                let _ = src.shutdown(Shutdown::Both);
                let _ = dst.shutdown(Shutdown::Both);
            };
            loop {
                let n = match src.read(&mut chunk) {
                    Ok(0) | Err(_) => {
                        // Connection over: release a held frame so a
                        // reorder never turns into a drop. Dropping `tx`
                        // lets the writer drain scheduled frames and
                        // then close the other side.
                        if let Some(h) = held.take() {
                            let _ = tx.send(h);
                        }
                        return;
                    }
                    Ok(n) => n,
                };
                // All frames completed by this chunk *arrived* now —
                // faults are judged at arrival, and a delayed frame's
                // deadline is anchored to its own arrival instant.
                // dgc-analysis: allow(wall-clock): the chaos schedule jitters real sockets in wall time
                let arrived_at = Instant::now();
                let t = now(epoch);
                decoder.push(&chunk[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(None) => break,
                        Err(_) => {
                            // Corrupt upstream: behave like the real
                            // network would — kill the connection.
                            sever(&src, &dst, &stats.corrupted);
                            return;
                        }
                        Ok(Some(frame)) => {
                            if profile.severed_until(t, dir.from, dir.to).is_some() {
                                sever(&src, &dst, &stats.severed);
                                return;
                            }
                            let raw = encode_frame(&frame);
                            let mut deliver_at = arrived_at;
                            // Hello is connection establishment (the TCP
                            // SYN of this layer): partition kills it, but
                            // drop/delay/reorder act on protocol traffic.
                            if !matches!(frame, Frame::Hello { .. }) {
                                let s = seq.fetch_add(1, Ordering::Relaxed) + 1;
                                if profile.should_drop(t, dir.from, dir.to, s) {
                                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                                    continue;
                                }
                                let extra = profile.extra_delay(t, dir.from, dir.to);
                                if !extra.is_zero() {
                                    stats.delayed.fetch_add(1, Ordering::Relaxed);
                                    deliver_at =
                                        arrived_at + Duration::from_nanos(extra.as_nanos());
                                }
                                if held.is_none() && profile.should_reorder(t, dir.from, dir.to, s)
                                {
                                    held = Some(Scheduled { deliver_at, raw });
                                    continue;
                                }
                            }
                            if tx.send(Scheduled { deliver_at, raw }).is_err() {
                                // Writer died (stop or write failure).
                                let _ = src.shutdown(Shutdown::Both);
                                return;
                            }
                            if let Some(prev) = held.take() {
                                stats.reordered.fetch_add(1, Ordering::Relaxed);
                                if tx.send(prev).is_err() {
                                    let _ = src.shutdown(Shutdown::Both);
                                    return;
                                }
                            }
                        }
                    }
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_core::config::DgcConfig;
    use dgc_core::faults::Window;
    use dgc_core::units::Dur;
    use std::io::{Read, Write};

    /// A bare echo peer speaking raw frames, so proxy behaviour is
    /// observable without a whole DGC node behind it.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            if let Ok((mut s, _)) = listener.accept() {
                let mut buf = [0u8; 4096];
                while let Ok(n) = s.read(&mut buf) {
                    if n == 0 || s.write_all(&buf[..n]).is_err() {
                        return;
                    }
                }
            }
        });
        (addr, h)
    }

    fn hello(node: u32) -> Frame {
        Frame::Hello {
            node,
            version: crate::frame::PROTOCOL_VERSION,
        }
    }

    #[test]
    fn clean_profile_is_transparent() {
        let (addr, _h) = echo_server();
        let proxy =
            ChaosProxy::spawn(0, 1, addr, Arc::new(FaultProfile::none()), Instant::now()).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let f = hello(7);
        c.write_all(&encode_frame(&f)).unwrap();
        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 256];
        let got = loop {
            let n = c.read(&mut buf).unwrap();
            assert!(n > 0, "echo died");
            dec.push(&buf[..n]);
            if let Some(f) = dec.next_frame().unwrap() {
                break f;
            }
        };
        assert_eq!(got, f, "frames pass through byte-exactly");
        // The pumps bump their counters just after writing, so poll:
        // the echoed frame proves delivery, the counter follows.
        assert!(
            crate::node::poll_until(Duration::from_secs(2), || proxy.stats().forwarded >= 2),
            "both pipes should have forwarded: {:?}",
            proxy.stats()
        );
        proxy.shutdown();
    }

    #[test]
    fn delays_anchor_to_arrival_and_do_not_compound() {
        let (addr, _h) = echo_server();
        let profile = FaultProfile::none().delay(
            Some(0),
            Some(1),
            Window::from_millis(0, 60_000),
            Dur::from_millis(100),
        );
        let proxy = ChaosProxy::spawn(0, 1, addr, Arc::new(profile), Instant::now()).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let raw = encode_frame(&Frame::Batch(Vec::new()));
        let start = Instant::now();
        for _ in 0..4 {
            c.write_all(&raw).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 256];
        let mut got = 0;
        while got < 4 {
            let n = c.read(&mut buf).unwrap();
            assert!(n > 0, "echo died");
            dec.push(&buf[..n]);
            while dec.next_frame().unwrap().is_some() {
                got += 1;
            }
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(100),
            "delay window not served: {elapsed:?}"
        );
        // Co-arriving frames share one arrival-anchored deadline and
        // ship as a burst; a throttle that re-anchored each frame after
        // its predecessor's sleep would take ≥ 400 ms here.
        assert!(
            elapsed < Duration::from_millis(300),
            "delays compounded serially: {elapsed:?}"
        );
        assert!(proxy.stats().delayed >= 4, "{:?}", proxy.stats());
        proxy.shutdown();
    }

    #[test]
    fn partition_severs_until_heal() {
        let (addr, _h) = echo_server();
        let profile = FaultProfile::none().partition_pair(0, 1, Window::from_millis(0, 50_000));
        let proxy = ChaosProxy::spawn(0, 1, addr, Arc::new(profile), Instant::now()).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(&encode_frame(&hello(7))).unwrap();
        let mut buf = [0u8; 64];
        // The proxy must kill the connection, so the read observes EOF
        // (Ok(0)) or a reset — never echoed bytes.
        let severed = match c.read(&mut buf) {
            Ok(0) | Err(_) => true,
            Ok(_) => false,
        };
        assert!(severed, "partitioned link must not deliver");
        assert!(proxy.stats().severed >= 1);
        assert_eq!(proxy.stats().forwarded, 0);
        proxy.shutdown();
    }

    #[test]
    fn shutdown_interrupts_a_long_pause() {
        // A profile can pause a node for longer than any test wants to
        // wait; shutdown (including the Drop that runs when a failed
        // assertion unwinds) must cut through the sleep, not queue
        // behind it.
        let dgc = DgcConfig::builder()
            .ttb(Dur::from_millis(25))
            .tta(Dur::from_millis(80))
            .max_comm(Dur::from_millis(20))
            .build();
        let cluster = crate::Cluster::listen_local(1, crate::NetConfig::new(dgc)).unwrap();
        cluster.pause_node(0, Duration::from_secs(60));
        // Give the event loop a moment to dequeue the pause.
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        cluster.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown waited out the pause: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn end_to_end_cluster_collects_through_clean_proxies() {
        // The interposition itself must be invisible: a chaos cluster
        // with an empty profile behaves exactly like a plain one.
        let dgc = DgcConfig::builder()
            .ttb(Dur::from_millis(25))
            .tta(Dur::from_millis(80))
            .max_comm(Dur::from_millis(20))
            .build();
        let cluster =
            crate::Cluster::listen_local_chaos(2, crate::NetConfig::new(dgc), FaultProfile::none())
                .unwrap();
        let a = cluster.add_activity(0);
        let b = cluster.add_activity(1);
        cluster.add_ref(a, b);
        cluster.add_ref(b, a);
        cluster.set_idle(a, true);
        cluster.set_idle(b, true);
        assert!(
            cluster.wait_until(Duration::from_secs(20), |t| t.len() == 2),
            "cycle through proxies not collected: {:?}",
            cluster.terminated()
        );
        let chaos = cluster.chaos_stats();
        assert!(chaos.forwarded > 0, "traffic actually crossed the proxies");
        assert_eq!(chaos.dropped + chaos.severed + chaos.corrupted, 0);
        cluster.shutdown();
    }
}
